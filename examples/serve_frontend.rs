//! Network-serving walkthrough: host the HTTP/1.1 scoring front-end on
//! a real loopback socket and talk to it the way an operator's client
//! would — no HTTP library on either side.
//!
//! 1. train-shaped setup: install a seeded [`EmbeddingStore`] into a
//!    [`ScoringService`] behind a [`Batcher`] and a [`Frontend`],
//! 2. POST a `/v1/rank` request over a raw `TcpStream` and verify the
//!    top-ranked scores are bit-identical to the in-process
//!    `ScoringService::rank_targets` answer,
//! 3. POST `/v1/score` and `/v1/score_active` (Eq. 3 and Eq. 7 over the
//!    wire),
//! 4. GET `/metrics` and check the Prometheus exposition names every
//!    serve/front-end series this run touched, and
//! 5. GET `/healthz`, then shut the server down cleanly.
//!
//! ```sh
//! cargo run --release --example serve_frontend
//! ```
//!
//! Exits non-zero if any wire answer disagrees with the in-process one.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::exit;
use std::sync::Arc;

use inf2vec::embed::EmbeddingStore;
use inf2vec::graph::NodeId;
use inf2vec::obs::Telemetry;
use inf2vec::serve::{
    BatchConfig, Batcher, Frontend, FrontendConfig, Request, ScoringService, ServeConfig,
};

/// One serial HTTP/1.1 exchange over a fresh connection.
fn http(addr: &std::net::SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to front-end");
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw);
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post(addr: &std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: &std::net::SocketAddr, path: &str) -> (u16, String) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n"),
    )
}

fn main() {
    let mut failures = 0u32;
    let mut check = |what: &str, ok: bool| {
        println!("  [{}] {what}", if ok { "ok" } else { "FAIL" });
        if !ok {
            failures += 1;
        }
    };

    // 1. The operator stack: service + batcher + front-end on port 0.
    let svc = Arc::new(ScoringService::new(
        ServeConfig::default(),
        Telemetry::with_registry(),
    ));
    svc.install_store(EmbeddingStore::new(256, 16, 42), "demo-v1")
        .expect("install model");
    let batcher = Arc::new(Batcher::start(Arc::clone(&svc), BatchConfig::default()));
    let frontend = Frontend::start("127.0.0.1:0", batcher, FrontendConfig::default())
        .expect("bind front-end");
    let addr = frontend.local_addr();
    println!("front-end listening on http://{addr}/");

    // 2. Rank over the wire vs. in process: bit-identical scores.
    let (status, body) = post(
        &addr,
        "/v1/rank",
        r#"{"u":7,"candidates":[1,2,3,4,5,6,8,9,10,11],"top_n":3}"#,
    );
    println!("POST /v1/rank -> {status} {body}");
    check("rank returns 200", status == 200);
    let candidates: Vec<NodeId> = [1u32, 2, 3, 4, 5, 6, 8, 9, 10, 11]
        .iter()
        .map(|&v| NodeId(v))
        .collect();
    let local = svc
        .rank_targets(NodeId(7), &candidates, 3, &Request::new())
        .expect("in-process rank");
    let wire_match = local.items.iter().all(|(v, s)| {
        body.contains(&format!("{{\"v\":{},\"score\":{}}}", v.0, s))
    });
    check("wire scores bit-identical to ScoringService::rank_targets", wire_match);

    // 3. Pair and aggregate scores (Eq. 3, Eq. 7) over the wire.
    let (status, body) = post(&addr, "/v1/score", r#"{"u":7,"v":3}"#);
    println!("POST /v1/score -> {status} {body}");
    check("score returns 200 with a finite value", status == 200 && !body.contains("null"));
    let (status, body) = post(
        &addr,
        "/v1/score_active",
        r#"{"v":9,"active":[1,7,12],"agg":"max"}"#,
    );
    println!("POST /v1/score_active -> {status} {body}");
    check("score_active returns 200", status == 200);

    // A deliberately bad request: documented 400 with a typed outcome.
    let (status, body) = post(&addr, "/v1/rank", r#"{"u":7,"candidates":[1],"top_n":0}"#);
    check(
        "top_n=0 maps to 400 bad_request",
        status == 400 && body.contains("\"outcome\":\"bad_request\""),
    );

    // 4. The Prometheus exposition names the series this run touched.
    let (status, metrics) = get(&addr, "/metrics");
    check("GET /metrics returns 200", status == 200);
    for series in [
        "inf2vec_serve_requests_total{outcome=\"ok\"}",
        "inf2vec_serve_request_seconds",
        "inf2vec_serve_batch_size",
        "inf2vec_frontend_http_requests_total",
        "inf2vec_frontend_connections_total",
    ] {
        check(&format!("exposition names {series}"), metrics.contains(series));
    }

    // 5. Health, then clean shutdown.
    let (status, body) = get(&addr, "/healthz");
    println!("GET /healthz -> {status} {body}");
    check("healthz reports ok", status == 200 && body.contains("\"ok\""));
    frontend.stop();

    if failures > 0 {
        eprintln!("FAILED: {failures} check(s) disagreed over the wire");
        exit(1);
    }
    println!("OK: wire answers match the in-process service exactly");
}
