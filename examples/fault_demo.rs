//! Fault-tolerant training demo: crash mid-run, restart, and watch the
//! checkpoint make the resumed run bit-identical to an uninterrupted one.
//!
//! ```sh
//! cargo run --release --example fault_demo -- run     /tmp/a.ckpt
//! cargo run --release --example fault_demo -- crash   /tmp/b.ckpt   # dies mid-epoch 2
//! cargo run --release --example fault_demo -- resume  /tmp/b.ckpt   # picks up at epoch 2
//! cargo run --release --example fault_demo -- diverge /tmp/c.ckpt   # guard exhausts its budget
//! ```
//!
//! `run` and `resume` print a fingerprint of the final embedding store;
//! matching fingerprints demonstrate the bit-identical resume guarantee.

use std::process::exit;

use inf2vec::core::train::{train_resumable_on_source, CheckpointConfig, FaultTolerance};
use inf2vec::core::{Inf2vecConfig, Inf2vecModel, InfluenceContextSource};
use inf2vec::diffusion::synth::{generate, SyntheticConfig};
use inf2vec::diffusion::PropagationNetwork;
use inf2vec::embed::faultinject::PanicAfter;
use inf2vec::embed::{DivergenceGuard, NegativeTable, PairSource};

/// FNV-1a over the exact bit patterns of all four parameter matrices.
fn fingerprint(model: &Inf2vecModel) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for m in [
        &model.store.source,
        &model.store.target,
        &model.store.bias_src,
        &model.store.bias_tgt,
    ] {
        for x in m.to_vec() {
            for b in x.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, ckpt) = match args.as_slice() {
        [m, p] => (m.as_str(), p.clone()),
        _ => {
            eprintln!("usage: fault_demo <run|crash|resume|diverge> <checkpoint-path>");
            exit(2);
        }
    };

    let synth = generate(&SyntheticConfig::tiny(), 7);
    let dataset = &synth.dataset;
    let config = Inf2vecConfig {
        k: 16,
        epochs: 6,
        seed: 42,
        ..Inf2vecConfig::default()
    };
    let nets: Vec<PropagationNetwork> = dataset
        .log
        .episodes()
        .iter()
        .map(|ep| PropagationNetwork::build(&dataset.graph, ep))
        .collect();
    let n_nodes = dataset.graph.node_count() as usize;
    let source = InfluenceContextSource::new(nets, &config);
    let negatives = NegativeTable::from_counts(&source.context_target_counts(n_nodes));
    let per_epoch = source.pairs_per_epoch();
    println!("dataset: {n_nodes} users, {per_epoch} influence pairs/epoch");

    let ft = FaultTolerance {
        checkpoint: Some(CheckpointConfig::every_epoch(&ckpt)),
        guard: if mode == "diverge" {
            Some(DivergenceGuard {
                blowup: 0.0, // every epoch looks like a blow-up: exhausts the budget
                backoff: 0.5,
                max_recoveries: 2,
            })
        } else {
            None
        },
    };

    let result = if mode == "crash" {
        // The injector panics mid-epoch 2, exactly like a process crash;
        // the epoch-1 checkpoint survives on disk for `resume`.
        let wrapped = PanicAfter::new(source, 2 * per_epoch as u64 + 7, "simulated crash");
        train_resumable_on_source(n_nodes, &wrapped, &negatives, &config, &ft)
    } else {
        train_resumable_on_source(n_nodes, &source, &negatives, &config, &ft)
    };

    match result {
        Ok((model, report)) => {
            println!(
                "trained: {} total epochs, {} run by this process",
                report.epochs,
                report.epoch_losses.len()
            );
            for (i, loss) in report.epoch_losses.iter().enumerate() {
                let epoch = report.epochs - report.epoch_losses.len() + i;
                println!("  epoch {epoch}: loss {loss:.6}");
            }
            if !report.recoveries.is_empty() {
                println!("recoveries: {:?}", report.recoveries);
            }
            println!("fingerprint: {:016x}", fingerprint(&model));
        }
        Err(e) => {
            eprintln!("training failed: {e}");
            exit(1);
        }
    }
}
