//! Influence maximization with learned probabilities: Inf2vec + CELF.
//!
//! Learns influence embeddings from the action log, converts them to
//! per-edge IC probabilities (`P_uv = σ(x(u, v))`), runs greedy/CELF seed
//! selection on the *learned* model, and scores the chosen seeds against
//! the ground-truth cascade process — the full viral-marketing loop the
//! paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example influence_maximization
//! ```

use inf2vec::core::{train, Inf2vecConfig};
use inf2vec::diffusion::im::{celf_greedy, ImConfig};
use inf2vec::diffusion::{ic, EdgeProbs};
use inf2vec::diffusion::synth::{generate, SyntheticConfig};
use inf2vec::graph::NodeId;
use inf2vec::util::rng::Xoshiro256pp;

fn main() {
    let synth = generate(&SyntheticConfig::tiny(), 33);
    let dataset = &synth.dataset;
    let split = dataset.split(0.8, 0.1, 1);

    let model = train(
        dataset,
        &split.train,
        &Inf2vecConfig {
            k: 32,
            epochs: 10,
            seed: 2,
            ..Inf2vecConfig::default()
        },
    );
    // Calibrate the score scale: estimate the global per-exposure
    // activation rate from the training log (influence pairs / exposures).
    let mut successes = 0usize;
    let mut exposures = 0usize;
    for &i in &split.train {
        let e = &dataset.log.episodes()[i];
        successes += inf2vec::diffusion::pairs::episode_pairs(&dataset.graph, e).len();
        for u in e.users() {
            exposures += dataset.graph.out_degree(u);
        }
    }
    let rate = successes as f64 / exposures.max(1) as f64;
    println!("estimated per-exposure activation rate: {rate:.4}");
    let learned_probs = model.edge_probs_calibrated(&dataset.graph, rate);

    let im = ImConfig {
        k: 5,
        simulations: 100,
        seed: 3,
    };
    println!("selecting {} seeds with CELF on the learned probabilities...", im.k);
    let result = celf_greedy(&dataset.graph, &learned_probs, &im);
    println!(
        "done in {} spread evaluations (naive greedy would need {})",
        result.evaluations,
        dataset.graph.node_count() as usize * im.k
    );
    for s in &result.seeds {
        println!("  seed {} (marginal gain {:.1})", s.node, s.marginal_gain);
    }

    // Judge the selection under the ground truth, against baselines.
    let judge = |label: &str, seeds: &[NodeId]| {
        let mut rng = Xoshiro256pp::new(77);
        let mut total = 0usize;
        for _ in 0..500 {
            total += ic::simulate(&dataset.graph, &synth.truth, seeds, &mut rng).len();
        }
        let spread = total as f64 / 500.0 + seeds.len() as f64;
        println!("{label:<26} true expected spread {spread:.1}");
        spread
    };

    println!("\nground-truth evaluation:");
    let learned = judge("CELF on learned model", &result.seed_nodes());

    // Skyline: CELF on the ground-truth probabilities themselves.
    let skyline = celf_greedy(&dataset.graph, &synth.truth, &im);
    let oracle = judge("CELF on ground truth", &skyline.seed_nodes());

    // Floor: CELF on uninformed uniform probabilities.
    let uniform = EdgeProbs::uniform(&dataset.graph, 0.05);
    let blind = celf_greedy(&dataset.graph, &uniform, &im);
    let floor = judge("CELF on uniform guess", &blind.seed_nodes());

    println!(
        "\nlearned model recovers {:.0}% of the oracle's spread (uninformed: {:.0}%)",
        100.0 * learned / oracle,
        100.0 * floor / oracle
    );
}
