//! Live-introspection demo: run the continuous-learning soak with the
//! zero-dependency HTTP endpoint attached, then prove the three routes
//! answer and leave a flight-recorder dump behind.
//!
//! ```sh
//! cargo run --release --example introspect_demo -- \
//!     127.0.0.1:9617 /tmp/introspect_flight.jsonl 10
//! ```
//!
//! Arguments (all optional): bind address (default `127.0.0.1:0`), flight
//! dump path, and seconds to keep serving after the soak finishes so an
//! external `curl` can poke the endpoint. CI runs this, curls `/metrics`
//! and `/healthz` during the hold window, and uploads the flight dump as
//! an artifact. Exits non-zero when the soak fails or a route misbehaves.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::process::exit;
use std::time::Duration;

use inf2vec::obs::{IntrospectServer, Telemetry};
use inf2vec::pipeline::{pipeline_health_policy, run_soak, SoakConfig};

/// One in-process GET, returning (status line, body).
fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to introspection endpoint");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: demo\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    match out.split_once("\r\n\r\n") {
        Some((head, body)) => (
            head.lines().next().unwrap_or_default().to_string(),
            body.to_string(),
        ),
        None => (out, String::new()),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let bind = args.next().unwrap_or_else(|| "127.0.0.1:0".into());
    let dump_path = args.next();
    let hold_secs: u64 = args
        .next()
        .map(|s| s.parse().expect("hold seconds must be an integer"))
        .unwrap_or(0);

    let telemetry = Telemetry::with_registry();
    let server = IntrospectServer::start(&bind, telemetry.clone(), pipeline_health_policy())
        .unwrap_or_else(|e| {
            eprintln!("error: cannot bind {bind}: {e}");
            exit(2);
        });
    let addr = server.local_addr();
    println!("[introspect_demo] serving http://{addr}/ (/metrics /healthz /debug/flight)");

    // Generate real traffic: a short crash/recover soak shares this
    // telemetry handle, so the endpoint serves its live metrics.
    let mut cfg = SoakConfig {
        cycles: 3,
        records_per_chunk: 200,
        ..SoakConfig::default()
    };
    cfg.pipeline.telemetry = telemetry.clone();
    let workdir = std::env::temp_dir().join(format!("introspect_demo_{}", std::process::id()));
    let report = match run_soak(&cfg, &workdir) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: soak run failed: {e}");
            exit(2);
        }
    };
    let _ = std::fs::remove_dir_all(&workdir);
    println!(
        "[introspect_demo] soak: {} records across {} crash cycles, trace_complete={}",
        report.reconciliation.records_seen, report.cycles, report.trace_complete
    );

    let (status, body) = get(addr, "/metrics");
    println!("[introspect_demo] GET /metrics -> {status} ({} bytes)", body.len());
    let metrics_ok = status.contains("200") && body.contains("inf2vec_pipeline_records_total");

    let (status, body) = get(addr, "/healthz");
    println!("[introspect_demo] GET /healthz -> {status} {body}");
    // Right after a chaos soak the pipeline may legitimately report
    // failing (e.g. publish lag after the final crash cycle) — the demo
    // asserts the route evaluates and answers, not that chaos is healthy.
    let health_ok = (status.contains("200") || status.contains("503"))
        && body.contains("\"state\"");

    let (status, body) = get(addr, "/debug/flight");
    let flight_lines = body.lines().count();
    println!("[introspect_demo] GET /debug/flight -> {status} ({flight_lines} events)");
    let flight_ok = status.contains("200") && flight_lines > 0;

    if let Some(path) = &dump_path {
        match telemetry.dump_flight(std::path::Path::new(path)) {
            Ok(true) => println!("[introspect_demo] flight dump written to {path}"),
            Ok(false) => println!("[introspect_demo] flight recorder disabled, no dump"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                exit(2);
            }
        }
    }

    if hold_secs > 0 {
        println!("[introspect_demo] holding the endpoint open for {hold_secs}s");
        std::thread::sleep(Duration::from_secs(hold_secs));
    }
    server.stop();

    if !(report.passed() && metrics_ok && health_ok && flight_ok) {
        eprintln!(
            "FAILED: soak_passed={} metrics_ok={metrics_ok} health_ok={health_ok} flight_ok={flight_ok}",
            report.passed()
        );
        exit(1);
    }
    println!("OK: all three routes answered over live soak traffic");
}
