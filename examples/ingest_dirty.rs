//! Dirty-ingest demo: corrupt a clean dataset dump, load it back through
//! the policy-driven ingest path, and prove two things —
//!
//! 1. the quarantine report is non-empty (every injected junk line is
//!    accounted for, with samples and line numbers), and
//! 2. under `ErrorPolicy::Skip` the recovered dataset is *identical* to
//!    the one parsed from the clean dump (junk injection never touches
//!    clean lines).
//!
//! ```sh
//! cargo run --release --example ingest_dirty -- /tmp/ingest_report.json
//! ```
//!
//! Exits non-zero if either property fails; CI runs this and uploads the
//! report JSON as an artifact.

use std::process::exit;

use inf2vec::diffusion::synth::{generate, SyntheticConfig};
use inf2vec::graph::io::write_edge_list;
use inf2vec::prelude::*;
use inf2vec::util::faultinject::{mangle_lines, MangleMode};

fn main() {
    let report_path = std::env::args().nth(1);

    // A clean fixture: synthetic dataset serialized with the canonical
    // writers, exactly what a well-behaved export looks like.
    let synth = generate(&SyntheticConfig::tiny(), 7);
    let dataset = &synth.dataset;
    let mut clean_edges = Vec::new();
    write_edge_list(&dataset.graph, &mut clean_edges).expect("serialize edges");
    let mut clean_actions = Vec::new();
    dataset.write_log(&mut clean_actions).expect("serialize log");

    // Corrupt both streams: junk lines injected between (never into) the
    // clean ones — garbage text, NUL bytes, invalid UTF-8, overlong ids.
    let dirty_edges = mangle_lines(&clean_edges, 11, MangleMode::InjectJunk, 0.15);
    let dirty_actions = mangle_lines(&clean_actions, 13, MangleMode::InjectJunk, 0.15);
    println!(
        "[fixture] edges {} -> {} bytes, actions {} -> {} bytes after injection",
        clean_edges.len(),
        dirty_edges.len(),
        clean_actions.len(),
        dirty_actions.len()
    );

    let strict = Ingestor::default()
        .ingest(clean_edges.as_slice(), clean_actions.as_slice(), "clean")
        .expect("clean fixture must ingest strictly");
    let skip = Ingestor::new(IngestConfig {
        policy: ErrorPolicy::skip(10_000),
        ..IngestConfig::default()
    })
    .ingest(dirty_edges.as_slice(), dirty_actions.as_slice(), "dirty")
    .expect("skip policy must survive injected junk");

    println!("{}", skip.summary());

    if let Some(path) = &report_path {
        std::fs::write(path, skip.to_json()).expect("write report");
        println!("[report] written to {path}");
    }

    if skip.total_defects() == 0 {
        eprintln!("FAIL: corrupted fixture produced an empty quarantine report");
        exit(1);
    }
    if skip.dataset.graph != strict.dataset.graph
        || skip.dataset.log.episodes() != strict.dataset.log.episodes()
    {
        eprintln!("FAIL: Skip-recovered dataset differs from the clean parse");
        exit(1);
    }
    println!(
        "OK: {} defects quarantined, recovered dataset identical to the clean parse",
        skip.total_defects()
    );
}
