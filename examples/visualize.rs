//! Visualize learned influence embeddings with t-SNE (the paper's
//! Figure 6, as a runnable example).
//!
//! Trains Inf2vec on a small synthetic dataset, projects the concatenated
//! `[S_u ; T_u]` vectors to 2-D, prints an ASCII scatter colored by latent
//! interest group, and writes the coordinates to `tsne_coords.csv`.
//!
//! ```sh
//! cargo run --release --example visualize
//! ```

use inf2vec::core::{train, Inf2vecConfig};
use inf2vec::diffusion::synth::{generate, SyntheticConfig};
use inf2vec::eval::visual::mean_pair_rank;
use inf2vec::diffusion::pairs::pair_frequencies;
use inf2vec::tsne::{Tsne, TsneConfig};
use inf2vec::util::FxHashMap;

fn main() {
    let synth = generate(&SyntheticConfig::tiny(), 17);
    let dataset = &synth.dataset;
    let split = dataset.split(0.8, 0.1, 3);
    let model = train(
        dataset,
        &split.train,
        &Inf2vecConfig {
            k: 24,
            epochs: 12,
            seed: 5,
            ..Inf2vecConfig::default()
        },
    );

    // Project the 120 most active users.
    let mut activity = vec![0u32; dataset.graph.node_count() as usize];
    for e in dataset.log.episodes() {
        for u in e.users() {
            activity[u.index()] += 1;
        }
    }
    let mut users: Vec<u32> = (0..dataset.graph.node_count()).collect();
    users.sort_by_key(|&u| std::cmp::Reverse(activity[u as usize]));
    users.truncate(120);

    let dim = 2 * model.store.k();
    let mut data = Vec::with_capacity(users.len() * dim);
    for &u in &users {
        data.extend(model.store.concat(u).into_iter().map(f64::from));
    }
    let tsne = Tsne::new(TsneConfig {
        perplexity: 15.0,
        iterations: 400,
        ..TsneConfig::default()
    });
    let coords = tsne.embed(&data, dim);

    // ASCII scatter, glyph = interest group.
    const GLYPHS: &[u8] = b"0123456789ABCDEFGHIJ";
    let (w, h) = (70usize, 22usize);
    let (mut xmin, mut xmax, mut ymin, mut ymax) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for c in &coords {
        xmin = xmin.min(c[0]);
        xmax = xmax.max(c[0]);
        ymin = ymin.min(c[1]);
        ymax = ymax.max(c[1]);
    }
    let mut grid = vec![vec![b' '; w]; h];
    for (&u, c) in users.iter().zip(&coords) {
        let x = (((c[0] - xmin) / (xmax - xmin).max(1e-9)) * (w - 1) as f64) as usize;
        let y = (((c[1] - ymin) / (ymax - ymin).max(1e-9)) * (h - 1) as f64) as usize;
        grid[h - 1 - y][x] = GLYPHS[synth.groups[u as usize] as usize % GLYPHS.len()];
    }
    println!("t-SNE of [S;T] embeddings — glyph = latent interest group:");
    for row in grid {
        println!("|{}|", String::from_utf8_lossy(&row));
    }

    // Quantify: influence-pair partners should be close (Figure 6's claim).
    let freq = pair_frequencies(&dataset.graph, dataset.log.episodes());
    let mut ranked: Vec<((u32, u32), u32)> = freq.into_iter().collect();
    ranked.sort_by_key(|&(pair, c)| (std::cmp::Reverse(c), pair));
    let top_pairs: Vec<(u32, u32)> = ranked.iter().take(30).map(|&(p, _)| p).collect();
    let mut points: FxHashMap<u32, Vec<f64>> = FxHashMap::default();
    for (&u, c) in users.iter().zip(&coords) {
        points.insert(u, c.to_vec());
    }
    if let Some(rank) = mean_pair_rank(&points, &top_pairs) {
        println!(
            "\nmean distance-rank of influence-pair partners: {rank:.3} (0 = nearest, 0.5 = chance)"
        );
    }

    // CSV artifact.
    let mut csv = String::from("user,group,x,y\n");
    for (&u, c) in users.iter().zip(&coords) {
        csv.push_str(&format!("{u},{},{},{}\n", synth.groups[u as usize], c[0], c[1]));
    }
    std::fs::write("tsne_coords.csv", csv).expect("write tsne_coords.csv");
    println!("coordinates written to tsne_coords.csv");
}
