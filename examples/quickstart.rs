//! Quickstart: generate a small social dataset, learn an Inf2vec influence
//! embedding, and predict who gets influenced.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use inf2vec::core::{train, Inf2vecConfig};
use inf2vec::diffusion::synth::{generate, SyntheticConfig};
use inf2vec::eval::activation::ActivationTask;
use inf2vec::eval::{Aggregator, ScoringModel};
use inf2vec::graph::NodeId;

fn main() {
    // 1. A dataset: a social graph plus an action log of diffusion
    //    episodes. Here we synthesize one; `Dataset` can also be built from
    //    your own edge list + action log (see `graph::io` / `dataset`).
    let synth = generate(&SyntheticConfig::tiny(), 7);
    let dataset = &synth.dataset;
    println!(
        "dataset: {} users, {} edges, {} episodes, {} actions",
        dataset.graph.node_count(),
        dataset.graph.edge_count(),
        dataset.log.len(),
        dataset.log.action_count()
    );

    // 2. Split episodes and train the influence embedding (Algorithm 2).
    let split = dataset.split(0.8, 0.1, 1);
    let config = Inf2vecConfig {
        k: 32,
        epochs: 10,
        seed: 1,
        ..Inf2vecConfig::default()
    };
    let model = train(dataset, &split.train, &config);
    println!(
        "trained: K = {}, |V| = {} (source + target vectors, biases)",
        model.store.k(),
        model.store.len()
    );

    // 3. Score influence: x(u, v) = S_u · T_v + b_u + b̃_v.
    let (u, v) = (NodeId(0), NodeId(1));
    println!("x({u}, {v}) = {:.4}", model.score(u, v));

    // 4. Who would user 0 most likely influence?
    println!("top influenced by {u}:");
    for (node, score) in model.top_influenced(u, 5) {
        println!("  {node}: {score:.4}");
    }

    // 5. Evaluate activation prediction on the held-out episodes.
    let task = ActivationTask::build(
        &dataset.graph,
        split.test.iter().map(|&i| &dataset.log.episodes()[i]),
    );
    let metrics = task.evaluate(&ScoringModel::Representation(&model, Aggregator::Ave));
    println!(
        "activation prediction: AUC = {:.4}, MAP = {:.4}, P@10 = {:.4}",
        metrics.auc, metrics.map, metrics.p10
    );
}
