//! Continuous-learning soak demo: crash the pipeline, recover it, and
//! prove nothing was lost or double-counted.
//!
//! A deterministic traffic writer appends synthetic action records (with
//! scheduled garbage lines and torn tails) to an append-only log while
//! the pipeline tails it, assembles episodes, applies online SGNS
//! updates, and publishes snapshots into a live model registry. Between
//! chunks the pipeline is hard-crashed (dropped without writing a final
//! journal) and a scripted fault plan panics stages, fails and slows
//! publishes, tears journal slots, injects disk-write faults, and
//! poisons one snapshot mid-run — while the live log is compacted under
//! a byte budget and users unseen at startup grow the model. At the end:
//!
//! 1. every written record sits in exactly one of
//!    {applied, quarantined, pending} — checked against the writer's own
//!    ledger *and* the `inf2vec-obs` gauges, and
//! 2. a fresh, uninterrupted run over the same log bytes lands on a
//!    bit-identical model (`inf2vec::serve::store_checksum`).
//!
//! ```sh
//! cargo run --release --example pipeline_soak -- \
//!     /tmp/pipeline_soak_report.json /tmp/pipeline_soak_events.jsonl
//! ```
//!
//! Exits non-zero if any invariant fails; CI runs this and uploads both
//! the report JSON and the JSONL telemetry as artifacts.

use std::process::exit;
use std::sync::Arc;

use inf2vec::obs::{JsonlSink, Telemetry};
use inf2vec::pipeline::{run_soak, SoakConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let report_path = args.next();
    let jsonl_path = args.next();

    let telemetry = match &jsonl_path {
        Some(path) => {
            let sink = JsonlSink::create(path).unwrap_or_else(|e| {
                eprintln!("error: cannot open {path}: {e}");
                exit(2);
            });
            Telemetry::new(Arc::new(sink))
        }
        None => Telemetry::with_registry(),
    };

    let mut cfg = SoakConfig::default();
    cfg.pipeline.telemetry = telemetry.clone();
    let workdir = std::env::temp_dir().join(format!("pipeline_soak_{}", std::process::id()));

    let report = match run_soak(&cfg, &workdir) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: soak run failed: {e}");
            exit(2);
        }
    };
    let _ = std::fs::remove_dir_all(&workdir);

    let r = &report.reconciliation;
    println!(
        "[pipeline_soak] {} cycles, {} good + {} garbage records written",
        report.cycles, report.written_good, report.written_bad
    );
    println!(
        "[pipeline_soak] ledger: {} applied + {} pending = {} seen; {} quarantined",
        r.records_applied, r.records_pending, r.records_seen, r.records_quarantined
    );
    println!(
        "[pipeline_soak] restarts tail/train/publish: {}/{}/{}  publishes ok/failed/withheld/skipped: {}/{}/{}/{}  versions: {}",
        report.restarts.0,
        report.restarts.1,
        report.restarts.2,
        report.publishes.0,
        report.publishes.1,
        report.publishes.2,
        report.publishes.3,
        report.versions_installed,
    );
    println!(
        "[pipeline_soak] disk: {} compactions, live log peaked at {} B (budget {} B); growth: {}/{} users mid-stream, {} rows; quality gate withheld {}",
        report.compactions,
        report.max_live_log_bytes,
        report.log_budget_bytes,
        report.users_midstream,
        report.universe,
        report.final_rows,
        report.publishes.2,
    );
    println!(
        "[pipeline_soak] archive: {} seals / {} expiries, {} B reclaimed, {} B dropped, {} segments retained (budget {})",
        report.segments_sealed,
        report.segments_expired,
        report.bytes_reclaimed,
        report.bytes_dropped,
        report.segments_final,
        report.archive_max_segments,
    );

    if let Some(path) = &report_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            exit(2);
        }
        println!("[pipeline_soak] report written to {path}");
    }
    if let Err(e) = telemetry.flush() {
        eprintln!("warning: telemetry flush failed: {e}");
    }
    if let Some(path) = &jsonl_path {
        println!("[pipeline_soak] telemetry events written to {path}");
    }

    if !report.passed() {
        eprintln!(
            "FAILED: balanced={} gauges_consistent={} bit_identical={} disk_bounded={} disk_budget_held={} expiry_exact={} restore_identical={} growth_ok={} quality_gate_held={}",
            report.balanced,
            report.gauges_consistent,
            report.bit_identical,
            report.disk_bounded,
            report.disk_budget_held,
            report.expiry_exact,
            report.restore_identical,
            report.growth_ok,
            report.quality_gate_held,
        );
        exit(1);
    }
    println!(
        "OK: {} records reconciled exactly across {} crash cycles, replay bit-identical (checksum {:016x})",
        report.written_good + report.written_bad,
        report.cycles,
        r.store_checksum
    );
}
