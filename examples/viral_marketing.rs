//! Viral marketing: pick seed users with the learned embedding and compare
//! their simulated spread against degree-based seeding.
//!
//! The paper motivates influence learning with viral marketing [1]: choose
//! `k` seeds that maximize the expected number of influenced users. This
//! example uses the learned influence-ability bias + source norms to rank
//! seed candidates, then verifies the choice by simulating the ground-truth
//! Independent Cascade process the dataset was generated with.
//!
//! ```sh
//! cargo run --release --example viral_marketing
//! ```

use inf2vec::core::{train, Inf2vecConfig};
use inf2vec::diffusion::ic;
use inf2vec::diffusion::synth::{generate, SyntheticConfig};
use inf2vec::graph::NodeId;
use inf2vec::util::rng::Xoshiro256pp;

const SEEDS: usize = 5;
const SIMULATIONS: usize = 300;

fn main() {
    let synth = generate(&SyntheticConfig::tiny(), 21);
    let dataset = &synth.dataset;
    let split = dataset.split(0.8, 0.1, 2);

    // Learn influence embeddings from the training episodes only.
    let model = train(
        dataset,
        &split.train,
        &Inf2vecConfig {
            k: 32,
            epochs: 10,
            seed: 3,
            ..Inf2vecConfig::default()
        },
    );

    // Seed set A: the embedding's best spreaders (expected one-hop spread
    // under the learned probabilities).
    let learned: Vec<NodeId> = model
        .top_spreaders(&dataset.graph, SEEDS)
        .into_iter()
        .map(|(u, _)| u)
        .collect();

    // Seed set B: highest out-degree (the classic heuristic).
    let mut by_degree: Vec<NodeId> = dataset.graph.nodes().collect();
    by_degree.sort_by_key(|&u| std::cmp::Reverse(dataset.graph.out_degree(u)));
    let degree: Vec<NodeId> = by_degree.into_iter().take(SEEDS).collect();

    // Seed set C: random.
    let mut rng = Xoshiro256pp::new(4);
    let random: Vec<NodeId> = (0..SEEDS)
        .map(|_| NodeId(rng.below(dataset.graph.node_count() as u64) as u32))
        .collect();

    // Judge all three by the ground-truth cascade process.
    let report = |label: &str, seeds: &[NodeId]| {
        let mut total = 0usize;
        let mut rng = Xoshiro256pp::new(99);
        for _ in 0..SIMULATIONS {
            total += ic::simulate(&dataset.graph, &synth.truth, seeds, &mut rng).len();
        }
        let spread = total as f64 / SIMULATIONS as f64;
        println!("{label:<22} seeds {seeds:?}  expected spread {spread:.1}");
        spread
    };

    println!("expected influence spread under the ground-truth IC process:");
    let s_learned = report("embedding spreaders", &learned);
    let s_degree = report("degree heuristic", &degree);
    let s_random = report("random", &random);

    println!(
        "\nembedding vs degree: {:+.1}%, vs random: {:+.1}%",
        100.0 * (s_learned / s_degree - 1.0),
        100.0 * (s_learned / s_random - 1.0)
    );
}
