//! Serve-under-chaos demo: hammer the resilient scoring service from
//! worker threads while a scripted fault schedule breaks the snapshot
//! source — corrupted, slow, truncated, and flaky loads, a circuit-
//! breaker trip with a suppressed reload, a finite-parameter model that
//! overflows at scoring time (runtime quarantine + degraded bias-only
//! answers), and a final recovery swap — then prove three things:
//!
//! 1. every request got a definitive outcome (success, typed rejection,
//!    or flagged degraded answer) — nothing hung, nothing panicked,
//! 2. no NaN or unexpected non-finite score ever escaped, and
//! 3. every worker-side tally reconciles *exactly* against the
//!    `inf2vec-obs` metrics (`inf2vec_serve_requests_total{outcome=...}`,
//!    swap/suppression/quarantine counters).
//!
//! ```sh
//! cargo run --release --example serve_chaos -- \
//!     /tmp/serve_chaos_report.json /tmp/serve_chaos_events.jsonl
//! ```
//!
//! Exits non-zero if reconciliation fails; CI runs this and uploads both
//! the report JSON and the JSONL telemetry as artifacts.

use std::process::exit;
use std::sync::Arc;

use inf2vec::obs::{JsonlSink, Telemetry};
use inf2vec::serve::chaos::{run_chaos, ChaosConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let report_path = args.next();
    let jsonl_path = args.next();

    let telemetry = match &jsonl_path {
        Some(path) => {
            let sink = JsonlSink::create(path).unwrap_or_else(|e| {
                eprintln!("error: cannot open {path}: {e}");
                exit(2);
            });
            Telemetry::new(Arc::new(sink))
        }
        None => Telemetry::with_registry(),
    };

    let report = run_chaos(&ChaosConfig::default(), telemetry.clone());
    println!("{}", report.summary());

    if let Some(path) = &report_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            exit(2);
        }
        println!("[serve_chaos] report written to {path}");
    }
    if let Err(e) = telemetry.flush() {
        eprintln!("warning: telemetry flush failed: {e}");
    }
    if jsonl_path.is_some() {
        println!(
            "[serve_chaos] telemetry events written to {}",
            jsonl_path.as_deref().unwrap_or("-")
        );
    }

    if !report.reconciled() {
        eprintln!("FAILED: chaos tallies did not reconcile against the metrics");
        exit(1);
    }
    println!(
        "OK: {} requests, all outcomes definitive and reconciled exactly",
        report.requests
    );
}
