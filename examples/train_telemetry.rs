//! Telemetry demo: checkpointed training on a digg-like synthetic dataset
//! with every phase streaming JSONL events, then a round-trip of the event
//! stream and a Prometheus snapshot of the run.
//!
//! ```sh
//! cargo run --release --example train_telemetry [events.jsonl]
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use inf2vec::core::train::{train_resumable, CheckpointConfig, FaultTolerance};
use inf2vec::core::Inf2vecConfig;
use inf2vec::diffusion::synth::{generate, SyntheticConfig};
use inf2vec::embed::DivergenceGuard;
use inf2vec::obs::{Event, JsonlSink, Telemetry};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "telemetry.jsonl".into());

    // The digg-like generator, scaled down so the example runs in seconds.
    let synth = generate(&SyntheticConfig::digg_like().scaled(400, 60), 42);
    let dataset = &synth.dataset;
    let split = dataset.split(0.8, 0.1, 1);

    let sink = JsonlSink::create(&out).expect("open JSONL sink");
    let telemetry = Telemetry::new(Arc::new(sink));
    let config = Inf2vecConfig {
        k: 32,
        epochs: 8,
        seed: 42,
        telemetry: telemetry.clone(),
        ..Inf2vecConfig::default()
    };

    let ckpt = std::env::temp_dir().join(format!(
        "inf2vec-telemetry-{}.ckpt",
        std::process::id()
    ));
    let ft = FaultTolerance {
        checkpoint: Some(CheckpointConfig::every_epoch(&ckpt)),
        guard: Some(DivergenceGuard::default()),
    };
    let (_model, report) =
        train_resumable(dataset, &split.train, &config, &ft).expect("training succeeds");
    telemetry.flush().expect("flush telemetry");
    let _ = std::fs::remove_file(&ckpt);

    println!(
        "trained {} epochs over {} pairs ({:.0} pairs/s)",
        report.epochs, report.pairs_processed, report.pairs_per_sec
    );

    // Round-trip the stream: every line the sink wrote must parse back.
    let raw = std::fs::read_to_string(&out).expect("read event stream");
    let mut per_kind: BTreeMap<String, usize> = BTreeMap::new();
    let mut losses: Vec<f64> = Vec::new();
    for line in raw.lines() {
        let ev = Event::from_json(line).expect("event round-trips");
        *per_kind.entry(ev.kind().to_string()).or_insert(0) += 1;
        if ev.kind() == "epoch" {
            losses.push(ev.get("loss").and_then(|v| v.as_f64()).expect("loss field"));
        }
    }
    println!("\n{} events in {out}:", raw.lines().count());
    for (kind, n) in &per_kind {
        println!("  {kind:<12} {n}");
    }
    println!(
        "loss trajectory: {}",
        losses
            .iter()
            .map(|l| format!("{l:.4}"))
            .collect::<Vec<_>>()
            .join(" → ")
    );

    println!("\n--- Prometheus snapshot ---");
    print!("{}", telemetry.prometheus());
}
