//! Citation case study (the paper's §V-D / Table VI, miniaturized).
//!
//! Train an influence embedding on author-to-author citation relationships
//! and predict which researchers will cite a given author next, comparing
//! against the conventional ST + Monte-Carlo pipeline.
//!
//! ```sh
//! cargo run --release --example citation_study
//! ```

use inf2vec::baselines::st::Static;
use inf2vec::core::{train_on_pairs, Inf2vecConfig};
use inf2vec::diffusion::citation::{generate, CitationConfig};
use inf2vec::diffusion::ic;
use inf2vec::eval::score::CascadeModel as _;
use inf2vec::graph::NodeId;
use inf2vec::util::rng::Xoshiro256pp;
use inf2vec::util::TopK;

fn main() {
    let data = generate(&CitationConfig::tiny(), 5);
    let (train, test) = data.split(0.8, 6);
    println!(
        "{} authors, {} citation relationships ({} train / {} test)",
        data.n_authors,
        data.relationships.len(),
        train.len(),
        test.len()
    );

    // Embedding model: first-order influence pairs only (paper's setting).
    let pairs: Vec<(u32, u32)> = train.iter().map(|&(u, v)| (u.0, v.0)).collect();
    let embedding = train_on_pairs(
        data.n_authors as usize,
        &pairs,
        &Inf2vecConfig {
            k: 32,
            // The pair list is small, so converge with more passes and a
            // hotter rate than the full-pipeline defaults.
            epochs: 60,
            lr: 0.03,
            seed: 7,
            ..Inf2vecConfig::default()
        },
    );

    // Conventional model: ST probabilities + Monte-Carlo.
    let st = Static::from_pairs(&train);
    let graph = data.influence_graph(&train);
    let probs = st.edge_probs(&graph);

    // Query: the author with the most held-out citers (an informative demo
    // query; the `repro table6` bench averages over every test author).
    let mut test_count = vec![0u32; data.n_authors as usize];
    for &(u, _) in &test {
        test_count[u.index()] += 1;
    }
    let author = NodeId(
        (0..data.n_authors)
            .max_by_key(|&a| test_count[a as usize])
            .expect("authors exist"),
    );
    let truth: Vec<u32> = test
        .iter()
        .filter(|&&(u, _)| u == author)
        .map(|&(_, v)| v.0)
        .collect();
    let known: Vec<u32> = train
        .iter()
        .filter(|&&(u, _)| u == author)
        .map(|&(_, v)| v.0)
        .collect();
    println!(
        "\nquery author A{} ({} train citers, {} held-out citers)",
        author.0,
        known.len(),
        truth.len()
    );

    let mark = |v: u32| if truth.contains(&v) { "+" } else { "-" };

    // Embedding top-10 (excluding already-known citers).
    let mut top = TopK::new(10);
    for v in 0..data.n_authors {
        if v != author.0 && !known.contains(&v) {
            top.push(embedding.score(author, NodeId(v)) as f64, v);
        }
    }
    println!("embedding model predicts:");
    for (score, v) in top.into_sorted() {
        println!("  A{v} ({}) score {score:.3}", mark(v));
    }

    // Conventional top-10 by simulated citation spread.
    let mut rng = Xoshiro256pp::new(11);
    let freq = ic::monte_carlo(&graph, &probs, &[author], 500, &mut rng);
    let mut top = TopK::new(10);
    for v in 0..data.n_authors {
        if v != author.0 && !known.contains(&v) {
            top.push(freq[v as usize], v);
        }
    }
    println!("conventional model predicts:");
    for (score, v) in top.into_sorted() {
        println!("  A{v} ({}) spread-prob {score:.3}", mark(v));
    }
}
