#![warn(missing_docs)]

//! Inf2vec: latent representation model for social influence embedding.
//!
//! A full Rust implementation of Feng et al., *"Inf2vec: Latent
//! Representation Model for Social Influence Embedding"* (ICDE 2018),
//! including every substrate and baseline the paper's evaluation relies on.
//!
//! # Quick tour
//!
//! ```
//! use inf2vec::prelude::*;
//!
//! // A small synthetic social dataset (graph + diffusion episodes).
//! let synth = inf2vec::diffusion::synth::generate(
//!     &inf2vec::diffusion::synth::SyntheticConfig::tiny(),
//!     7,
//! );
//! let dataset = &synth.dataset;
//! let split = dataset.split(0.8, 0.1, 1);
//!
//! // Learn the influence embedding (Algorithm 2 of the paper).
//! let config = Inf2vecConfig { k: 16, epochs: 3, ..Inf2vecConfig::default() };
//! let model = inf2vec::core::train(dataset, &split.train, &config);
//!
//! // Score "how likely does user 0 influence user 1".
//! let x = model.score(NodeId(0), NodeId(1));
//! assert!(x.is_finite());
//! ```
//!
//! # Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `inf2vec-core` | the Inf2vec model: influence contexts (Algorithm 1), training (Algorithm 2), prediction (Eq. 7) |
//! | [`graph`] | `inf2vec-graph` | CSR digraphs, generators, random walks, edge-list I/O |
//! | [`ingest`] | `inf2vec-ingest` | robust streaming ingestion: error policies, defect quarantine, id remapping, validated dataset assembly |
//! | [`diffusion`] | `inf2vec-diffusion` | action logs, episodes, influence pairs, propagation networks, IC/LT simulators, synthetic datasets |
//! | [`embed`] | `inf2vec-embed` | embedding stores, SGNS kernels, Hogwild parallel SGD |
//! | [`baselines`] | `inf2vec-baselines` | DE, ST, IC-EM, Emb-IC, MF-BPR, node2vec |
//! | [`eval`] | `inf2vec-eval` | activation/diffusion prediction tasks, AUC/MAP/P@N, aggregators |
//! | [`serve`] | `inf2vec-serve` | resilient scoring service: versioned hot-swap registry, bounded admission, deadlines, circuit breaker, degraded fallback, chaos harness |
//! | [`pipeline`] | `inf2vec-pipeline` | crash-recoverable continuous learning: journaled log tailing, online SGNS, retried live publish, fault-injection soak |
//! | [`obs`] | `inf2vec-obs` | zero-dependency telemetry: metrics registry, spans, JSONL events, Prometheus exposition |
//! | [`tsne`] | `inf2vec-tsne` | exact t-SNE + PCA for embedding visualization |
//! | [`util`] | `inf2vec-util` | hashing, deterministic RNG, alias sampling, stats, text tables/plots |
//!
//! The `repro` binary (`cargo run -p inf2vec-bench --release --bin repro -- all`)
//! regenerates every table and figure of the paper; see EXPERIMENTS.md.

pub use inf2vec_baselines as baselines;
pub use inf2vec_core as core;
pub use inf2vec_diffusion as diffusion;
pub use inf2vec_embed as embed;
pub use inf2vec_eval as eval;
pub use inf2vec_graph as graph;
pub use inf2vec_ingest as ingest;
pub use inf2vec_obs as obs;
pub use inf2vec_pipeline as pipeline;
pub use inf2vec_serve as serve;
pub use inf2vec_tsne as tsne;
pub use inf2vec_util as util;

/// Commonly used items in one import.
pub mod prelude {
    pub use inf2vec_core::{Inf2vecConfig, Inf2vecModel};
    pub use inf2vec_diffusion::{Action, ActionLog, Dataset, Episode, ItemId, PropagationNetwork};
    pub use inf2vec_embed::EmbeddingStore;
    pub use inf2vec_eval::{Aggregator, RankingMetrics, ScoringModel};
    pub use inf2vec_graph::{DiGraph, GraphBuilder, NodeId};
    pub use inf2vec_ingest::{ErrorPolicy, IngestConfig, Ingestor, ValidatedDataset};
    pub use inf2vec_serve::{OverloadPolicy, Request, ScoringService, ServeConfig};
    pub use inf2vec_util::rng::Xoshiro256pp;
}
