//! End-to-end telemetry: a checkpointed training run must stream JSONL
//! events that round-trip through the parser, expose a Prometheus snapshot
//! with the headline series, and leave the learned parameters bit-identical
//! to an uninstrumented run.

use std::sync::Arc;

use inf2vec::core::train::{train_resumable, CheckpointConfig, FaultTolerance};
use inf2vec::core::Inf2vecConfig;
use inf2vec::diffusion::synth::{generate, SyntheticConfig, SyntheticDataset};
use inf2vec::embed::DivergenceGuard;
use inf2vec::obs::{Event, JsonlSink, MemorySink, Recorder, Telemetry};

const EPOCHS: usize = 4;

fn synth() -> SyntheticDataset {
    generate(&SyntheticConfig::tiny(), 11)
}

fn config(telemetry: Telemetry) -> Inf2vecConfig {
    Inf2vecConfig {
        k: 8,
        epochs: EPOCHS,
        seed: 5,
        telemetry,
        ..Inf2vecConfig::default()
    }
}

fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("inf2vec-test-{}-{name}", std::process::id()))
}

#[test]
fn resumable_run_streams_parseable_events_and_prometheus_series() {
    let synth = synth();
    let split = synth.dataset.split(0.8, 0.1, 2);
    let jsonl = scratch("events.jsonl");
    let ckpt = scratch("train.ckpt");

    let sink = JsonlSink::create(&jsonl).expect("open sink");
    let telemetry = Telemetry::new(Arc::new(sink));
    let ft = FaultTolerance {
        checkpoint: Some(CheckpointConfig::every_epoch(&ckpt)),
        guard: Some(DivergenceGuard::default()),
    };
    let (_, report) = train_resumable(&synth.dataset, &split.train, &config(telemetry.clone()), &ft)
        .expect("training succeeds");
    telemetry.flush().expect("flush");

    // The report carries the new timing fields.
    assert_eq!(report.epoch_durations.len(), EPOCHS);
    assert!(report.epoch_durations.iter().all(|&d| d >= 0.0));
    assert!(report.pairs_per_sec > 0.0);

    // Every line round-trips; per-epoch and checkpoint events are present.
    let raw = std::fs::read_to_string(&jsonl).expect("read stream");
    let events: Vec<Event> = raw
        .lines()
        .map(|l| Event::from_json(l).expect("line parses"))
        .collect();
    let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count();
    assert_eq!(count("epoch"), EPOCHS);
    assert_eq!(count("checkpoint"), EPOCHS);
    assert_eq!(count("corpus"), 1);
    assert_eq!(count("propnet"), 1);
    for ev in events.iter().filter(|e| e.kind() == "epoch") {
        let loss = ev.get("loss").and_then(|v| v.as_f64()).expect("loss");
        assert!(loss.is_finite());
        assert!(ev.get("t_ms").is_some(), "sink injects a timestamp");
    }

    // The Prometheus snapshot carries the headline series.
    let prom = telemetry.prometheus();
    for series in [
        "inf2vec_train_loss",
        "inf2vec_train_pairs_per_sec",
        "inf2vec_checkpoint_write_seconds_bucket",
        "inf2vec_train_epoch_seconds_count",
        "inf2vec_influence_pairs_total",
    ] {
        assert!(prom.contains(series), "missing {series} in:\n{prom}");
    }

    let _ = std::fs::remove_file(&jsonl);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn telemetry_does_not_change_the_learned_model() {
    let synth = synth();
    let split = synth.dataset.split(0.8, 0.1, 2);
    let ft = FaultTolerance::default();

    let (plain, _) = train_resumable(
        &synth.dataset,
        &split.train,
        &config(Telemetry::disabled()),
        &ft,
    )
    .expect("plain run");

    let sink = Arc::new(MemorySink::new());
    let (observed, _) = train_resumable(
        &synth.dataset,
        &split.train,
        &config(Telemetry::new(Arc::clone(&sink) as Arc<dyn Recorder>)),
        &ft,
    )
    .expect("observed run");

    assert!(!sink.events().is_empty(), "events were recorded");
    let bits = |m: &inf2vec::core::Inf2vecModel| -> Vec<u32> {
        m.store.source.to_vec().iter().map(|x| x.to_bits()).collect()
    };
    assert_eq!(bits(&plain), bits(&observed), "telemetry must be read-only");
}
