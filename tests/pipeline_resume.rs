//! End-to-end continuous-learning robustness: the ingest → train →
//! crash → resume path over an ingest-assembled [`ValidatedDataset`],
//! and the journaled pipeline crate's crash/replay guarantee driven
//! through the public facade.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use inf2vec::core::train::{
    train_resumable, train_resumable_on_source, CheckpointConfig, FaultTolerance,
};
use inf2vec::core::{Inf2vecConfig, InfluenceContextSource};
use inf2vec::embed::faultinject::PanicAfter;
use inf2vec::embed::{NegativeTable, PairSource};
use inf2vec::graph::io::write_edge_list;
use inf2vec::ingest::{ErrorPolicy, IngestConfig, Ingestor, ValidatedDataset};
use inf2vec::util::faultinject::{mangle_lines, MangleMode};

/// Fresh scratch directory per test (parallel test threads share a tmpdir).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("inf2vec-pr-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Serializes a tiny synthetic dataset, injects junk lines into both
/// files, and recovers a [`ValidatedDataset`] through the skip policy —
/// the realistic "data arrived dirty off the wire" starting point.
fn dirty_ingest() -> ValidatedDataset {
    let synth = inf2vec::diffusion::synth::generate(
        &inf2vec::diffusion::synth::SyntheticConfig::tiny(),
        7,
    );
    let mut edges = Vec::new();
    write_edge_list(&synth.dataset.graph, &mut edges).unwrap();
    let mut actions = Vec::new();
    synth.dataset.write_log(&mut actions).unwrap();
    let dirty_edges = mangle_lines(&edges, 5, MangleMode::InjectJunk, 0.15);
    let dirty_actions = mangle_lines(&actions, 6, MangleMode::InjectJunk, 0.15);

    let vd = Ingestor::new(IngestConfig {
        policy: ErrorPolicy::skip(u64::MAX),
        ..IngestConfig::default()
    })
    .ingest(dirty_edges.as_slice(), dirty_actions.as_slice(), "dirty")
    .unwrap();
    assert!(vd.total_defects() > 0, "junk injection must quarantine lines");
    vd
}

fn config(epochs: usize) -> Inf2vecConfig {
    Inf2vecConfig {
        k: 8,
        l: 6,
        epochs,
        seed: 42,
        ..Inf2vecConfig::default()
    }
}

/// The headline satellite guarantee: ingest a dirty log, train with
/// checkpoints, kill the process mid-epoch, restart against the same
/// checkpoint path — and end with exactly the model an uninterrupted run
/// over the same [`ValidatedDataset`] produces.
#[test]
fn ingest_train_crash_resume_is_bit_identical() {
    let dir = scratch("ingest-resume");
    let vd = dirty_ingest();
    let dataset = &vd.dataset;
    let all_idx: Vec<usize> = (0..dataset.log.episodes().len()).collect();
    let cfg = config(6);

    // Reference: uninterrupted run with checkpointing on.
    let ft_a = FaultTolerance {
        checkpoint: Some(CheckpointConfig::every_epoch(dir.join("a.ckpt"))),
        guard: None,
    };
    let (model_a, report_a) = train_resumable(dataset, &all_idx, &cfg, &ft_a).unwrap();
    assert_eq!(report_a.epoch_losses.len(), 6);

    // Crashed run: the same corpus the resumable path builds internally,
    // wrapped so it panics partway through epoch 2 (a process kill
    // between checkpoints).
    let n_nodes = dataset.graph.node_count() as usize;
    let nets = inf2vec::diffusion::PropagationNetwork::build_all(
        &dataset.graph,
        all_idx.iter().map(|&i| &dataset.log.episodes()[i]),
        &cfg.telemetry,
    );
    let source = InfluenceContextSource::new(nets, &cfg);
    let negatives = NegativeTable::from_counts(&source.context_target_counts(n_nodes));
    let per_epoch = source.pairs_per_epoch();
    let ft_b = FaultTolerance {
        checkpoint: Some(CheckpointConfig::every_epoch(dir.join("b.ckpt"))),
        guard: None,
    };
    let crashing = PanicAfter::new(source, 2 * per_epoch + 3, "killed");
    let crash = catch_unwind(AssertUnwindSafe(|| {
        train_resumable_on_source(n_nodes, &crashing, &negatives, &cfg, &ft_b)
    }));
    assert!(crash.is_err(), "the injected panic must abort the run");

    // Restart (fresh process analog): the public dataset-level entry
    // rebuilds the corpus itself and resumes from the surviving
    // checkpoint automatically.
    let (model_b, report_b) = train_resumable(dataset, &all_idx, &cfg, &ft_b).unwrap();
    assert_eq!(report_b.epoch_losses.len(), 4, "resume covers epochs 2..6");
    assert_eq!(
        model_a.store.source.to_vec(),
        model_b.store.source.to_vec(),
        "source matrices differ"
    );
    assert_eq!(
        model_a.store.target.to_vec(),
        model_b.store.target.to_vec(),
        "target matrices differ"
    );
    assert_eq!(report_a.epoch_losses[2..], report_b.epoch_losses[..]);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The pipeline crate through the facade: a crash-drop mid-stream and a
/// journal reopen must converge on the same model as one clean pass, and
/// the soak's reconciliation invariants must hold end to end.
#[test]
fn facade_soak_reconciles_and_replays() {
    let dir = scratch("facade-soak");
    let report = inf2vec::pipeline::run_soak(
        &inf2vec::pipeline::SoakConfig {
            cycles: 3,
            records_per_chunk: 60,
            ..inf2vec::pipeline::SoakConfig::default()
        },
        &dir,
    )
    .unwrap();
    assert!(report.balanced, "{}", report.to_json());
    assert!(report.bit_identical, "{}", report.to_json());
    assert!(report.passed(), "{}", report.to_json());

    let _ = std::fs::remove_dir_all(&dir);
}
