//! End-to-end integration tests: generate a dataset, train every method,
//! evaluate both tasks, and check the paper's qualitative ordering claims
//! on a small instance.

use inf2vec::baselines::{
    de::Degree,
    em::{IcEm, IcEmConfig},
    mf::{MfBpr, MfConfig},
    node2vec::{Node2vec, Node2vecConfig},
    st::Static,
};
use inf2vec::core::{train, Inf2vecConfig};
use inf2vec::diffusion::synth::{generate, SyntheticConfig, SyntheticDataset};
use inf2vec::diffusion::DatasetSplit;
use inf2vec::eval::activation::ActivationTask;
use inf2vec::eval::diffusion_task::DiffusionTask;
use inf2vec::eval::{Aggregator, RankingMetrics, ScoringModel};

fn setup() -> (SyntheticDataset, DatasetSplit) {
    let synth = generate(&SyntheticConfig::tiny(), 2024);
    let split = synth.dataset.split(0.8, 0.1, 9);
    (synth, split)
}

fn activation_task(synth: &SyntheticDataset, split: &DatasetSplit) -> ActivationTask {
    ActivationTask::build(
        &synth.dataset.graph,
        split.test.iter().map(|&i| &synth.dataset.log.episodes()[i]),
    )
}

fn assert_valid(m: &RankingMetrics) {
    for v in m.values() {
        assert!((0.0..=1.0).contains(&v), "metric out of range: {m:?}");
    }
}

#[test]
fn every_method_produces_valid_metrics_on_both_tasks() {
    let (synth, split) = setup();
    let graph = &synth.dataset.graph;
    let train_eps: Vec<_> = split
        .train
        .iter()
        .map(|&i| &synth.dataset.log.episodes()[i])
        .collect();

    let act = activation_task(&synth, &split);
    let diff = DiffusionTask::build(
        split.test.iter().map(|&i| &synth.dataset.log.episodes()[i]),
        DiffusionTask::SEED_FRACTION,
        100,
    );
    assert!(act.candidate_count() > 50, "task too small to be meaningful");
    assert!(act.positive_count() > 5);

    let de = Degree::new(graph);
    let st = Static::train(graph, train_eps.iter().copied());
    let em = IcEm::train(graph, &train_eps, &IcEmConfig { iterations: 5, init_prob: 0.1 }).bind(graph);
    let mf = MfBpr::train(
        graph.node_count() as usize,
        &train_eps,
        &MfConfig { k: 16, epochs: 5, ..MfConfig::default() },
    );
    let n2v = Node2vec::train(
        graph,
        &Node2vecConfig { k: 16, walks_per_node: 3, walk_length: 20, epochs: 2, ..Node2vecConfig::default() },
    );
    let inf = train(
        &synth.dataset,
        &split.train,
        &Inf2vecConfig { k: 16, l: 20, epochs: 6, seed: 4, ..Inf2vecConfig::default() },
    );

    let models: Vec<(&str, ScoringModel<'_>)> = vec![
        ("DE", ScoringModel::Cascade(&de)),
        ("ST", ScoringModel::Cascade(&st)),
        ("EM", ScoringModel::Cascade(&em)),
        ("MF", ScoringModel::Representation(&mf, Aggregator::Ave)),
        ("Node2vec", ScoringModel::Representation(&n2v, Aggregator::Ave)),
        ("Inf2vec", ScoringModel::Representation(&inf, Aggregator::Ave)),
    ];
    for (name, model) in &models {
        let m = act.evaluate(model);
        assert_valid(&m);
        assert!(m.auc > 0.0, "{name} activation AUC degenerate");
        let m = diff.evaluate(graph, model, 1);
        assert_valid(&m);
    }
}

/// The headline qualitative claim: Inf2vec beats the no-learning floor (DE)
/// and the structure-only baseline (node2vec) on activation prediction.
#[test]
fn inf2vec_beats_de_and_node2vec() {
    let (synth, split) = setup();
    let graph = &synth.dataset.graph;
    let act = activation_task(&synth, &split);

    let inf = train(
        &synth.dataset,
        &split.train,
        &Inf2vecConfig { k: 32, l: 30, epochs: 10, seed: 11, ..Inf2vecConfig::default() },
    );
    let m_inf = act.evaluate(&ScoringModel::Representation(&inf, Aggregator::Ave));

    let de = Degree::new(graph);
    let m_de = act.evaluate(&ScoringModel::Cascade(&de));

    let n2v = Node2vec::train(
        graph,
        &Node2vecConfig { k: 32, seed: 11, ..Node2vecConfig::default() },
    );
    let m_n2v = act.evaluate(&ScoringModel::Representation(&n2v, Aggregator::Ave));

    assert!(
        m_inf.auc > m_de.auc + 0.02,
        "Inf2vec {:.4} not above DE {:.4}",
        m_inf.auc,
        m_de.auc
    );
    assert!(
        m_inf.auc > m_n2v.auc + 0.02,
        "Inf2vec {:.4} not above Node2vec {:.4}",
        m_inf.auc,
        m_n2v.auc
    );
}

/// Table IV's claim: the full context mixture beats local-only (α = 1).
#[test]
fn inf2vec_beats_inf2vec_l() {
    let (synth, split) = setup();
    let act = activation_task(&synth, &split);
    let base = Inf2vecConfig { k: 32, l: 30, epochs: 10, seed: 13, ..Inf2vecConfig::default() };

    let full = train(&synth.dataset, &split.train, &base);
    let local = train(&synth.dataset, &split.train, &base.clone().inf2vec_l());

    let m_full = act.evaluate(&ScoringModel::Representation(&full, Aggregator::Ave));
    let m_local = act.evaluate(&ScoringModel::Representation(&local, Aggregator::Ave));
    assert!(
        m_full.auc > m_local.auc,
        "full {:.4} not above local-only {:.4}",
        m_full.auc,
        m_local.auc
    );
}

/// The whole pipeline is deterministic for a fixed seed (single-threaded).
#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let (synth, split) = setup();
        let act = activation_task(&synth, &split);
        let model = train(
            &synth.dataset,
            &split.train,
            &Inf2vecConfig { k: 8, l: 10, epochs: 3, seed: 21, ..Inf2vecConfig::default() },
        );
        act.evaluate(&ScoringModel::Representation(&model, Aggregator::Ave))
    };
    assert_eq!(run(), run());
}
