//! End-to-end fault-tolerance tests: crash-mid-epoch with resume,
//! Hogwild panic containment, divergence rollback, and checkpoint
//! integrity under failure — the acceptance suite for the robustness
//! layer.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use inf2vec::core::train::{
    train_resumable_on_source, CheckpointConfig, FaultTolerance,
};
use inf2vec::core::Inf2vecConfig;
use inf2vec::embed::checkpoint::write_checkpoint;
use inf2vec::embed::faultinject::PanicAfter;
use inf2vec::embed::{
    Checkpoint, DivergenceGuard, EmbeddingStore, EpochState, FlatPairs, NegativeTable, PairSource,
    SgnsConfig, SgnsTrainer, TrainOptions,
};
use inf2vec::util::{Inf2vecError, TrainError};

const N_NODES: usize = 30;

/// A deterministic ring-ish pair corpus: every node influences its next
/// three neighbours.
fn ring_pairs() -> Vec<(u32, u32)> {
    let n = N_NODES as u32;
    let mut pairs = Vec::new();
    for u in 0..n {
        for j in 1..=3 {
            pairs.push((u, (u + j) % n));
        }
    }
    pairs
}

fn config(epochs: usize) -> Inf2vecConfig {
    Inf2vecConfig {
        k: 8,
        epochs,
        seed: 42,
        ..Inf2vecConfig::default()
    }
}

/// Fresh scratch directory per test (parallel test threads share a tmpdir).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("inf2vec-ft-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_stores_identical(a: &EmbeddingStore, b: &EmbeddingStore) {
    assert_eq!(a.source.to_vec(), b.source.to_vec(), "source matrices differ");
    assert_eq!(a.target.to_vec(), b.target.to_vec(), "target matrices differ");
    assert_eq!(a.bias_src.to_vec(), b.bias_src.to_vec(), "source biases differ");
    assert_eq!(a.bias_tgt.to_vec(), b.bias_tgt.to_vec(), "target biases differ");
}

/// The headline guarantee: kill training mid-epoch, restart from the
/// on-disk checkpoint, and end up with exactly the model an uninterrupted
/// run produces (single-thread mode).
#[test]
fn crash_mid_epoch_then_resume_is_bit_identical() {
    let dir = scratch("resume");
    let cfg = config(6);
    let negatives = NegativeTable::uniform(N_NODES as u32);
    let per_epoch = ring_pairs().len() as u64;

    // Reference: uninterrupted run with checkpointing on.
    let ft_a = FaultTolerance {
        checkpoint: Some(CheckpointConfig::every_epoch(dir.join("a.ckpt"))),
        guard: None,
    };
    let source_a = FlatPairs::new(ring_pairs());
    let (model_a, report_a) =
        train_resumable_on_source(N_NODES, &source_a, &negatives, &cfg, &ft_a).unwrap();
    assert_eq!(report_a.epoch_losses.len(), 6);

    // Crashed run: the source panics partway through epoch 2, simulating a
    // process kill between checkpoints.
    let ft_b = FaultTolerance {
        checkpoint: Some(CheckpointConfig::every_epoch(dir.join("b.ckpt"))),
        guard: None,
    };
    let crashing = PanicAfter::new(FlatPairs::new(ring_pairs()), 2 * per_epoch + 7, "killed");
    let crash = catch_unwind(AssertUnwindSafe(|| {
        train_resumable_on_source(N_NODES, &crashing, &negatives, &cfg, &ft_b)
    }));
    assert!(crash.is_err(), "the injected panic must abort the run");

    // The checkpoint captured the last *completed* epoch, atomically.
    let ck = Checkpoint::load_from_path(&dir.join("b.ckpt")).unwrap();
    assert_eq!(ck.epochs_done, 2);
    assert!(!ck.store.has_non_finite());

    // Restart (fresh process analog: new source, same config + paths) —
    // resume is automatic because the checkpoint file exists.
    let source_b = FlatPairs::new(ring_pairs());
    let (model_b, report_b) =
        train_resumable_on_source(N_NODES, &source_b, &negatives, &cfg, &ft_b).unwrap();
    assert_eq!(report_b.epoch_losses.len(), 4, "resume covers epochs 2..6");
    assert_stores_identical(&model_a.store, &model_b.store);

    // And the resumed tail reports the same per-epoch losses.
    assert_eq!(report_a.epoch_losses[2..], report_b.epoch_losses[..]);

    let _ = std::fs::remove_dir_all(&dir);
}

/// In Hogwild mode a worker panic must surface as a typed error carrying
/// the shard coordinates — not tear down the process — and the checkpoint
/// written before the crash must stay usable.
#[test]
fn hogwild_worker_panic_degrades_to_typed_error_and_resumes() {
    let dir = scratch("hogwild");
    let mut cfg = config(4);
    cfg.threads = 2;
    let negatives = NegativeTable::uniform(N_NODES as u32);
    let per_epoch = ring_pairs().len() as u64;
    let ft = FaultTolerance {
        checkpoint: Some(CheckpointConfig::every_epoch(dir.join("h.ckpt"))),
        guard: None,
    };

    let crashing = PanicAfter::new(FlatPairs::new(ring_pairs()), per_epoch + 3, "worker meltdown");
    let err = train_resumable_on_source(N_NODES, &crashing, &negatives, &cfg, &ft).unwrap_err();
    match err {
        Inf2vecError::Train(TrainError::WorkerPanic {
            epoch,
            shard,
            n_shards,
            message,
        }) => {
            assert_eq!(epoch, 1, "epoch 0 completed before the injected panic");
            assert_eq!(n_shards, 2);
            assert!(shard < 2);
            assert!(message.contains("worker meltdown"), "{message}");
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }

    // Epoch 0's checkpoint survived the worker crash and resumes cleanly.
    let ck = Checkpoint::load_from_path(&dir.join("h.ckpt")).unwrap();
    assert_eq!(ck.epochs_done, 1);
    let source = FlatPairs::new(ring_pairs());
    let (model, report) =
        train_resumable_on_source(N_NODES, &source, &negatives, &cfg, &ft).unwrap();
    assert_eq!(report.epoch_losses.len(), 3, "resume covers epochs 1..4");
    assert!(!model.store.has_non_finite());

    let _ = std::fs::remove_dir_all(&dir);
}

/// Divergence mid-run: the guard rolls back to the last healthy snapshot,
/// backs off the learning rate, records the recovery, and finishes with
/// finite parameters — while every checkpoint written along the way holds
/// only healthy state.
#[test]
fn divergence_guard_recovers_and_checkpoints_stay_healthy() {
    let dir = scratch("diverge");
    let ckpt = dir.join("d.ckpt");
    let store = EmbeddingStore::new(N_NODES, 8, 9);
    let source = FlatPairs::new(ring_pairs());
    let negatives = NegativeTable::uniform(N_NODES as u32);
    let trainer = SgnsTrainer::try_new(SgnsConfig {
        negatives: 5,
        lr: 0.05,
        lr_min: 0.05,
        epochs: 5,
        threads: 1,
        seed: 77,
    })
    .unwrap();

    // The hook checkpoints every healthy epoch, then simulates parameter
    // corruption (e.g. a bad memory page) right after epoch 1's snapshot.
    let mut poisoned = false;
    let mut hook = |st: &EpochState| -> std::io::Result<()> {
        write_checkpoint(
            &ckpt,
            st.epoch + 1,
            st.pairs_processed,
            st.lr_scale,
            Some(st.mean_loss),
            &store,
        )?;
        if st.epoch == 1 && !poisoned {
            poisoned = true;
            // SAFETY: single-thread training; no concurrent writers.
            unsafe {
                for row in 0..N_NODES {
                    for x in store.source.row_mut(row) {
                        *x *= 1e4;
                    }
                }
            }
        }
        Ok(())
    };
    let report = trainer
        .try_train_with(
            &store,
            &source,
            &negatives,
            TrainOptions {
                guard: Some(DivergenceGuard::default()),
                on_epoch: Some(&mut hook),
                ..TrainOptions::default()
            },
        )
        .unwrap();

    assert!(!report.recoveries.is_empty(), "the poisoned epoch must trigger a rollback");
    for r in &report.recoveries {
        assert!(r.lr_scale < 1.0, "recovery must back off the learning rate");
    }
    assert_eq!(report.epoch_losses.len(), 5);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    assert!(!store.has_non_finite(), "rollback must restore healthy parameters");

    // Nothing unhealthy ever reached the disk.
    let ck = Checkpoint::load_from_path(&ckpt).unwrap();
    assert_eq!(ck.epochs_done, 5);
    assert!(!ck.store.has_non_finite());

    let _ = std::fs::remove_dir_all(&dir);
}

/// When the recovery budget runs out the public pipeline reports
/// `Diverged` — and the checkpoint on disk still holds the last healthy
/// epoch, so no NaN ever reaches a saved model file.
#[test]
fn exhausted_recovery_budget_errors_but_keeps_last_good_checkpoint() {
    let dir = scratch("budget");
    let cfg = config(4);
    let negatives = NegativeTable::uniform(N_NODES as u32);
    let source = FlatPairs::new(ring_pairs());
    // blowup = 0 declares every epoch after the first diverged: the guard
    // must burn its whole budget and give up.
    let ft = FaultTolerance {
        checkpoint: Some(CheckpointConfig::every_epoch(dir.join("g.ckpt"))),
        guard: Some(DivergenceGuard {
            blowup: 0.0,
            backoff: 0.5,
            max_recoveries: 2,
        }),
    };
    let err = train_resumable_on_source(N_NODES, &source, &negatives, &cfg, &ft).unwrap_err();
    match err {
        Inf2vecError::Train(TrainError::Diverged { recoveries, .. }) => {
            assert_eq!(recoveries, 2)
        }
        other => panic!("expected Diverged, got {other}"),
    }
    let ck = Checkpoint::load_from_path(&dir.join("g.ckpt")).unwrap();
    assert_eq!(ck.epochs_done, 1, "only the healthy first epoch was persisted");
    assert!(!ck.store.has_non_finite());

    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming against the wrong geometry or a corrupted checkpoint file is
/// an error, never a panic and never silent corruption.
#[test]
fn resume_rejects_mismatched_or_corrupt_checkpoints() {
    let dir = scratch("reject");
    let negatives = NegativeTable::uniform(N_NODES as u32);
    let source = FlatPairs::new(ring_pairs());
    let ft = FaultTolerance {
        checkpoint: Some(CheckpointConfig::every_epoch(dir.join("r.ckpt"))),
        guard: None,
    };
    train_resumable_on_source(N_NODES, &source, &negatives, &config(2), &ft).unwrap();

    // Same checkpoint, different embedding dimension.
    let mut cfg_k = config(2);
    cfg_k.k = 4;
    assert!(matches!(
        train_resumable_on_source(N_NODES, &source, &negatives, &cfg_k, &ft),
        Err(Inf2vecError::Train(TrainError::ShapeMismatch { .. }))
    ));

    // Same checkpoint, different node universe.
    let more_nodes = N_NODES + 5;
    let negatives_more = NegativeTable::uniform(more_nodes as u32);
    assert!(matches!(
        train_resumable_on_source(more_nodes, &source, &negatives_more, &config(2), &ft),
        Err(Inf2vecError::Train(TrainError::ShapeMismatch { .. }))
    ));

    // Checkpoint claiming more epochs than the config allows.
    let mut cfg_short = config(2);
    cfg_short.epochs = 1;
    assert!(train_resumable_on_source(N_NODES, &source, &negatives, &cfg_short, &ft).is_err());

    // A trashed checkpoint file is a clean error.
    std::fs::write(dir.join("r.ckpt"), b"definitely not a checkpoint\n").unwrap();
    assert!(train_resumable_on_source(N_NODES, &source, &negatives, &config(2), &ft).is_err());

    let _ = std::fs::remove_dir_all(&dir);
}

/// The fault injector itself: fires exactly once, then the same wrapped
/// source works normally — which is what makes "resume with the same
/// objects" scenarios possible in tests.
#[test]
fn panic_injector_is_single_shot() {
    let inner = FlatPairs::new(ring_pairs());
    let total = inner.pairs_per_epoch();
    let src = PanicAfter::new(inner, 5, "boom");
    let mut rng = inf2vec::util::rng::Xoshiro256pp::new(1);
    let mut seen = 0u64;
    let r = catch_unwind(AssertUnwindSafe(|| {
        let mut rng = inf2vec::util::rng::Xoshiro256pp::new(1);
        src.for_each_pair(0, 0, 1, &mut rng, &mut |_, _| {});
    }));
    assert!(r.is_err());
    src.for_each_pair(0, 0, 1, &mut rng, &mut |_, _| seen += 1);
    assert_eq!(seen, total, "after firing, the injector is transparent");
}
