//! Degenerate-input behavior: empty episodes, singleton graphs, isolated
//! nodes, and training over corpora that generate no pairs at all. None of
//! these may panic; each has a defined, boring outcome.

use inf2vec::core::context::generate_context;
use inf2vec::core::{train, try_train, Inf2vecConfig, InfluenceContextSource};
use inf2vec::diffusion::{ActionLog, Dataset, Episode, ItemId, PropagationNetwork};
use inf2vec::embed::PairSource;
use inf2vec::graph::{GraphBuilder, NodeId};
use inf2vec::util::rng::Xoshiro256pp;

fn small_config() -> Inf2vecConfig {
    Inf2vecConfig {
        k: 4,
        l: 5,
        epochs: 2,
        ..Inf2vecConfig::default()
    }
}

#[test]
fn empty_episode_builds_an_empty_network() {
    let g = GraphBuilder::with_nodes(3).build();
    let e = Episode::new(ItemId(0), Vec::new());
    let net = PropagationNetwork::build(&g, &e);
    assert!(net.is_empty());
    assert_eq!(net.len(), 0);
    assert_eq!(net.edge_count(), 0);
    assert!(net.nodes().is_empty());
}

#[test]
fn singleton_episode_has_no_influence_edges() {
    let mut b = GraphBuilder::with_nodes(2);
    b.add_edge(NodeId(0), NodeId(1));
    let g = b.build();
    let e = Episode::new(ItemId(0), vec![(NodeId(0), 5)]);
    let net = PropagationNetwork::build(&g, &e);
    assert_eq!(net.len(), 1);
    assert_eq!(net.edge_count(), 0);
    // A single adopter has nobody to influence and nobody to sample: the
    // context is empty in both components.
    let mut rng = Xoshiro256pp::new(1);
    let ctx = generate_context(&net, 0, 3, 3, 0.5, &mut rng);
    assert!(ctx.is_empty(), "got {ctx:?}");
}

#[test]
fn isolated_adopters_yield_global_context_only() {
    // Three adopters, zero social edges between them: no influence pairs,
    // so the local walk finds nothing — but Algorithm 1's global component
    // still samples co-adopters.
    let g = GraphBuilder::with_nodes(5).build();
    let e = Episode::new(ItemId(0), vec![(NodeId(0), 1), (NodeId(2), 2), (NodeId(4), 3)]);
    let net = PropagationNetwork::build(&g, &e);
    assert_eq!(net.len(), 3);
    assert_eq!(net.edge_count(), 0);
    let mut rng = Xoshiro256pp::new(2);
    let ctx = generate_context(&net, 0, 4, 4, 0.5, &mut rng);
    assert!(ctx.len() <= 4, "no local component possible, got {ctx:?}");
    assert!(
        ctx.iter().all(|&v| v != 0 && v < 3),
        "global samples must be other episode members, got {ctx:?}"
    );
}

#[test]
fn zero_length_context_requests_are_fine() {
    let mut b = GraphBuilder::with_nodes(3);
    b.add_edge(NodeId(0), NodeId(1));
    let g = b.build();
    let e = Episode::new(ItemId(0), vec![(NodeId(0), 1), (NodeId(1), 2)]);
    let net = PropagationNetwork::build(&g, &e);
    let mut rng = Xoshiro256pp::new(3);
    assert!(generate_context(&net, 0, 0, 0, 0.5, &mut rng).is_empty());
}

#[test]
fn corpus_over_empty_and_singleton_networks_is_empty() {
    let g = GraphBuilder::with_nodes(4).build();
    let nets = vec![
        PropagationNetwork::build(&g, &Episode::new(ItemId(0), Vec::new())),
        PropagationNetwork::build(&g, &Episode::new(ItemId(1), vec![(NodeId(1), 1)])),
    ];
    let src = InfluenceContextSource::new(nets, &small_config());
    assert_eq!(src.tuple_count(), 0);
    assert_eq!(src.pairs_per_epoch(), 0);
    let counts = src.context_target_counts(4);
    assert!(counts.iter().all(|&c| c == 0));
}

#[test]
fn training_on_a_pairless_dataset_still_returns_a_model() {
    // Every episode is a singleton: the corpus generates zero pairs. The
    // model must come back (untrained but finite), not hang or panic.
    let mut b = GraphBuilder::with_nodes(4);
    b.add_edge(NodeId(0), NodeId(1));
    let g = b.build();
    let log = ActionLog::from_episodes(vec![
        Episode::new(ItemId(0), vec![(NodeId(0), 1)]),
        Episode::new(ItemId(1), vec![(NodeId(2), 1)]),
    ]);
    let d = Dataset::new(g, log, "degenerate");
    let idx: Vec<usize> = (0..d.log.len()).collect();
    let model = try_train(&d, &idx, &small_config()).unwrap();
    assert_eq!(model.store.len(), 4);
    assert!(!model.store.has_non_finite());
}

#[test]
fn training_on_an_empty_episode_selection_works() {
    let mut b = GraphBuilder::with_nodes(3);
    b.add_edge(NodeId(0), NodeId(1));
    let g = b.build();
    let log = ActionLog::from_episodes(vec![Episode::new(
        ItemId(0),
        vec![(NodeId(0), 1), (NodeId(1), 2)],
    )]);
    let d = Dataset::new(g, log, "tiny");
    let model = train(&d, &[], &small_config());
    assert_eq!(model.store.len(), 3);
    assert!(!model.store.has_non_finite());
}

#[test]
fn simultaneous_adoptions_carry_no_influence_edge() {
    // Influence requires strictly earlier activation (Definition 1): two
    // users adopting at the same timestamp influence neither direction.
    let mut b = GraphBuilder::with_nodes(2);
    b.add_edge(NodeId(0), NodeId(1));
    b.add_edge(NodeId(1), NodeId(0));
    let g = b.build();
    let e = Episode::new(ItemId(0), vec![(NodeId(0), 7), (NodeId(1), 7)]);
    let net = PropagationNetwork::build(&g, &e);
    assert_eq!(net.len(), 2);
    assert_eq!(net.edge_count(), 0);
}
