//! Cross-crate learning-quality checks: the counting baselines behave
//! sensibly relative to each other and to the ground truth, and the
//! influence-maximization loop closes end to end.

use inf2vec::baselines::st::Static;
use inf2vec::core::{train, Inf2vecConfig};
use inf2vec::diffusion::im::{celf_greedy, ImConfig};
use inf2vec::diffusion::synth::{generate, SyntheticConfig};
use inf2vec::diffusion::{ic, Episode};
use inf2vec::eval::score::CascadeModel as _;
use inf2vec::graph::NodeId;
use inf2vec::util::rng::Xoshiro256pp;

/// ST's learned probabilities must correlate with the generator's ground
/// truth: edges it estimates as high-probability should truly be stronger
/// on average than the edges it estimates as zero.
#[test]
fn st_estimates_correlate_with_ground_truth() {
    let synth = generate(&SyntheticConfig::tiny(), 99);
    let graph = &synth.dataset.graph;
    let episodes: Vec<&Episode> = synth.dataset.log.episodes().iter().collect();
    let st = Static::train(graph, episodes.iter().copied());

    let mut truth_observed = 0.0f64;
    let mut n_observed = 0usize;
    let mut truth_unobserved = 0.0f64;
    let mut n_unobserved = 0usize;
    for (u, v) in graph.edges() {
        let truth = synth.truth.get(graph, u, v) as f64;
        if st.edge_prob(u, v) > 0.0 {
            truth_observed += truth;
            n_observed += 1;
        } else {
            truth_unobserved += truth;
            n_unobserved += 1;
        }
    }
    assert!(n_observed > 50, "too few observed edges: {n_observed}");
    assert!(n_unobserved > 50);
    let observed = truth_observed / n_observed as f64;
    let unobserved = truth_unobserved / n_unobserved as f64;
    assert!(
        observed > 1.5 * unobserved,
        "observed edges truth {observed:.4} vs unobserved {unobserved:.4}"
    );
}

/// CELF on the ground truth must beat random seeding by a wide margin
/// when judged by the ground truth itself.
#[test]
fn celf_on_truth_beats_random_seeds() {
    let synth = generate(&SyntheticConfig::tiny(), 55);
    let graph = &synth.dataset.graph;
    let im = ImConfig {
        k: 4,
        simulations: 60,
        seed: 1,
    };
    let chosen = celf_greedy(graph, &synth.truth, &im);

    let spread = |seeds: &[NodeId]| {
        let mut rng = Xoshiro256pp::new(7);
        let mut total = 0usize;
        for _ in 0..200 {
            total += ic::simulate(graph, &synth.truth, seeds, &mut rng).len();
        }
        total as f64 / 200.0
    };
    let good = spread(&chosen.seed_nodes());

    let mut rng = Xoshiro256pp::new(3);
    let mut random_total = 0.0;
    for _ in 0..5 {
        let seeds: Vec<NodeId> = (0..4)
            .map(|_| NodeId(rng.below(graph.node_count() as u64) as u32))
            .collect();
        random_total += spread(&seeds);
    }
    let random = random_total / 5.0;
    assert!(
        good > 2.0 * random,
        "CELF spread {good:.1} vs random {random:.1}"
    );
}

/// The learned model's calibrated probabilities support cascade
/// simulation: simulated spreads are finite, nonzero, and respond to the
/// calibration target.
#[test]
fn learned_probabilities_drive_simulation() {
    let synth = generate(&SyntheticConfig::tiny(), 77);
    let split = synth.dataset.split(0.8, 0.1, 1);
    let model = train(
        &synth.dataset,
        &split.train,
        &Inf2vecConfig {
            k: 16,
            l: 15,
            epochs: 5,
            seed: 2,
            ..Inf2vecConfig::default()
        },
    );
    let graph = &synth.dataset.graph;
    let spread_at = |mean_p: f64| {
        let probs = model.edge_probs_calibrated(graph, mean_p);
        let mut rng = Xoshiro256pp::new(5);
        let mut total = 0usize;
        for _ in 0..100 {
            total += ic::simulate(graph, &probs, &[NodeId(0), NodeId(1)], &mut rng).len();
        }
        total as f64 / 100.0
    };
    let low = spread_at(0.01);
    let high = spread_at(0.10);
    assert!(low.is_finite() && high.is_finite());
    assert!(
        high > low,
        "spread should grow with calibration target: {low} vs {high}"
    );
}
