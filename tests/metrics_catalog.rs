//! METRICS.md cross-check: drive the real stack — ingest, corpus and
//! propagation-network builds, resumable training with checkpoints,
//! evaluation timing, and the batched HTTP serving path over a live
//! loopback socket — into one shared registry, then assert that every
//! series the Prometheus snapshot emits is named in `METRICS.md`.
//!
//! The check is directional on purpose: the catalogue may document
//! series this quick run never touches (pipeline soak counters, fault
//! paths), but any series the stack emits without a catalogue entry is
//! a documentation bug and fails the test.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

use inf2vec::core::train::{train_resumable, CheckpointConfig, FaultTolerance};
use inf2vec::core::Inf2vecConfig;
use inf2vec::embed::{DivergenceGuard, EmbeddingStore};
use inf2vec::eval::runner::observe_evaluation;
use inf2vec::graph::io::write_edge_list;
use inf2vec::ingest::{ErrorPolicy, IngestConfig, Ingestor};
use inf2vec::obs::Telemetry;
use inf2vec::serve::{
    BatchConfig, Batcher, Frontend, FrontendConfig, ScoringService, ServeConfig,
};
use inf2vec::util::faultinject::{mangle_lines, MangleMode};

const CATALOG: &str = include_str!("../METRICS.md");

fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("inf2vec-catalog-{}-{name}", std::process::id()))
}

/// One serial HTTP exchange against the front-end; returns the status line.
fn http(addr: &std::net::SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request).expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    String::from_utf8_lossy(&raw).lines().next().unwrap_or("").to_string()
}

fn post(addr: &std::net::SocketAddr, path: &str, body: &str) -> String {
    http(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Emits metrics from every subsystem this test can reach quickly.
fn drive_stack(telemetry: &Telemetry) {
    // Ingest a junk-injected dump through the skip policy: records,
    // bytes, defects, quarantined, and timing series per stream.
    let synth = inf2vec::diffusion::synth::generate(
        &inf2vec::diffusion::synth::SyntheticConfig::tiny(),
        7,
    );
    let mut edges = Vec::new();
    write_edge_list(&synth.dataset.graph, &mut edges).unwrap();
    let mut actions = Vec::new();
    synth.dataset.write_log(&mut actions).unwrap();
    let dirty_edges = mangle_lines(&edges, 5, MangleMode::InjectJunk, 0.2);
    let dirty_actions = mangle_lines(&actions, 6, MangleMode::InjectJunk, 0.2);
    Ingestor::new(IngestConfig {
        policy: ErrorPolicy::skip(u64::MAX),
        telemetry: telemetry.clone(),
        ..IngestConfig::default()
    })
    .ingest(dirty_edges.as_slice(), dirty_actions.as_slice(), "catalog")
    .expect("dirty ingest recovers");

    // Corpus + propnet builds, SGNS epochs, checkpoint writes, and the
    // divergence guard's bookkeeping all flow through the same handle.
    let cfg = Inf2vecConfig {
        k: 8,
        epochs: 2,
        seed: 5,
        telemetry: telemetry.clone(),
        ..Inf2vecConfig::default()
    };
    let all_idx: Vec<usize> = (0..synth.dataset.log.episodes().len()).collect();
    let ft = FaultTolerance {
        checkpoint: Some(CheckpointConfig::every_epoch(scratch("ckpt"))),
        guard: Some(DivergenceGuard::default()),
    };
    train_resumable(&synth.dataset, &all_idx, &cfg, &ft).expect("training succeeds");

    // Evaluation timing shim.
    observe_evaluation(telemetry, "catalog_check", || ());

    // The serving plane over a real socket: service, batcher, and
    // front-end series, including an error response and a request that
    // never parses as HTTP (protocol error counter).
    let svc = Arc::new(ScoringService::new(ServeConfig::default(), telemetry.clone()));
    svc.install_store(EmbeddingStore::new(64, 8, 42), "catalog-v1")
        .expect("install model");
    let batcher = Arc::new(Batcher::start(Arc::clone(&svc), BatchConfig::default()));
    let frontend = Frontend::start("127.0.0.1:0", batcher, FrontendConfig::default())
        .expect("bind front-end");
    let addr = frontend.local_addr();
    let ok = post(&addr, "/v1/rank", r#"{"u":1,"candidates":[2,3,4,5],"top_n":2}"#);
    assert!(ok.contains("200"), "rank should succeed: {ok}");
    let bad = post(&addr, "/v1/rank", r#"{"u":1,"candidates":[2],"top_n":0}"#);
    assert!(bad.contains("400"), "top_n=0 should be rejected: {bad}");
    let garbage = http(&addr, b"NOT AN HTTP REQUEST\r\n\r\n");
    assert!(garbage.contains("400"), "garbage should 400: {garbage}");
    frontend.stop();
}

/// Every series name in the snapshot must appear verbatim in METRICS.md.
#[test]
fn every_emitted_series_is_documented_in_metrics_md() {
    let telemetry = Telemetry::with_registry();
    drive_stack(&telemetry);

    let snap = telemetry.snapshot();
    assert!(
        snap.samples.len() > 20,
        "stack drive emitted suspiciously few series ({}) — the \
         cross-check would be vacuous",
        snap.samples.len()
    );
    let mut missing: Vec<&str> = snap
        .samples
        .iter()
        .map(|s| s.name.as_str())
        .filter(|name| !CATALOG.contains(&format!("`{name}`")))
        .collect();
    missing.sort_unstable();
    missing.dedup();
    assert!(
        missing.is_empty(),
        "series emitted by the stack but absent from METRICS.md: {missing:?}"
    );

    // Spot-check the families this run must have reached, so a silent
    // regression in the drive itself (e.g. telemetry handle not passed
    // through) cannot make the catalogue check pass vacuously.
    for family in [
        "inf2vec_ingest_records_total",
        "inf2vec_corpus_build_seconds",
        "inf2vec_propnet_build_seconds",
        "inf2vec_train_pairs_total",
        "inf2vec_eval_seconds",
        "inf2vec_serve_requests_total",
        "inf2vec_serve_batch_size",
        "inf2vec_frontend_http_requests_total",
        "inf2vec_frontend_protocol_errors_total",
    ] {
        assert!(
            snap.samples.iter().any(|s| s.name == family),
            "expected the drive to emit {family}"
        );
    }
}
