//! Integration tests for the policy-driven ingest path: no input may
//! panic the loader, junk injection must be fully quarantined with the
//! clean dataset recovered bit-identically, and the error budget must
//! abort runs that exceed it.

use inf2vec::graph::io::write_edge_list;
use inf2vec::ingest::{ErrorPolicy, IngestConfig, IngestError, Ingestor};
use inf2vec::prelude::*;
use inf2vec::util::faultinject::{mangle_lines, MangleMode};
use proptest::prelude::*;

/// A clean serialized fixture: (edge-list bytes, action-log bytes, dataset).
fn clean_fixture() -> (Vec<u8>, Vec<u8>, Dataset) {
    let synth = inf2vec::diffusion::synth::generate(
        &inf2vec::diffusion::synth::SyntheticConfig::tiny(),
        7,
    );
    let mut edges = Vec::new();
    write_edge_list(&synth.dataset.graph, &mut edges).unwrap();
    let mut actions = Vec::new();
    synth.dataset.write_log(&mut actions).unwrap();
    (edges, actions, synth.dataset)
}

fn ingest_with(policy: ErrorPolicy, edges: &[u8], actions: &[u8]) -> Result<(), IngestError> {
    Ingestor::new(IngestConfig {
        policy,
        ..IngestConfig::default()
    })
    .ingest(edges, actions, "fuzz")
    .map(|_| ())
}

fn newline_count(bytes: &[u8]) -> u64 {
    bytes.iter().filter(|&&b| b == b'\n').count() as u64
}

#[test]
fn inject_junk_is_fully_quarantined_and_dataset_recovered() {
    let (edges, actions, _) = clean_fixture();
    for seed in [1u64, 2, 3, 11, 99] {
        let dirty_edges = mangle_lines(&edges, seed, MangleMode::InjectJunk, 0.2);
        let dirty_actions = mangle_lines(&actions, seed ^ 0xFF, MangleMode::InjectJunk, 0.2);

        let clean = Ingestor::default()
            .ingest(edges.as_slice(), actions.as_slice(), "clean")
            .unwrap();
        let dirty = Ingestor::new(IngestConfig {
            policy: ErrorPolicy::skip(u64::MAX),
            ..IngestConfig::default()
        })
        .ingest(dirty_edges.as_slice(), dirty_actions.as_slice(), "dirty")
        .unwrap();

        // Junk lines never parse, so every injected line is exactly one
        // quarantined record — no more, no less.
        let injected_edges = newline_count(&dirty_edges) - newline_count(&edges);
        let injected_actions = newline_count(&dirty_actions) - newline_count(&actions);
        assert!(injected_edges > 0, "seed {seed} injected nothing");
        assert_eq!(dirty.edges.quarantined, injected_edges, "seed {seed}");
        assert_eq!(dirty.actions.quarantined, injected_actions, "seed {seed}");
        assert_eq!(dirty.total_defects(), injected_edges + injected_actions);

        // And the surviving dataset is the clean one, bit for bit.
        assert_eq!(clean.dataset.graph, dirty.dataset.graph, "seed {seed}");
        assert_eq!(
            clean.dataset.log.episodes(),
            dirty.dataset.log.episodes(),
            "seed {seed}"
        );
    }
}

#[test]
fn corrupt_in_place_never_panics_under_any_policy() {
    let (edges, actions, _) = clean_fixture();
    for seed in 0u64..20 {
        let dirty_edges = mangle_lines(&edges, seed, MangleMode::CorruptInPlace, 0.3);
        let dirty_actions = mangle_lines(&actions, seed.wrapping_add(77), MangleMode::CorruptInPlace, 0.3);
        for policy in [
            ErrorPolicy::Strict,
            ErrorPolicy::skip(u64::MAX),
            ErrorPolicy::Repair,
        ] {
            // Ok or typed Err are both acceptable; panics are not.
            let _ = ingest_with(policy, &dirty_edges, &dirty_actions);
        }
    }
}

#[test]
fn budget_aborts_when_junk_exceeds_max_errors() {
    let mut edges = Vec::new();
    for i in 0..50 {
        edges.extend_from_slice(format!("{} {}\n", i, i + 1).as_bytes());
        edges.extend_from_slice(b"this is junk\n");
    }
    let err = Ingestor::new(IngestConfig {
        policy: ErrorPolicy::skip(3),
        ..IngestConfig::default()
    })
    .ingest(edges.as_slice(), b"".as_slice(), "over-budget")
    .unwrap_err();
    match err {
        IngestError::BudgetExceeded { quarantined, max_errors, .. } => {
            assert_eq!(max_errors, 3);
            assert_eq!(quarantined, 4, "aborts on the first record past the budget");
        }
        other => panic!("expected BudgetExceeded, got {other}"),
    }
}

proptest! {
    /// Arbitrary bytes must never panic the loader under any policy, as
    /// either stream.
    #[test]
    fn proptest_arbitrary_bytes_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..1024),
        policy_idx in 0usize..3,
    ) {
        let policy = [
            ErrorPolicy::Strict,
            ErrorPolicy::skip(u64::MAX),
            ErrorPolicy::Repair,
        ][policy_idx];
        // Garbage as the edge stream (empty log is always valid)...
        let _ = ingest_with(policy, &bytes, b"");
        // ...and garbage as the action stream behind a small valid graph.
        let _ = ingest_with(policy, b"0 1\n1 2\n", &bytes);
    }
}
