//! Property tests: every on-disk loader must return `Err` on damaged
//! input — truncation, bit rot, random byte edits — and must never panic
//! or let non-finite values through.
//!
//! The damaged payloads are produced by the `inf2vec_util::faultinject`
//! writers, the same harness the fault-tolerance tests use.

use std::io::Write;

use inf2vec::core::Inf2vecModel;
use inf2vec::diffusion::dataset::read_log;
use inf2vec::diffusion::synth::{generate, SyntheticConfig};
use inf2vec::embed::{Checkpoint, EmbeddingStore};
use inf2vec::graph::io::{read_edge_list, write_edge_list};
use inf2vec::util::faultinject::{CorruptingWriter, TruncatingWriter};
use proptest::prelude::*;

/// A healthy serialized store (the model format is the store format).
fn store_bytes() -> Vec<u8> {
    let store = EmbeddingStore::new(12, 4, 3);
    let mut buf = Vec::new();
    store.save(&mut buf).unwrap();
    buf
}

fn checkpoint_bytes() -> Vec<u8> {
    let ck = Checkpoint {
        epochs_done: 3,
        pairs_processed: 999,
        lr_scale: 0.5,
        last_good_loss: Some(2.25),
        store: EmbeddingStore::new(12, 4, 3),
    };
    let mut buf = Vec::new();
    ck.save(&mut buf).unwrap();
    buf
}

fn graph_bytes() -> Vec<u8> {
    let synth = generate(&SyntheticConfig::tiny(), 5);
    let mut buf = Vec::new();
    write_edge_list(&synth.dataset.graph, &mut buf).unwrap();
    buf
}

fn log_bytes() -> Vec<u8> {
    let synth = generate(&SyntheticConfig::tiny(), 5);
    let mut buf = Vec::new();
    synth.dataset.write_log(&mut buf).unwrap();
    buf
}

/// Truncates `bytes` to `cut` via the injected-fault writer, as if the
/// process died mid-write with no atomic rename protecting the file.
fn truncated(bytes: &[u8], cut: usize) -> Vec<u8> {
    let mut w = TruncatingWriter::new(Vec::new(), cut);
    w.write_all(bytes).unwrap();
    w.into_inner()
}

/// Flips the low bit of every `period`-th byte — slow bit rot.
fn bitrotted(bytes: &[u8], period: usize) -> Vec<u8> {
    let mut w = CorruptingWriter::new(Vec::new(), period);
    w.write_all(bytes).unwrap();
    w.into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A store/model file cut anywhere that loses at least one token is
    /// incomplete: loading must fail cleanly. (A cut *inside* the final
    /// characters of the last number can shorten it to another valid
    /// float — "0.123" → "0.12" — so the cut stays 16 bytes clear of the
    /// end to guarantee real damage.)
    #[test]
    fn truncated_store_is_rejected(frac in 0.0f64..1.0) {
        let bytes = store_bytes();
        let cut = ((bytes.len() as f64 - 16.0) * frac) as usize;
        prop_assert!(EmbeddingStore::load(truncated(&bytes, cut).as_slice()).is_err());
        prop_assert!(Inf2vecModel::load(truncated(&bytes, cut).as_slice()).is_err());
    }

    /// Same for checkpoints, which prepend a state header to the store.
    #[test]
    fn truncated_checkpoint_is_rejected(frac in 0.0f64..1.0) {
        let bytes = checkpoint_bytes();
        let cut = ((bytes.len() as f64 - 16.0) * frac) as usize;
        prop_assert!(Checkpoint::load(truncated(&bytes, cut).as_slice()).is_err());
    }

    /// Bit rot may happen to still parse (a digit can decay into another
    /// digit), but it must never panic and never smuggle in a non-finite
    /// parameter.
    #[test]
    fn bitrotted_store_never_panics_or_goes_non_finite(period in 1usize..64) {
        let damaged = bitrotted(&store_bytes(), period);
        if let Ok(store) = EmbeddingStore::load(damaged.as_slice()) {
            prop_assert!(!store.has_non_finite());
        }
    }

    #[test]
    fn bitrotted_checkpoint_never_panics_or_goes_non_finite(period in 1usize..64) {
        let damaged = bitrotted(&checkpoint_bytes(), period);
        if let Ok(ck) = Checkpoint::load(damaged.as_slice()) {
            prop_assert!(!ck.store.has_non_finite());
            prop_assert!(ck.lr_scale.is_finite());
        }
    }

    /// Random byte edits anywhere in a store file: `load` is total — it
    /// returns, it does not panic.
    #[test]
    fn randomly_edited_store_never_panics(
        edits in prop::collection::vec((0.0f64..1.0, any::<u8>()), 1..8),
    ) {
        let mut bytes = store_bytes();
        for (pos, byte) in edits {
            let i = ((bytes.len() as f64) * pos) as usize;
            let i = i.min(bytes.len() - 1);
            bytes[i] = byte;
        }
        if let Ok(store) = EmbeddingStore::load(bytes.as_slice()) {
            prop_assert!(!store.has_non_finite());
        }
    }

    /// Text formats with per-line records (edge lists, action logs) may
    /// legitimately truncate to a shorter valid file at a line boundary;
    /// the property is totality: no panic, and damage inside a line is an
    /// error, not garbage data.
    #[test]
    fn damaged_edge_list_never_panics(frac in 0.0f64..1.0, period in 1usize..64) {
        let bytes = graph_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let _ = read_edge_list(truncated(&bytes, cut).as_slice());
        let _ = read_edge_list(bitrotted(&bytes, period).as_slice());
    }

    #[test]
    fn damaged_action_log_never_panics(frac in 0.0f64..1.0, period in 1usize..64) {
        let bytes = log_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let _ = read_log(truncated(&bytes, cut).as_slice());
        let _ = read_log(bitrotted(&bytes, period).as_slice());
    }
}

/// Deterministic spot-checks of the classic poisoned payloads: loaders
/// must refuse to materialize NaN/Inf even though Rust's float parser
/// happily accepts them.
#[test]
fn loaders_reject_textual_nan_and_inf() {
    let good = String::from_utf8(store_bytes()).unwrap();
    for poison in ["NaN", "inf", "-inf", "infinity"] {
        // Replace the first parameter value on the second line.
        let mut lines: Vec<String> = good.lines().map(|l| l.to_string()).collect();
        let mut fields: Vec<String> =
            lines[1].split_whitespace().map(|f| f.to_string()).collect();
        fields[1] = poison.to_string();
        lines[1] = fields.join(" ");
        let bad = lines.join("\n");
        assert!(
            EmbeddingStore::load(bad.as_bytes()).is_err(),
            "loader accepted {poison}"
        );
    }
}
