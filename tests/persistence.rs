//! Round-trip tests for every on-disk format, across crate boundaries.

use inf2vec::core::{train, Inf2vecConfig, Inf2vecModel};
use inf2vec::diffusion::dataset::read_log;
use inf2vec::diffusion::synth::{generate, SyntheticConfig};
use inf2vec::graph::io::{read_edge_list, write_edge_list};
use inf2vec::graph::NodeId;

#[test]
fn dataset_round_trips_through_text() {
    let synth = generate(&SyntheticConfig::tiny(), 3);
    let d = &synth.dataset;

    let mut graph_buf = Vec::new();
    write_edge_list(&d.graph, &mut graph_buf).unwrap();
    let graph2 = read_edge_list(graph_buf.as_slice()).unwrap();
    assert_eq!(d.graph, graph2);

    let mut log_buf = Vec::new();
    d.write_log(&mut log_buf).unwrap();
    let log2 = read_log(log_buf.as_slice()).unwrap();
    assert_eq!(log2.len(), d.log.len());
    assert_eq!(log2.action_count(), d.log.action_count());
    for (a, b) in d.log.episodes().iter().zip(log2.episodes()) {
        assert_eq!(a, b);
    }
}

#[test]
fn trained_model_round_trips_and_scores_identically() {
    let synth = generate(&SyntheticConfig::tiny(), 4);
    let split = synth.dataset.split(0.8, 0.1, 5);
    let model = train(
        &synth.dataset,
        &split.train,
        &Inf2vecConfig {
            k: 12,
            l: 10,
            epochs: 2,
            seed: 6,
            ..Inf2vecConfig::default()
        },
    );

    let mut buf = Vec::new();
    model.save(&mut buf).unwrap();
    let loaded = Inf2vecModel::load(buf.as_slice()).unwrap();

    assert_eq!(loaded.store.k(), model.store.k());
    assert_eq!(loaded.store.len(), model.store.len());
    for u in (0..synth.dataset.graph.node_count()).step_by(17) {
        for v in (0..synth.dataset.graph.node_count()).step_by(23) {
            assert_eq!(
                model.score(NodeId(u), NodeId(v)),
                loaded.score(NodeId(u), NodeId(v)),
                "score mismatch at ({u}, {v})"
            );
        }
    }
}

#[test]
fn corrupted_model_files_are_rejected() {
    let synth = generate(&SyntheticConfig::tiny(), 4);
    let split = synth.dataset.split(0.8, 0.1, 5);
    let model = train(
        &synth.dataset,
        &split.train,
        &Inf2vecConfig {
            k: 4,
            l: 5,
            epochs: 1,
            seed: 6,
            ..Inf2vecConfig::default()
        },
    );
    let mut buf = Vec::new();
    model.save(&mut buf).unwrap();

    // Truncation.
    let truncated = &buf[..buf.len() / 2];
    assert!(Inf2vecModel::load(truncated).is_err());

    // Header corruption.
    let mut bad = buf.clone();
    bad[0] = b'x';
    assert!(Inf2vecModel::load(bad.as_slice()).is_err());
}
