#![warn(missing_docs)]

//! Exact t-SNE (van der Maaten & Hinton, JMLR 2008) with PCA
//! initialization.
//!
//! The paper's Figure 6 projects learned influence embeddings to 2-D with
//! t-SNE \[31\]; this crate implements the exact (O(n²)) algorithm, which is
//! more than adequate for the 524 nodes the figure plots:
//!
//! - per-point precision calibration by binary search on the target
//!   perplexity,
//! - symmetrized input affinities with early exaggeration,
//! - Student-t low-dimensional affinities with the standard
//!   momentum + gains gradient descent,
//! - deterministic PCA (power iteration) initialization.

pub mod pca;
pub mod tsne;

pub use pca::pca_project;
pub use tsne::{Tsne, TsneConfig};
