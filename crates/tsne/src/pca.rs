//! Principal component analysis by power iteration with deflation.
//!
//! Used to initialize t-SNE deterministically (random init makes figure
//! regeneration non-reproducible) and as a standalone linear baseline
//! projection.

/// Projects `n × d` row-major data onto its top `components` principal
/// directions. Returns an `n × components` row-major matrix.
///
/// # Panics
///
/// Panics when `data.len()` is not a multiple of `d`, or `components > d`.
pub fn pca_project(data: &[f64], d: usize, components: usize) -> Vec<f64> {
    assert!(d > 0 && data.len().is_multiple_of(d), "data shape mismatch");
    assert!(components <= d, "cannot extract more components than dims");
    let n = data.len() / d;
    if n == 0 || components == 0 {
        return Vec::new();
    }

    // Center the data.
    let mut mean = vec![0.0f64; d];
    for row in data.chunks_exact(d) {
        for (m, x) in mean.iter_mut().zip(row) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let mut centered: Vec<f64> = data.to_vec();
    for row in centered.chunks_exact_mut(d) {
        for (x, m) in row.iter_mut().zip(&mean) {
            *x -= m;
        }
    }

    // Power iteration with deflation on the (implicit) covariance matrix:
    // v <- X^T (X v) / n, avoiding the d × d materialization.
    let mut directions: Vec<Vec<f64>> = Vec::with_capacity(components);
    let mut scores = vec![0.0f64; n];
    for c in 0..components {
        // Deterministic start vector, distinct per component.
        let mut v: Vec<f64> = (0..d)
            .map(|j| if j % (c + 2) == 0 { 1.0 } else { 0.5 })
            .collect();
        normalize(&mut v);
        for _ in 0..100 {
            // scores = X v
            for (i, row) in centered.chunks_exact(d).enumerate() {
                scores[i] = dot(row, &v);
            }
            // w = X^T scores
            let mut w = vec![0.0f64; d];
            for (i, row) in centered.chunks_exact(d).enumerate() {
                let s = scores[i];
                for (wj, xj) in w.iter_mut().zip(row) {
                    *wj += s * xj;
                }
            }
            // Deflate against earlier components.
            for prev in &directions {
                let proj = dot(&w, prev);
                for (wj, pj) in w.iter_mut().zip(prev) {
                    *wj -= proj * pj;
                }
            }
            let norm = normalize(&mut w);
            let delta: f64 = w.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
            v = w;
            if norm == 0.0 || delta < 1e-10 {
                break;
            }
        }
        directions.push(v);
    }

    let mut out = vec![0.0f64; n * components];
    for (i, row) in centered.chunks_exact(d).enumerate() {
        for (c, dir) in directions.iter().enumerate() {
            out[i * components + c] = dot(row, dir);
        }
    }
    out
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_direction() {
        // Points spread along (1, 1, 0) with small noise in other dims.
        let mut data = Vec::new();
        for i in 0..50 {
            let t = i as f64 - 25.0;
            data.extend_from_slice(&[t, t + 0.01 * (i % 3) as f64, 0.001 * (i % 5) as f64]);
        }
        let proj = pca_project(&data, 3, 1);
        assert_eq!(proj.len(), 50);
        // The projection must be monotone in t (up to global sign).
        let increasing = proj.windows(2).all(|w| w[1] >= w[0]);
        let decreasing = proj.windows(2).all(|w| w[1] <= w[0]);
        assert!(increasing || decreasing);
        // And spread must reflect the data spread.
        let range = proj.iter().cloned().fold(f64::MIN, f64::max)
            - proj.iter().cloned().fold(f64::MAX, f64::min);
        assert!(range > 30.0, "range {range}");
    }

    #[test]
    fn components_are_decorrelated() {
        // 2-D structured data embedded in 4-D.
        let mut data = Vec::new();
        for i in 0..100 {
            let a = (i as f64 * 0.37).sin() * 10.0;
            let b = (i as f64 * 0.11).cos() * 3.0;
            data.extend_from_slice(&[a + b, a - b, 0.5 * a, 0.1 * b]);
        }
        let proj = pca_project(&data, 4, 2);
        let n = 100;
        let (mut c1, mut c2): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
        for i in 0..n {
            c1.push(proj[i * 2]);
            c2.push(proj[i * 2 + 1]);
        }
        let corr = dot(&c1, &c2)
            / (dot(&c1, &c1).sqrt() * dot(&c2, &c2).sqrt()).max(1e-12);
        assert!(corr.abs() < 0.05, "components correlate: {corr}");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pca_project(&[], 3, 2).is_empty());
        // Constant data: projections are all zero.
        let data = vec![1.0; 12];
        let proj = pca_project(&data, 3, 2);
        assert!(proj.iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rejects_ragged_data() {
        let _ = pca_project(&[1.0, 2.0, 3.0], 2, 1);
    }
}
