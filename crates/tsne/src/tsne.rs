//! The exact t-SNE algorithm.

use crate::pca::pca_project;

/// t-SNE hyper-parameters (defaults follow van der Maaten's reference
/// implementation).
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate (η). `0.0` selects the automatic rate `n / 8`
    /// (clamped to `[2, 200]`), which is stable across the point counts the
    /// Figure 6 bench uses; the fixed 100–1000 rates quoted for MNIST-sized
    /// inputs diverge on small point sets.
    pub learning_rate: f64,
    /// Iterations with early exaggeration applied.
    pub exaggeration_iters: usize,
    /// Early exaggeration factor.
    pub exaggeration: f64,
    /// Momentum before/after the switch point (iteration 250 or
    /// `iterations / 3`, whichever is smaller).
    pub momentum: (f64, f64),
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 500,
            learning_rate: 0.0,
            exaggeration_iters: 100,
            exaggeration: 12.0,
            momentum: (0.5, 0.8),
        }
    }
}

/// The t-SNE embedder.
#[derive(Debug, Clone, Default)]
pub struct Tsne {
    /// Configuration.
    pub config: TsneConfig,
}

impl Tsne {
    /// Creates an embedder with the given configuration.
    pub fn new(config: TsneConfig) -> Self {
        Self { config }
    }

    /// Embeds `n × d` row-major `data` into 2-D; returns `n` `[x, y]`
    /// pairs. Deterministic (PCA initialization, no randomness).
    ///
    /// # Panics
    ///
    /// Panics if the data is ragged or has fewer than 3 rows.
    pub fn embed(&self, data: &[f64], d: usize) -> Vec<[f64; 2]> {
        assert!(d > 0 && data.len().is_multiple_of(d), "data shape mismatch");
        let n = data.len() / d;
        assert!(n >= 3, "t-SNE needs at least 3 points");
        let cfg = &self.config;

        // Pairwise squared distances in the input space.
        let mut d2 = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let mut acc = 0.0;
                for t in 0..d {
                    let diff = data[i * d + t] - data[j * d + t];
                    acc += diff * diff;
                }
                d2[i * n + j] = acc;
                d2[j * n + i] = acc;
            }
        }

        // Conditional affinities with per-point perplexity calibration.
        let p = calibrated_affinities(&d2, n, cfg.perplexity);

        // Initialize from PCA, scaled down as in the reference code.
        let init = pca_project(data, d, 2.min(d));
        let mut y = vec![0.0f64; n * 2];
        let scale = {
            let max = init.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
            if max > 0.0 {
                1e-2 / max
            } else {
                1.0
            }
        };
        // init is n × c with c ∈ {1, 2}.
        let c = init.len() / n;
        for i in 0..n {
            y[i * 2] = init[i * c] * scale;
            y[i * 2 + 1] = if c > 1 {
                init[i * c + 1] * scale
            } else {
                // Degenerate 1-D input: tiny deterministic jitter breaks
                // collinearity.
                ((i as f64 * 0.7311).sin()) * 1e-4
            };
        }

        let lr = if cfg.learning_rate > 0.0 {
            cfg.learning_rate
        } else {
            (n as f64 / 8.0).clamp(2.0, 200.0)
        };
        let mut velocity = vec![0.0f64; n * 2];
        let mut gains = vec![1.0f64; n * 2];
        let mut q_unnorm = vec![0.0f64; n * n];
        let switch = cfg.iterations.min(250).min(cfg.iterations / 3 + 1);

        for iter in 0..cfg.iterations {
            let exag = if iter < cfg.exaggeration_iters {
                cfg.exaggeration
            } else {
                1.0
            };
            let momentum = if iter < switch {
                cfg.momentum.0
            } else {
                cfg.momentum.1
            };

            // Student-t affinities in the embedding.
            let mut q_sum = 0.0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    let dx = y[i * 2] - y[j * 2];
                    let dy = y[i * 2 + 1] - y[j * 2 + 1];
                    let q = 1.0 / (1.0 + dx * dx + dy * dy);
                    q_unnorm[i * n + j] = q;
                    q_unnorm[j * n + i] = q;
                    q_sum += 2.0 * q;
                }
            }
            let q_sum = q_sum.max(1e-12);

            // Gradient + momentum + gains update.
            for i in 0..n {
                let mut gx = 0.0f64;
                let mut gy = 0.0f64;
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let qu = q_unnorm[i * n + j];
                    let pij = exag * p[i * n + j];
                    let coeff = 4.0 * (pij - qu / q_sum) * qu;
                    gx += coeff * (y[i * 2] - y[j * 2]);
                    gy += coeff * (y[i * 2 + 1] - y[j * 2 + 1]);
                }
                for (t, g) in [(0usize, gx), (1usize, gy)] {
                    let idx = i * 2 + t;
                    // Jacobs-style adaptive gains.
                    gains[idx] = if (g > 0.0) != (velocity[idx] > 0.0) {
                        (gains[idx] + 0.2).min(10.0)
                    } else {
                        (gains[idx] * 0.8).max(0.01)
                    };
                    velocity[idx] =
                        momentum * velocity[idx] - lr * gains[idx] * g;
                    y[idx] += velocity[idx];
                }
            }

            // Re-center (the objective is translation invariant).
            let (mut mx, mut my) = (0.0f64, 0.0f64);
            for i in 0..n {
                mx += y[i * 2];
                my += y[i * 2 + 1];
            }
            mx /= n as f64;
            my /= n as f64;
            for i in 0..n {
                y[i * 2] -= mx;
                y[i * 2 + 1] -= my;
            }
        }

        (0..n).map(|i| [y[i * 2], y[i * 2 + 1]]).collect()
    }

    /// KL divergence between the calibrated `P` and the embedding's `Q`
    /// (the t-SNE objective), for convergence tests.
    pub fn kl_divergence(&self, data: &[f64], d: usize, embedding: &[[f64; 2]]) -> f64 {
        let n = embedding.len();
        assert_eq!(data.len(), n * d);
        let mut d2 = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let mut acc = 0.0;
                for t in 0..d {
                    let diff = data[i * d + t] - data[j * d + t];
                    acc += diff * diff;
                }
                d2[i * n + j] = acc;
                d2[j * n + i] = acc;
            }
        }
        let p = calibrated_affinities(&d2, n, self.config.perplexity);

        let mut q_sum = 0.0f64;
        let mut q_unnorm = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = embedding[i][0] - embedding[j][0];
                let dy = embedding[i][1] - embedding[j][1];
                let q = 1.0 / (1.0 + dx * dx + dy * dy);
                q_unnorm[i * n + j] = q;
                q_unnorm[j * n + i] = q;
                q_sum += 2.0 * q;
            }
        }
        let mut kl = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let pij = p[i * n + j];
                if pij > 1e-12 {
                    let qij = (q_unnorm[i * n + j] / q_sum).max(1e-12);
                    kl += pij * (pij / qij).ln();
                }
            }
        }
        kl
    }
}

/// Symmetrized affinity matrix with per-point precision chosen by binary
/// search so each conditional distribution has the target perplexity.
fn calibrated_affinities(d2: &[f64], n: usize, perplexity: f64) -> Vec<f64> {
    let target_entropy = perplexity.max(1.01).ln();
    let mut p = vec![0.0f64; n * n];
    let mut row = vec![0.0f64; n];
    for i in 0..n {
        let (mut beta, mut beta_lo, mut beta_hi) = (1.0f64, 0.0f64, f64::INFINITY);
        for _ in 0..64 {
            // Conditional P_{j|i} under the current precision.
            let mut sum = 0.0f64;
            for j in 0..n {
                row[j] = if j == i {
                    0.0
                } else {
                    (-beta * d2[i * n + j]).exp()
                };
                sum += row[j];
            }
            let sum = sum.max(1e-300);
            // Shannon entropy of the conditional distribution.
            let mut entropy = 0.0f64;
            for (j, &r) in row.iter().enumerate() {
                if j != i && r > 0.0 {
                    let pj = r / sum;
                    if pj > 1e-300 {
                        entropy -= pj * pj.ln();
                    }
                }
            }
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_lo = beta;
                beta = if beta_hi.is_finite() {
                    (beta + beta_hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        // Store the normalized conditional row.
        let mut sum = 0.0f64;
        for j in 0..n {
            row[j] = if j == i {
                0.0
            } else {
                (-beta * d2[i * n + j]).exp()
            };
            sum += row[j];
        }
        let sum = sum.max(1e-300);
        for j in 0..n {
            p[i * n + j] = row[j] / sum;
        }
    }
    // Symmetrize: p_ij = (p_{j|i} + p_{i|j}) / 2n.
    let mut sym = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            sym[i * n + j] = (p[i * n + j] + p[j * n + i]) / (2.0 * n as f64);
        }
    }
    sym
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian-ish blobs in 10-D.
    fn blobs() -> (Vec<f64>, usize, Vec<usize>) {
        let d = 10;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for (b, center) in [0.0f64, 30.0, -30.0].iter().enumerate() {
            for i in 0..15 {
                for t in 0..d {
                    // Deterministic pseudo-noise.
                    let noise = ((i * 31 + t * 17 + b * 7) as f64 * 0.71).sin();
                    data.push(center + noise);
                }
                labels.push(b);
            }
        }
        (data, d, labels)
    }

    #[test]
    fn separates_blobs() {
        let (data, d, labels) = blobs();
        let tsne = Tsne::new(TsneConfig {
            perplexity: 10.0,
            iterations: 300,
            ..TsneConfig::default()
        });
        let y = tsne.embed(&data, d);
        assert_eq!(y.len(), 45);
        // Mean within-blob distance must be far below between-blob distance.
        let dist = |a: [f64; 2], b: [f64; 2]| {
            ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
        };
        let (mut within, mut wn) = (0.0, 0);
        let (mut between, mut bn) = (0.0, 0);
        for i in 0..y.len() {
            for j in (i + 1)..y.len() {
                if labels[i] == labels[j] {
                    within += dist(y[i], y[j]);
                    wn += 1;
                } else {
                    between += dist(y[i], y[j]);
                    bn += 1;
                }
            }
        }
        let within = within / wn as f64;
        let between = between / bn as f64;
        assert!(
            between > 2.0 * within,
            "between {between:.3} within {within:.3}"
        );
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Tiny instance: 5 points in 3-D, fixed y; compare the update loop's
        // analytic gradient against numeric differentiation of kl_divergence.
        let d = 3;
        let data: Vec<f64> = (0..15).map(|i| ((i * 7 % 11) as f64) * 0.5).collect();
        let n = 5;
        let y0: Vec<[f64; 2]> = (0..n).map(|i| [(i as f64) * 0.3 - 0.6, ((i * i) as f64) * 0.1 - 0.2]).collect();
        let tsne = Tsne::new(TsneConfig { perplexity: 2.0, ..TsneConfig::default() });

        // Analytic gradient (no exaggeration).
        let mut d2 = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for t in 0..d {
                    let diff = data[i * d + t] - data[j * d + t];
                    acc += diff * diff;
                }
                d2[i * n + j] = acc;
            }
        }
        let p = calibrated_affinities(&d2, n, 2.0);
        let mut q_unnorm = vec![0.0f64; n * n];
        let mut q_sum = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let dx = y0[i][0] - y0[j][0];
                    let dy = y0[i][1] - y0[j][1];
                    let q = 1.0 / (1.0 + dx * dx + dy * dy);
                    q_unnorm[i * n + j] = q;
                    q_sum += q;
                }
            }
        }
        for i in 0..n {
            for t in 0..2 {
                let mut g = 0.0;
                for j in 0..n {
                    if i == j { continue; }
                    let qu = q_unnorm[i * n + j];
                    let coeff = 4.0 * (p[i * n + j] - qu / q_sum) * qu;
                    g += coeff * (y0[i][t] - y0[j][t]);
                }
                // Numeric gradient.
                let h = 1e-6;
                let mut yp = y0.clone();
                yp[i][t] += h;
                let mut ym = y0.clone();
                ym[i][t] -= h;
                let num = (tsne.kl_divergence(&data, d, &yp) - tsne.kl_divergence(&data, d, &ym)) / (2.0 * h);
                assert!((g - num).abs() < 1e-4, "grad mismatch at ({i},{t}): analytic {g} numeric {num}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let (data, d, _) = blobs();
        let tsne = Tsne::new(TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        });
        assert_eq!(tsne.embed(&data, d), tsne.embed(&data, d));
    }

    #[test]
    fn optimized_embedding_beats_scrambled_one() {
        // The KL of the converged embedding must be far below the KL of the
        // same point cloud with coordinates permuted across points (identical
        // geometry, destroyed correspondence) — i.e. the optimizer really
        // matched P, it did not just spread points out.
        let (data, d, _) = blobs();
        let tsne = Tsne::new(TsneConfig {
            perplexity: 10.0,
            iterations: 300,
            ..TsneConfig::default()
        });
        let y = tsne.embed(&data, d);
        let kl = tsne.kl_divergence(&data, d, &y);

        let mut scrambled = y.clone();
        let n = scrambled.len();
        // Deterministic derangement; 7 is coprime with the blob size 15,
        // so blobs cannot map onto each other wholesale.
        scrambled.rotate_left(7 % n.max(1));
        let kl_scrambled = tsne.kl_divergence(&data, d, &scrambled);
        assert!(
            kl + 0.5 < kl_scrambled,
            "KL {kl:.4} not clearly below scrambled {kl_scrambled:.4}"
        );
    }

    #[test]
    fn affinity_rows_are_distributions() {
        let (data, d, _) = blobs();
        let n = data.len() / d;
        let mut d2 = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for t in 0..d {
                    let diff = data[i * d + t] - data[j * d + t];
                    acc += diff * diff;
                }
                d2[i * n + j] = acc;
            }
        }
        let p = calibrated_affinities(&d2, n, 10.0);
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total mass {total}");
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Symmetry.
        for i in 0..n {
            for j in 0..n {
                assert!((p[i * n + j] - p[j * n + i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn rejects_tiny_inputs() {
        let tsne = Tsne::default();
        let _ = tsne.embed(&[1.0, 2.0, 3.0, 4.0], 2);
    }
}
