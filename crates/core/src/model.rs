//! The trained Inf2vec model.

use std::io::{BufRead, Write};

use inf2vec_embed::EmbeddingStore;
use inf2vec_eval::score::RepresentationModel;
use inf2vec_eval::Aggregator;
use inf2vec_graph::NodeId;
use inf2vec_util::TopK;

/// A trained social-influence embedding (Definition 2's outputs).
#[derive(Debug, Clone)]
pub struct Inf2vecModel {
    /// The learned parameters: `S`, `T`, `b`, `b̃`.
    pub store: EmbeddingStore,
}

impl Inf2vecModel {
    /// Wraps a trained store.
    pub fn new(store: EmbeddingStore) -> Self {
        Self { store }
    }

    /// The pair score `x(u, v) = S_u · T_v + b_u + b̃_v`.
    #[inline]
    pub fn score(&self, u: NodeId, v: NodeId) -> f32 {
        self.store.score(u.0, v.0)
    }

    /// Eq. 7: the likelihood that `v` is influenced by the active set
    /// `s_v` (in activation order), merged by `agg`.
    pub fn likelihood(&self, v: NodeId, s_v: &[NodeId], agg: Aggregator) -> f64 {
        let xs: Vec<f64> = s_v.iter().map(|&u| self.score(u, v) as f64).collect();
        agg.apply(&xs)
    }

    /// The `k` users most likely to be influenced by `u` (excluding `u`),
    /// by pair score — the Table VI "predicted followers" query.
    pub fn top_influenced(&self, u: NodeId, k: usize) -> Vec<(NodeId, f32)> {
        let mut top = TopK::new(k);
        for v in 0..self.store.len() as u32 {
            if v != u.0 {
                top.push(self.store.score(u.0, v) as f64, v);
            }
        }
        top.into_sorted()
            .into_iter()
            .map(|(s, v)| (NodeId(v), s as f32))
            .collect()
    }

    /// The `k` most influential users by influence-ability bias `b_u`
    /// (ties broken by source-vector norm) — a cheap seed-selection
    /// heuristic; prefer [`top_spreaders`](Self::top_spreaders) when the
    /// graph is available.
    pub fn top_influencers(&self, k: usize) -> Vec<(NodeId, f32)> {
        let mut top = TopK::new(k);
        for u in 0..self.store.len() as u32 {
            let norm: f32 = self.store.s(u).iter().map(|x| x * x).sum::<f32>().sqrt();
            top.push(self.store.b(u) as f64 + 1e-6 * norm as f64, u);
        }
        top.into_sorted()
            .into_iter()
            .map(|(s, u)| (NodeId(u), s as f32))
            .collect()
    }

    /// Expected one-hop spread of `u`: `Σ_{v ∈ out(u)} σ(x(u, v))` — the
    /// model's estimate of how many direct followers `u` would activate.
    pub fn expected_spread(&self, graph: &inf2vec_graph::DiGraph, u: NodeId) -> f64 {
        graph
            .out_neighbors(u)
            .iter()
            .map(|&v| {
                let x = self.store.score(u.0, v);
                1.0 / (1.0 + (-x as f64).exp())
            })
            .sum()
    }

    /// The `k` best seed users by [`expected_spread`](Self::expected_spread)
    /// — the viral-marketing seed-selection query the paper's introduction
    /// motivates.
    pub fn top_spreaders(
        &self,
        graph: &inf2vec_graph::DiGraph,
        k: usize,
    ) -> Vec<(NodeId, f64)> {
        let mut top = TopK::new(k);
        for u in graph.nodes() {
            top.push(self.expected_spread(graph, u), u);
        }
        top.into_sorted()
            .into_iter()
            .map(|(s, u)| (u, s))
            .collect()
    }

    /// Converts the learned scores into per-edge IC probabilities
    /// `P_uv = σ(x(u, v))` over the graph's edges, ready for cascade
    /// simulation or influence maximization
    /// ([`inf2vec_diffusion::im::celf_greedy`]).
    ///
    /// SGNS scores are only *rank*-calibrated; if you know the network's
    /// global per-exposure activation rate (influence pairs ÷ exposures in
    /// the training log), prefer
    /// [`edge_probs_calibrated`](Self::edge_probs_calibrated).
    pub fn edge_probs(&self, graph: &inf2vec_graph::DiGraph) -> inf2vec_diffusion::EdgeProbs {
        inf2vec_diffusion::EdgeProbs::from_fn(graph, |u, v| {
            let x = self.store.score(u.0, v.0);
            (1.0 / (1.0 + (-x as f64).exp())) as f32
        })
    }

    /// Like [`edge_probs`](Self::edge_probs), but rescaled so the mean edge
    /// probability equals `mean_prob` (clamping at 1). Ranking is
    /// preserved; the absolute scale becomes meaningful for cascade
    /// simulation.
    pub fn edge_probs_calibrated(
        &self,
        graph: &inf2vec_graph::DiGraph,
        mean_prob: f64,
    ) -> inf2vec_diffusion::EdgeProbs {
        assert!((0.0..=1.0).contains(&mean_prob), "mean_prob out of range");
        let raw = self.edge_probs(graph);
        let m = graph.edge_count();
        if m == 0 {
            return raw;
        }
        let mean_raw: f64 =
            raw.as_slice().iter().map(|&p| p as f64).sum::<f64>() / m as f64;
        let scale = if mean_raw > 0.0 {
            mean_prob / mean_raw
        } else {
            0.0
        };
        inf2vec_diffusion::EdgeProbs::from_vec(
            graph,
            raw.as_slice()
                .iter()
                .map(|&p| ((p as f64 * scale).min(1.0)) as f32)
                .collect(),
        )
    }

    /// Serializes the model (text format, see [`EmbeddingStore::save`]).
    pub fn save<W: Write>(&self, w: W) -> std::io::Result<()> {
        self.store.save(w)
    }

    /// Loads a model saved by [`save`](Self::save).
    pub fn load<R: BufRead>(r: R) -> std::io::Result<Self> {
        Ok(Self {
            store: EmbeddingStore::load(r)?,
        })
    }

    /// Atomically writes the model to `path` (temp file + fsync + rename):
    /// a crash mid-write leaves any previous file intact, and a store with
    /// non-finite parameters is refused before any bytes hit the disk.
    pub fn save_to_path(&self, path: &std::path::Path) -> Result<(), inf2vec_util::Inf2vecError> {
        self.store.save_to_path(path)
    }

    /// Loads a model from `path`, rejecting malformed or non-finite data.
    pub fn load_from_path(path: &std::path::Path) -> Result<Self, inf2vec_util::Inf2vecError> {
        Ok(Self {
            store: EmbeddingStore::load_from_path(path)?,
        })
    }
}

impl RepresentationModel for Inf2vecModel {
    fn pair_score(&self, u: NodeId, v: NodeId) -> f64 {
        self.score(u, v) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with_scores() -> Inf2vecModel {
        let store = EmbeddingStore::new(4, 2, 1);
        // Make node 0 strongly predictive of node 2.
        unsafe {
            store.source.row_mut(0).copy_from_slice(&[1.0, 0.0]);
            store.target.row_mut(2).copy_from_slice(&[5.0, 0.0]);
            store.bias_src.row_mut(3)[0] = 2.0;
        }
        Inf2vecModel::new(store)
    }

    #[test]
    fn likelihood_aggregates_pair_scores() {
        let m = model_with_scores();
        let v = NodeId(2);
        let ave = m.likelihood(v, &[NodeId(0), NodeId(1)], Aggregator::Ave);
        let max = m.likelihood(v, &[NodeId(0), NodeId(1)], Aggregator::Max);
        assert!(max >= ave);
        assert!((max - m.score(NodeId(0), v) as f64).abs() < 1e-6);
    }

    #[test]
    fn top_influenced_excludes_self_and_ranks() {
        let m = model_with_scores();
        let top = m.top_influenced(NodeId(0), 3);
        assert_eq!(top.len(), 3);
        assert!(top.iter().all(|&(v, _)| v != NodeId(0)));
        assert_eq!(top[0].0, NodeId(2), "node 2 should rank first");
    }

    #[test]
    fn expected_spread_and_top_spreaders() {
        use inf2vec_graph::GraphBuilder;
        let m = model_with_scores();
        let mut b = GraphBuilder::with_nodes(4);
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(1), NodeId(2));
        let g = b.build();
        // Node 0 scores node 2 highly (x = 5), node 1 does not.
        let s0 = m.expected_spread(&g, NodeId(0));
        let s1 = m.expected_spread(&g, NodeId(1));
        assert!(s0 > s1, "{s0} vs {s1}");
        let top = m.top_spreaders(&g, 2);
        assert_eq!(top[0].0, NodeId(0));
        // Sinks have zero expected spread.
        assert_eq!(m.expected_spread(&g, NodeId(3)), 0.0);
    }

    #[test]
    fn top_influencers_prefers_bias() {
        let m = model_with_scores();
        let top = m.top_influencers(2);
        assert_eq!(top[0].0, NodeId(3));
    }

    #[test]
    fn edge_probs_are_probabilities_and_monotone_in_score() {
        use inf2vec_graph::GraphBuilder;
        let m = model_with_scores();
        let mut b = GraphBuilder::with_nodes(4);
        b.add_edge(NodeId(0), NodeId(2)); // x = 5 -> p ≈ 0.993
        b.add_edge(NodeId(1), NodeId(2)); // x ≈ 0 -> p ≈ 0.5
        let g = b.build();
        let probs = m.edge_probs(&g);
        let p_strong = probs.get(&g, NodeId(0), NodeId(2));
        let p_weak = probs.get(&g, NodeId(1), NodeId(2));
        assert!(p_strong > 0.9 && p_strong <= 1.0);
        assert!(p_weak > 0.0 && p_weak < 1.0);
        assert!(p_strong > p_weak);
    }

    #[test]
    fn calibrated_probs_hit_target_mean_and_preserve_ranking() {
        use inf2vec_graph::GraphBuilder;
        let m = model_with_scores();
        let mut b = GraphBuilder::with_nodes(4);
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(3), NodeId(1));
        let g = b.build();
        let target = 0.05;
        let probs = m.edge_probs_calibrated(&g, target);
        let mean: f64 = probs.as_slice().iter().map(|&p| p as f64).sum::<f64>()
            / g.edge_count() as f64;
        assert!((mean - target).abs() < 1e-6, "mean {mean}");
        // Ranking preserved vs the raw conversion.
        let raw = m.edge_probs(&g);
        let cal = probs.as_slice();
        let r = raw.as_slice();
        for i in 0..cal.len() {
            for j in 0..cal.len() {
                assert_eq!(r[i] < r[j], cal[i] < cal[j]);
            }
        }
    }

    #[test]
    fn save_load_round_trip() {
        let m = model_with_scores();
        let mut buf = Vec::new();
        m.save(&mut buf).unwrap();
        let l = Inf2vecModel::load(buf.as_slice()).unwrap();
        assert_eq!(l.score(NodeId(0), NodeId(2)), m.score(NodeId(0), NodeId(2)));
    }

    #[test]
    fn path_round_trip_refuses_poisoned_store() {
        let dir = std::env::temp_dir().join(format!("inf2vec-model-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        let m = model_with_scores();
        m.save_to_path(&path).unwrap();
        let l = Inf2vecModel::load_from_path(&path).unwrap();
        assert_eq!(l.score(NodeId(0), NodeId(2)), m.score(NodeId(0), NodeId(2)));
        // A poisoned store must not overwrite the good file on disk.
        let bad = model_with_scores();
        unsafe {
            bad.store.source.row_mut(1)[0] = f32::NAN;
        }
        assert!(bad.save_to_path(&path).is_err());
        let survivor = Inf2vecModel::load_from_path(&path).unwrap();
        assert_eq!(
            survivor.score(NodeId(0), NodeId(2)),
            m.score(NodeId(0), NodeId(2))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
