//! Algorithm 1: generating the influence context.
//!
//! Given a propagation network `G_i` and a user `u ∈ V_i`, the influence
//! context `C_u^i` has two parts:
//!
//! - **Local influence context** (`L·α` nodes): a random walk with restart
//!   (restart ratio 0.5) over the propagation DAG starting at `u`. The walk
//!   follows influence-pair edges, so it samples users plausibly influenced
//!   by `u` — including high-order (multi-hop) targets, which is how the
//!   paper combats pair sparsity.
//! - **Global user-similarity context** (`L·(1−α)` nodes): uniform samples
//!   from `V_i`, the users who performed the same action — the interest-
//!   similarity signal no prior influence-learning work used.

use inf2vec_diffusion::PropagationNetwork;
use inf2vec_graph::walk::{restart_walk_stats, WalkStats};
use inf2vec_util::rng::Xoshiro256pp;

/// What one context generation produced: the local/global mix plus the
/// restart-walk behaviour (Algorithm 1 walk stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Nodes contributed by the local restart walk.
    pub local: u64,
    /// Nodes contributed by global user-similarity sampling.
    pub global: u64,
    /// The walk's restart counts.
    pub walk: WalkStats,
}

impl ContextStats {
    /// Component-wise accumulation.
    pub fn merge(&mut self, other: ContextStats) {
        self.local += other.local;
        self.global += other.global;
        self.walk.merge(other.walk);
    }
}

/// Generates `C_u^i` for the *local-index* node `u` of `net`.
///
/// Returns local indices (map through [`PropagationNetwork::global`] for
/// node ids). The result holds at most `local_len + global_len` entries; it
/// is shorter when `u` has no outgoing influence edges (walk exhausted) or
/// the episode has no other member to sample.
pub fn generate_context(
    net: &PropagationNetwork,
    u: u32,
    local_len: usize,
    global_len: usize,
    restart: f64,
    rng: &mut Xoshiro256pp,
) -> Vec<u32> {
    generate_context_stats(net, u, local_len, global_len, restart, rng).0
}

/// [`generate_context`] that also reports the local/global mix and walk
/// behaviour — same RNG consumption, bit-identical context.
pub fn generate_context_stats(
    net: &PropagationNetwork,
    u: u32,
    local_len: usize,
    global_len: usize,
    restart: f64,
    rng: &mut Xoshiro256pp,
) -> (Vec<u32>, ContextStats) {
    debug_assert!((u as usize) < net.len());
    let mut context = Vec::with_capacity(local_len + global_len);

    // Line 2: local influence neighbors by random walk with restart.
    let walk = restart_walk_stats(net, u, local_len, restart, rng, &mut context);
    let local = context.len() as u64;

    // Line 3: global user-similarity samples from V_i (excluding u — a user
    // is trivially "similar" to itself and would only add a constant pull).
    let n = net.len() as u64;
    if n > 1 {
        for _ in 0..global_len {
            let mut w = rng.below(n - 1) as u32;
            if w >= u {
                w += 1;
            }
            context.push(w);
        }
    }
    let stats = ContextStats {
        local,
        global: context.len() as u64 - local,
        walk,
    };
    (context, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inf2vec_diffusion::{Episode, ItemId};
    use inf2vec_graph::{GraphBuilder, NodeId};
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Chain episode: 0 -> 1 -> 2 -> 3 in both graph and time.
    fn chain_net(len: u32) -> PropagationNetwork {
        let mut b = GraphBuilder::with_nodes(len);
        for i in 0..len - 1 {
            b.add_edge(n(i), n(i + 1));
        }
        let g = b.build();
        let e = Episode::new(
            ItemId(0),
            (0..len).map(|i| (n(i), i as u64)).collect(),
        );
        PropagationNetwork::build(&g, &e)
    }

    #[test]
    fn context_size_is_l_when_walkable() {
        let net = chain_net(10);
        let mut rng = Xoshiro256pp::new(1);
        let ctx = generate_context(&net, 0, 5, 45, 0.5, &mut rng);
        assert_eq!(ctx.len(), 50);
    }

    #[test]
    fn sink_node_gets_only_global_context() {
        let net = chain_net(10);
        let mut rng = Xoshiro256pp::new(2);
        // Node 9 is the chain's sink: the restart walk emits nothing.
        let ctx = generate_context(&net, 9, 5, 20, 0.5, &mut rng);
        assert_eq!(ctx.len(), 20);
    }

    #[test]
    fn local_part_is_downstream_only() {
        let net = chain_net(8);
        let mut rng = Xoshiro256pp::new(3);
        // α = 1: all-local context from node 3 must be strictly downstream
        // (the propagation DAG's edges point forward in time).
        let ctx = generate_context(&net, 3, 40, 0, 0.5, &mut rng);
        assert!(!ctx.is_empty());
        assert!(ctx.iter().all(|&v| v > 3), "walk left the DAG: {ctx:?}");
    }

    #[test]
    fn global_part_excludes_center() {
        let net = chain_net(5);
        let mut rng = Xoshiro256pp::new(4);
        let ctx = generate_context(&net, 2, 0, 200, 0.5, &mut rng);
        assert_eq!(ctx.len(), 200);
        assert!(ctx.iter().all(|&v| v != 2));
        // All other members should appear eventually.
        let distinct: std::collections::BTreeSet<u32> = ctx.iter().copied().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn singleton_episode_has_empty_context() {
        let g = GraphBuilder::with_nodes(1).build();
        let e = Episode::new(ItemId(0), vec![(n(0), 0)]);
        let net = PropagationNetwork::build(&g, &e);
        let mut rng = Xoshiro256pp::new(5);
        let ctx = generate_context(&net, 0, 5, 45, 0.5, &mut rng);
        assert!(ctx.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let net = chain_net(10);
        let a = generate_context(&net, 0, 10, 10, 0.5, &mut Xoshiro256pp::new(7));
        let b = generate_context(&net, 0, 10, 10, 0.5, &mut Xoshiro256pp::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn stats_variant_reports_the_mix() {
        let net = chain_net(10);
        let (ctx, stats) =
            generate_context_stats(&net, 0, 5, 45, 0.5, &mut Xoshiro256pp::new(1));
        assert_eq!(stats.local + stats.global, ctx.len() as u64);
        assert_eq!(stats.local, 5);
        assert_eq!(stats.global, 45);
        assert_eq!(stats.walk.emitted, 5);
        // Bit-identical to the plain variant on the same stream.
        let plain = generate_context(&net, 0, 5, 45, 0.5, &mut Xoshiro256pp::new(1));
        assert_eq!(ctx, plain);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Context members are always valid episode members, the context
        /// never exceeds the requested length, and with a fully-connected
        /// chain it hits it exactly.
        #[test]
        fn proptest_context_invariants(
            seed in any::<u64>(),
            u in 0u32..8,
            local in 0usize..20,
            global in 0usize..20,
        ) {
            let net = chain_net(8);
            let mut rng = Xoshiro256pp::new(seed);
            let ctx = generate_context(&net, u, local, global, 0.5, &mut rng);
            prop_assert!(ctx.len() <= local + global);
            for &v in &ctx {
                prop_assert!((v as usize) < net.len());
            }
            // The global part always delivers (n > 1 here); only the walk
            // can fall short, and only for the sink.
            if u < 7 {
                prop_assert_eq!(ctx.len(), local + global);
            } else {
                prop_assert_eq!(ctx.len(), global);
            }
        }
    }
}
