#![warn(missing_docs)]

//! Inf2vec: latent representation learning for social influence embedding.
//!
//! This crate is the paper's primary contribution (ICDE 2018). Given a
//! social graph and an action log, it learns for every user `u` a source
//! embedding `S_u`, a target embedding `T_u`, an influence-ability bias
//! `b_u`, and a conformity bias `b̃_u` (Definition 2), such that
//! `x(u, v) = S_u · T_v + b_u + b̃_v` scores how likely `u` is to influence
//! `v`.
//!
//! The pipeline (Algorithm 2):
//!
//! 1. For each training episode, extract the influence propagation network
//!    (Definition 3, [`inf2vec_diffusion::PropagationNetwork`]).
//! 2. For each active user, generate an **influence context** (Algorithm 1,
//!    [`context`]): `L·α` nodes from a random walk with restart on the
//!    propagation DAG (local influence) plus `L·(1−α)` uniform samples from
//!    the episode's adopters (global user-interest similarity).
//! 3. Train skip-gram with negative sampling on the `(user, context)`
//!    tuples ([`inf2vec_embed::sgns`], Eq. 4–6).
//!
//! [`Inf2vecConfig::inf2vec_l`] gives the Inf2vec-L ablation (α = 1, local
//! context only, Table IV); [`train::train_on_pairs`] trains on first-order
//! influence pairs directly (the Table VI citation case study and the
//! paper's Emb-IC-comparable efficiency setting).

pub mod config;
pub mod context;
pub mod corpus;
pub mod model;
pub mod stream;
pub mod train;

pub use config::Inf2vecConfig;
pub use corpus::InfluenceContextSource;
pub use stream::episode_pairs;
pub use model::Inf2vecModel;
pub use train::{
    resume_from_checkpoint, select_alpha, train, train_incremental, train_on_pairs,
    train_resumable, try_select_alpha, try_train, try_train_incremental, try_train_on_pairs,
    CheckpointConfig, FaultTolerance,
};
