//! Algorithm 2: the Inf2vec training pipeline.
//!
//! Every entry point exists in two flavours: a `try_*` function returning
//! [`Inf2vecError`] (the API new code should call) and the historical
//! panicking wrapper kept for benches and examples. On top of those,
//! [`train_resumable`] adds periodic atomic checkpoints, automatic resume
//! after a crash, and loss-divergence rollback — see [`FaultTolerance`].

use std::path::PathBuf;

use inf2vec_diffusion::{Dataset, PropagationNetwork};
use inf2vec_embed::checkpoint::{write_checkpoint, Checkpoint};
use inf2vec_embed::sgns::{
    DivergenceGuard, FlatPairs, PairSource, SgnsConfig, SgnsTrainer, TrainOptions, TrainReport,
};
use inf2vec_embed::{EmbeddingStore, NegativeTable};
use inf2vec_util::error::{ConfigError, Inf2vecError, TrainError};
use inf2vec_util::rng::split_seed;

use crate::config::Inf2vecConfig;
use crate::corpus::InfluenceContextSource;
use crate::model::Inf2vecModel;

/// Periodic-snapshot policy for [`train_resumable`].
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Where the checkpoint lives. Written atomically; an existing file at
    /// this path is treated as a prior run's state and resumed from.
    pub path: PathBuf,
    /// Checkpoint after every `every_epochs` completed epochs (and always
    /// after the final one). 1 = every epoch.
    pub every_epochs: usize,
}

impl CheckpointConfig {
    /// Checkpoints to `path` after every epoch.
    pub fn every_epoch(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            every_epochs: 1,
        }
    }
}

/// Fault-tolerance options for [`train_resumable`]: both knobs default to
/// off, reproducing plain training.
#[derive(Debug, Clone, Default)]
pub struct FaultTolerance {
    /// Periodic atomic snapshots + resume-on-restart.
    pub checkpoint: Option<CheckpointConfig>,
    /// Per-epoch loss anomaly detection with rollback and lr backoff.
    pub guard: Option<DivergenceGuard>,
}

/// Trains Inf2vec on the training episodes of `dataset` (Algorithm 2).
///
/// `train_idx` selects the training episodes (from [`Dataset::split`]);
/// pass `0..n` to train on everything.
///
/// Panicking wrapper over [`try_train`].
pub fn train(dataset: &Dataset, train_idx: &[usize], config: &Inf2vecConfig) -> Inf2vecModel {
    try_train(dataset, train_idx, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`train`].
pub fn try_train(
    dataset: &Dataset,
    train_idx: &[usize],
    config: &Inf2vecConfig,
) -> Result<Inf2vecModel, Inf2vecError> {
    config.validate()?;
    // Lines 3-4: extract the propagation network of every episode.
    let nets = PropagationNetwork::build_all(
        &dataset.graph,
        train_idx.iter().map(|&i| &dataset.log.episodes()[i]),
        &config.telemetry,
    );
    Ok(try_train_on_networks(dataset.graph.node_count() as usize, nets, config)?.0)
}

/// Trains from pre-built propagation networks; returns the model and the
/// SGNS report (exposed for the efficiency benches).
///
/// Panicking wrapper over [`try_train_on_networks`].
pub fn train_on_networks(
    n_nodes: usize,
    nets: Vec<PropagationNetwork>,
    config: &Inf2vecConfig,
) -> (Inf2vecModel, TrainReport) {
    try_train_on_networks(n_nodes, nets, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`train_on_networks`].
pub fn try_train_on_networks(
    n_nodes: usize,
    nets: Vec<PropagationNetwork>,
    config: &Inf2vecConfig,
) -> Result<(Inf2vecModel, TrainReport), Inf2vecError> {
    config.validate()?;
    // Lines 5-8: generate the influence contexts.
    let source = InfluenceContextSource::new(nets, config);
    // Negative sampling over the context-target distribution (unigram^0.75).
    let negatives = NegativeTable::from_counts(&source.context_target_counts(n_nodes));
    run_sgns(n_nodes, &source, &negatives, config)
}

/// Trains directly on first-order influence pairs, skipping Algorithm 1.
///
/// This is the setting of the Table VI citation case study ("we only
/// exploit first-order social influence pairs") and of the paper's
/// efficiency footnote (same input as Emb-IC).
///
/// Panicking wrapper over [`try_train_on_pairs`].
pub fn train_on_pairs(
    n_nodes: usize,
    pairs: &[(u32, u32)],
    config: &Inf2vecConfig,
) -> Inf2vecModel {
    try_train_on_pairs(n_nodes, pairs, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`train_on_pairs`].
pub fn try_train_on_pairs(
    n_nodes: usize,
    pairs: &[(u32, u32)],
    config: &Inf2vecConfig,
) -> Result<Inf2vecModel, Inf2vecError> {
    config.validate()?;
    let source = FlatPairs::new(pairs.to_vec());
    // Uniform negatives (the paper: "we randomly generate several negative
    // instances"). A unigram^0.75 table — word2vec's default, used by the
    // full pipeline — is counterproductive here: first-order pair lists
    // concentrate on few frequent targets, and frequency-weighted negatives
    // would cancel exactly the popularity signal the conformity bias should
    // capture.
    let negatives = NegativeTable::uniform(n_nodes as u32);
    Ok(run_sgns(n_nodes, &source, &negatives, config)?.0)
}

/// Continues training an existing model on additional episodes (online
/// updates as fresh diffusion data arrives — beyond the paper, which
/// trains in one batch).
///
/// The model's parameters are updated in place from the new episodes'
/// influence contexts; dimension `K` comes from the model, everything else
/// from `config`.
///
/// # Panics
///
/// Panicking wrapper over [`try_train_incremental`]: panics if the model
/// was trained over a different node universe or `config.k` disagrees with
/// the model's dimension.
pub fn train_incremental(
    model: &mut Inf2vecModel,
    dataset: &Dataset,
    episode_idx: &[usize],
    config: &Inf2vecConfig,
) -> TrainReport {
    try_train_incremental(model, dataset, episode_idx, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`train_incremental`].
pub fn try_train_incremental(
    model: &mut Inf2vecModel,
    dataset: &Dataset,
    episode_idx: &[usize],
    config: &Inf2vecConfig,
) -> Result<TrainReport, Inf2vecError> {
    config.validate()?;
    if model.store.len() != dataset.graph.node_count() as usize {
        return Err(TrainError::ShapeMismatch {
            what: "model/node-universe mismatch",
            expected: dataset.graph.node_count() as usize,
            found: model.store.len(),
        }
        .into());
    }
    if config.k != model.store.k() {
        return Err(TrainError::ShapeMismatch {
            what: "config K disagrees with the model",
            expected: model.store.k(),
            found: config.k,
        }
        .into());
    }
    let nets = PropagationNetwork::build_all(
        &dataset.graph,
        episode_idx.iter().map(|&i| &dataset.log.episodes()[i]),
        &config.telemetry,
    );
    let source = InfluenceContextSource::new(nets, config);
    let negatives =
        NegativeTable::from_counts(&source.context_target_counts(model.store.len()));
    let trainer = SgnsTrainer::try_new(SgnsConfig {
        negatives: config.negatives,
        lr: config.lr,
        lr_min: config.lr,
        epochs: config.epochs,
        threads: config.threads,
        seed: split_seed(config.seed, 0x263),
    })?;
    trainer.try_train_with(
        &model.store,
        &source,
        &negatives,
        TrainOptions {
            telemetry: config.telemetry.clone(),
            ..TrainOptions::default()
        },
    )
}

/// Selects the component weight α on the tuning split, mirroring the
/// paper's §V-A2 procedure ("based on the empirical study on tuning set,
/// we set the default component weight α = 0.1").
///
/// Trains one model per candidate α and returns the candidate with the
/// best tuning-set activation-prediction MAP (ties: first candidate).
///
/// # Panics
///
/// Panicking wrapper over [`try_select_alpha`]: panics if `candidates` is
/// empty or any config is invalid.
pub fn select_alpha(
    dataset: &Dataset,
    train_idx: &[usize],
    tune_idx: &[usize],
    candidates: &[f64],
    config: &Inf2vecConfig,
) -> (f64, f64) {
    try_select_alpha(dataset, train_idx, tune_idx, candidates, config)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`select_alpha`].
pub fn try_select_alpha(
    dataset: &Dataset,
    train_idx: &[usize],
    tune_idx: &[usize],
    candidates: &[f64],
    config: &Inf2vecConfig,
) -> Result<(f64, f64), Inf2vecError> {
    if candidates.is_empty() {
        return Err(ConfigError::new("candidates", "need at least one candidate alpha").into());
    }
    let task = inf2vec_eval::activation::ActivationTask::build(
        &dataset.graph,
        tune_idx.iter().map(|&i| &dataset.log.episodes()[i]),
    );
    let mut best = (candidates[0], f64::NEG_INFINITY);
    for &alpha in candidates {
        let mut cfg = config.clone();
        cfg.alpha = alpha;
        cfg.validate()?;
        let model = try_train(dataset, train_idx, &cfg)?;
        let metrics = inf2vec_eval::runner::observe_evaluation(
            &config.telemetry,
            "alpha_tuning_activation",
            || {
                task.evaluate(&inf2vec_eval::ScoringModel::Representation(
                    &model,
                    inf2vec_eval::Aggregator::Ave,
                ))
            },
        );
        if metrics.map > best.1 {
            best = (alpha, metrics.map);
        }
    }
    Ok(best)
}

/// Trains with checkpoint/resume and divergence protection (Algorithm 2
/// plus the fault-tolerance layer).
///
/// When `ft.checkpoint` is set and a checkpoint file already exists at its
/// path, training resumes from it instead of starting over — in
/// single-thread mode the resumed run is bit-identical to an uninterrupted
/// one, because per-epoch RNG streams depend only on `(seed, epoch)`.
/// Fresh snapshots are written atomically after every
/// `every_epochs` completed epochs.
pub fn train_resumable(
    dataset: &Dataset,
    train_idx: &[usize],
    config: &Inf2vecConfig,
    ft: &FaultTolerance,
) -> Result<(Inf2vecModel, TrainReport), Inf2vecError> {
    config.validate()?;
    let nets = PropagationNetwork::build_all(
        &dataset.graph,
        train_idx.iter().map(|&i| &dataset.log.episodes()[i]),
        &config.telemetry,
    );
    let n_nodes = dataset.graph.node_count() as usize;
    let source = InfluenceContextSource::new(nets, config);
    let negatives = NegativeTable::from_counts(&source.context_target_counts(n_nodes));
    train_resumable_on_source(n_nodes, &source, &negatives, config, ft)
}

/// Resumes training from an existing checkpoint, erroring if there is
/// nothing to resume from (use [`train_resumable`] when a cold start is an
/// acceptable fallback).
pub fn resume_from_checkpoint(
    dataset: &Dataset,
    train_idx: &[usize],
    config: &Inf2vecConfig,
    ft: &FaultTolerance,
) -> Result<(Inf2vecModel, TrainReport), Inf2vecError> {
    let ck = ft.checkpoint.as_ref().ok_or_else(|| {
        Inf2vecError::Config(ConfigError::new(
            "checkpoint",
            "resume requires a checkpoint config",
        ))
    })?;
    if !ck.path.exists() {
        return Err(Inf2vecError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no checkpoint at {}", ck.path.display()),
        )));
    }
    train_resumable(dataset, train_idx, config, ft)
}

/// [`train_resumable`] over an explicit pair source — the seam the
/// fault-injection tests use to wrap sources with panic triggers, and the
/// path custom corpora can call directly.
pub fn train_resumable_on_source(
    n_nodes: usize,
    source: &dyn PairSource,
    negatives: &NegativeTable,
    config: &Inf2vecConfig,
    ft: &FaultTolerance,
) -> Result<(Inf2vecModel, TrainReport), Inf2vecError> {
    config.validate()?;

    // Resume state: either a prior checkpoint or a fresh initialization
    // (Algorithm 2 line 1: S, T ~ U[-1/K, 1/K], biases 0).
    let resumed = match &ft.checkpoint {
        Some(ck) if ck.path.exists() => Some(Checkpoint::load_from_path(&ck.path)?),
        _ => None,
    };
    let (store, start_epoch, pairs_done, lr_scale, last_good) = match resumed {
        Some(ck) => {
            if ck.store.len() != n_nodes {
                return Err(TrainError::ShapeMismatch {
                    what: "checkpoint node count disagrees with the dataset",
                    expected: n_nodes,
                    found: ck.store.len(),
                }
                .into());
            }
            if ck.store.k() != config.k {
                return Err(TrainError::ShapeMismatch {
                    what: "checkpoint dimension disagrees with config K",
                    expected: config.k,
                    found: ck.store.k(),
                }
                .into());
            }
            if ck.epochs_done > config.epochs {
                return Err(TrainError::ShapeMismatch {
                    what: "checkpoint is ahead of the configured epochs",
                    expected: config.epochs,
                    found: ck.epochs_done,
                }
                .into());
            }
            (
                ck.store,
                ck.epochs_done,
                ck.pairs_processed,
                ck.lr_scale,
                ck.last_good_loss,
            )
        }
        None => {
            let mut store =
                EmbeddingStore::new(n_nodes, config.k, split_seed(config.seed, 0x171));
            store.use_bias = config.use_bias;
            (store, 0, 0, 1.0, None)
        }
    };

    let trainer = SgnsTrainer::try_new(SgnsConfig {
        negatives: config.negatives,
        lr: config.lr,
        lr_min: config.lr,
        epochs: config.epochs,
        threads: config.threads,
        seed: split_seed(config.seed, 0x262),
    })?;

    let epochs = config.epochs;
    let mut hook;
    let on_epoch: Option<inf2vec_embed::sgns::EpochHook<'_>> = match &ft.checkpoint {
        Some(ck) => {
            let every = ck.every_epochs.max(1);
            let path = ck.path.clone();
            let store_ref = &store;
            let telemetry = config.telemetry.clone();
            hook = move |st: &inf2vec_embed::EpochState| -> std::io::Result<()> {
                let done = st.epoch + 1;
                if done.is_multiple_of(every) || done == epochs {
                    let start = std::time::Instant::now();
                    write_checkpoint(
                        &path,
                        done,
                        st.pairs_processed,
                        st.lr_scale,
                        Some(st.mean_loss),
                        store_ref,
                    )?;
                    let secs = start.elapsed().as_secs_f64();
                    telemetry.observe("inf2vec_checkpoint_write_seconds", secs);
                    telemetry.emit(
                        inf2vec_obs::Event::new("checkpoint")
                            .u64("epochs_done", done as u64)
                            .u64("pairs", st.pairs_processed)
                            .f64("seconds", secs),
                    );
                }
                Ok(())
            };
            Some(&mut hook)
        }
        None => None,
    };

    let report = trainer.try_train_with(
        &store,
        source,
        negatives,
        TrainOptions {
            start_epoch,
            pairs_already_processed: pairs_done,
            lr_scale,
            last_good_loss: last_good,
            guard: ft.guard.clone(),
            on_epoch,
            telemetry: config.telemetry.clone(),
        },
    )?;
    Ok((Inf2vecModel::new(store), report))
}

fn run_sgns(
    n_nodes: usize,
    source: &dyn PairSource,
    negatives: &NegativeTable,
    config: &Inf2vecConfig,
) -> Result<(Inf2vecModel, TrainReport), Inf2vecError> {
    // Line 1: initialize S, T ~ U[-1/K, 1/K], biases 0.
    let mut store = EmbeddingStore::new(n_nodes, config.k, split_seed(config.seed, 0x171));
    store.use_bias = config.use_bias;
    // Lines 9-17: SGD with negative sampling until convergence.
    let trainer = SgnsTrainer::try_new(SgnsConfig {
        negatives: config.negatives,
        lr: config.lr,
        lr_min: config.lr,
        epochs: config.epochs,
        threads: config.threads,
        seed: split_seed(config.seed, 0x262),
    })?;
    let report = trainer.try_train_with(
        &store,
        source,
        negatives,
        TrainOptions {
            telemetry: config.telemetry.clone(),
            ..TrainOptions::default()
        },
    )?;
    Ok((Inf2vecModel::new(store), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use inf2vec_diffusion::pairs::pair_frequencies;
    use inf2vec_diffusion::synth::{generate, SyntheticConfig};
    use inf2vec_graph::NodeId;

    fn tiny_setup() -> (Dataset, Vec<usize>) {
        let s = generate(&SyntheticConfig::tiny(), 11);
        let n = s.dataset.log.len();
        (s.dataset, (0..n).collect())
    }

    /// Training should make observed influence pairs score higher than
    /// random pairs — the core claim of the representation model.
    #[test]
    fn observed_pairs_outrank_random_pairs() {
        let (dataset, idx) = tiny_setup();
        let config = Inf2vecConfig {
            k: 16,
            l: 20,
            epochs: 8,
            lr: 0.02,
            seed: 1,
            ..Inf2vecConfig::default()
        };
        let model = train(&dataset, &idx, &config);

        let freq = pair_frequencies(&dataset.graph, dataset.log.episodes());
        let mut observed = 0.0f64;
        let mut n_obs = 0usize;
        for (&(u, v), &c) in freq.iter() {
            if c >= 1 {
                observed += model.score(NodeId(u), NodeId(v)) as f64;
                n_obs += 1;
            }
        }
        let observed = observed / n_obs as f64;

        let mut rng = inf2vec_util::Xoshiro256pp::new(99);
        let n = dataset.graph.node_count() as u64;
        let mut random = 0.0f64;
        let trials = 2000;
        for _ in 0..trials {
            let u = rng.below(n) as u32;
            let v = rng.below(n) as u32;
            random += model.score(NodeId(u), NodeId(v)) as f64;
        }
        let random = random / trials as f64;
        assert!(
            observed > random + 0.1,
            "observed pairs {observed:.4} vs random {random:.4}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (dataset, idx) = tiny_setup();
        let config = Inf2vecConfig {
            k: 8,
            l: 10,
            epochs: 2,
            seed: 5,
            ..Inf2vecConfig::default()
        };
        let m1 = train(&dataset, &idx[..20], &config);
        let m2 = train(&dataset, &idx[..20], &config);
        assert_eq!(m1.store.source.to_vec(), m2.store.source.to_vec());
        let m3 = train(
            &dataset,
            &idx[..20],
            &Inf2vecConfig {
                seed: 6,
                ..config.clone()
            },
        );
        assert_ne!(m1.store.source.to_vec(), m3.store.source.to_vec());
    }

    #[test]
    fn pairs_only_training_learns_direction() {
        // Pairs all point 0 -> 1..4 inside a 40-node vocabulary (the extra
        // nodes exist so negative sampling has true negatives to draw);
        // score(0, x) should beat score(x, 0) after training.
        let mut pairs = Vec::new();
        for v in 1..5u32 {
            for _ in 0..100 {
                pairs.push((0u32, v));
            }
        }
        let config = Inf2vecConfig {
            k: 8,
            epochs: 10,
            lr: 0.05,
            seed: 2,
            ..Inf2vecConfig::default()
        };
        let model = train_on_pairs(40, &pairs, &config);
        // True targets must outrank non-targets for the same source (the
        // absolute score level is arbitrary under negative sampling).
        let target: f32 = (1..5).map(|v| model.score(NodeId(0), NodeId(v))).sum::<f32>() / 4.0;
        let other: f32 =
            (5..40).map(|v| model.score(NodeId(0), NodeId(v))).sum::<f32>() / 35.0;
        assert!(
            target > other + 0.5,
            "targets {target} vs non-targets {other}"
        );
    }

    #[test]
    fn inf2vec_l_variant_trains() {
        let (dataset, idx) = tiny_setup();
        let config = Inf2vecConfig {
            k: 8,
            l: 10,
            epochs: 2,
            seed: 3,
            ..Inf2vecConfig::default()
        }
        .inf2vec_l();
        let model = train(&dataset, &idx[..20], &config);
        assert_eq!(model.store.k(), 8);
    }

    #[test]
    fn incremental_training_moves_parameters_and_helps() {
        let (dataset, idx) = tiny_setup();
        let config = Inf2vecConfig {
            k: 16,
            l: 15,
            epochs: 4,
            lr: 0.02,
            seed: 8,
            ..Inf2vecConfig::default()
        };
        // Train on the first half, continue on the second half.
        let half = idx.len() / 2;
        let mut model = train(&dataset, &idx[..half], &config);
        let before = model.store.source.to_vec();
        let report = train_incremental(&mut model, &dataset, &idx[half..], &config);
        assert!(report.pairs_processed > 0);
        assert_ne!(model.store.source.to_vec(), before, "no parameter movement");

        // The updated model knows pairs that only occur in the second half.
        let freq_new = pair_frequencies(
            &dataset.graph,
            idx[half..].iter().map(|&i| &dataset.log.episodes()[i]),
        );
        let mut rng = inf2vec_util::Xoshiro256pp::new(3);
        let n = dataset.graph.node_count() as u64;
        let mean_new: f64 = freq_new
            .keys()
            .map(|&(u, v)| model.score(NodeId(u), NodeId(v)) as f64)
            .sum::<f64>()
            / freq_new.len().max(1) as f64;
        let mean_rand: f64 = (0..2000)
            .map(|_| {
                model.score(
                    NodeId(rng.below(n) as u32),
                    NodeId(rng.below(n) as u32),
                ) as f64
            })
            .sum::<f64>()
            / 2000.0;
        assert!(
            mean_new > mean_rand,
            "new-episode pairs {mean_new:.4} not above random {mean_rand:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "config K disagrees")]
    fn incremental_rejects_dimension_mismatch() {
        let (dataset, idx) = tiny_setup();
        let config = Inf2vecConfig {
            k: 8,
            l: 5,
            epochs: 1,
            ..Inf2vecConfig::default()
        };
        let mut model = train(&dataset, &idx[..5], &config);
        let bad = Inf2vecConfig {
            k: 16,
            ..config.clone()
        };
        let _ = train_incremental(&mut model, &dataset, &idx[5..6], &bad);
    }

    #[test]
    fn alpha_selection_runs_and_returns_candidate() {
        let (dataset, idx) = tiny_setup();
        let split_at = (idx.len() * 8) / 10;
        let (train_idx, tune_idx) = idx.split_at(split_at);
        let config = Inf2vecConfig {
            k: 8,
            l: 10,
            epochs: 2,
            seed: 12,
            ..Inf2vecConfig::default()
        };
        let candidates = [0.1, 1.0];
        let (alpha, map) = select_alpha(&dataset, train_idx, tune_idx, &candidates, &config);
        assert!(candidates.contains(&alpha));
        assert!((0.0..=1.0).contains(&map));
    }

    #[test]
    fn empty_training_set_yields_initialized_model() {
        let (dataset, _) = tiny_setup();
        let config = Inf2vecConfig {
            k: 8,
            epochs: 1,
            ..Inf2vecConfig::default()
        };
        let model = train(&dataset, &[], &config);
        assert_eq!(model.store.len(), dataset.graph.node_count() as usize);
    }
}
