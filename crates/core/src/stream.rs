//! Per-episode influence-context pairs for online (streaming) training.
//!
//! The offline path ([`crate::InfluenceContextSource`]) materializes the
//! whole corpus from a frozen episode set. A continuous pipeline instead
//! sees episodes one at a time as cascades complete, and must be able to
//! *re-generate* an episode's pairs bit-identically after a crash. This
//! module keys the context RNG purely on `(config.seed, episode_seq)` —
//! the episode's position in the deterministic application order — so the
//! pairs are a pure function of the episode and its sequence number,
//! independent of wall clock, batching, or how many times the episode has
//! been replayed.

use inf2vec_diffusion::{Episode, PropagationNetwork};
use inf2vec_graph::DiGraph;
use inf2vec_util::rng::{split_seed, Xoshiro256pp};

use crate::config::Inf2vecConfig;
use crate::context::{generate_context_stats, ContextStats};

/// Stream id namespacing per-episode pair generation away from the
/// offline corpus streams derived from the same seed.
const EPISODE_STREAM: u64 = 0x0E91_50DE;

/// Generates the influence-context training pairs of one episode
/// (Algorithm 1 applied to the episode's propagation network), in global
/// node ids, plus the context stats for telemetry.
///
/// Deterministic: the RNG stream is derived from
/// `(config.seed, episode_seq)` only. Episodes with fewer than two
/// members yield no pairs.
///
/// # Panics
///
/// Panics on an invalid `config` (the pipeline validates its config once
/// at startup).
pub fn episode_pairs(
    graph: &DiGraph,
    episode: &Episode,
    config: &Inf2vecConfig,
    episode_seq: u64,
) -> (Vec<(u32, u32)>, ContextStats) {
    config.validate_or_panic();
    let net = PropagationNetwork::build(graph, episode);
    let mut stats = ContextStats::default();
    let mut pairs = Vec::new();
    if net.len() < 2 {
        return (pairs, stats);
    }
    let mut rng = Xoshiro256pp::new(split_seed(
        split_seed(config.seed, EPISODE_STREAM),
        episode_seq,
    ));
    for u in 0..net.len() as u32 {
        let (ctx, s) = generate_context_stats(
            &net,
            u,
            config.local_len(),
            config.global_len(),
            config.restart,
            &mut rng,
        );
        stats.merge(s);
        let gu = net.global(u).0;
        for v in ctx {
            pairs.push((gu, net.global(v).0));
        }
    }
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inf2vec_diffusion::ItemId;
    use inf2vec_graph::{GraphBuilder, NodeId};

    fn chain(len: u32) -> (DiGraph, Episode) {
        let mut b = GraphBuilder::with_nodes(len);
        for i in 0..len - 1 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        let e = Episode::new(ItemId(0), (0..len).map(|i| (NodeId(i), i as u64)).collect());
        (b.build(), e)
    }

    fn cfg() -> Inf2vecConfig {
        Inf2vecConfig {
            l: 10,
            ..Inf2vecConfig::default()
        }
    }

    #[test]
    fn pairs_are_a_pure_function_of_seed_and_seq() {
        let (g, e) = chain(8);
        let (a, _) = episode_pairs(&g, &e, &cfg(), 3);
        let (b, _) = episode_pairs(&g, &e, &cfg(), 3);
        assert_eq!(a, b, "same (seed, seq) must replay identically");
        assert!(!a.is_empty());
        let (c, _) = episode_pairs(&g, &e, &cfg(), 4);
        assert_ne!(a, c, "different sequence numbers draw different contexts");
    }

    #[test]
    fn pairs_use_global_ids_and_skip_tiny_episodes() {
        let (g, _) = chain(8);
        // Episode over a sub-population with non-contiguous global ids.
        let e = Episode::new(ItemId(1), vec![(NodeId(2), 0), (NodeId(5), 1), (NodeId(7), 2)]);
        let (pairs, stats) = episode_pairs(&g, &e, &cfg(), 0);
        for &(u, v) in &pairs {
            assert!([2u32, 5, 7].contains(&u), "{u}");
            assert!([2u32, 5, 7].contains(&v), "{v}");
        }
        assert_eq!(stats.local + stats.global, pairs.len() as u64);

        let singleton = Episode::new(ItemId(2), vec![(NodeId(1), 0)]);
        let (pairs, _) = episode_pairs(&g, &singleton, &cfg(), 1);
        assert!(pairs.is_empty());
    }
}
