//! The `(u, C_u^i)` tuple corpus as a skip-gram pair source.
//!
//! Algorithm 2 lines 3–8 generate the influence-context tuples `P` once and
//! then iterate SGD over them until convergence. [`InfluenceContextSource`]
//! materializes exactly that, and additionally supports the regenerate-per-
//! epoch extension flagged in [`crate::Inf2vecConfig::regenerate_contexts`].

use inf2vec_diffusion::PropagationNetwork;
use inf2vec_embed::sgns::PairSource;
use inf2vec_obs::{Event, Telemetry};
use inf2vec_util::rng::{split_seed, Xoshiro256pp};

use crate::config::Inf2vecConfig;
use crate::context::{generate_context_stats, ContextStats};

/// The influence-context corpus over a set of propagation networks.
#[derive(Debug)]
pub struct InfluenceContextSource {
    nets: Vec<PropagationNetwork>,
    local_len: usize,
    global_len: usize,
    restart: f64,
    seed: u64,
    regenerate: bool,
    telemetry: Telemetry,
    /// Pre-generated tuples `(global user, global context)` when not in
    /// regenerate mode.
    cached: Vec<(u32, Vec<u32>)>,
    cached_pairs: u64,
}

impl InfluenceContextSource {
    /// Builds the corpus from propagation networks (Algorithm 2 lines 3–8).
    ///
    /// Empty networks contribute nothing. In the default mode the contexts
    /// are generated here, once, with a dedicated RNG stream.
    ///
    /// # Panics
    ///
    /// Panics on an invalid `config`; the `Result`-returning train entry
    /// points validate before constructing a source, so they never hit it.
    pub fn new(nets: Vec<PropagationNetwork>, config: &Inf2vecConfig) -> Self {
        config.validate_or_panic();
        let mut source = Self {
            nets,
            local_len: config.local_len(),
            global_len: config.global_len(),
            restart: config.restart,
            seed: config.seed,
            regenerate: config.regenerate_contexts,
            telemetry: config.telemetry.clone(),
            cached: Vec::new(),
            cached_pairs: 0,
        };
        if !source.regenerate {
            let span = source.telemetry.span("inf2vec_corpus_build");
            let mut rng = Xoshiro256pp::new(split_seed(config.seed, 0xC0D7E47));
            let mut cached = Vec::new();
            let mut total = 0u64;
            let mut stats = ContextStats::default();
            for net in &source.nets {
                source.generate_net_tuples(net, &mut rng, &mut stats, &mut |u, ctx| {
                    total += ctx.len() as u64;
                    cached.push((u, ctx));
                });
            }
            source.cached = cached;
            source.cached_pairs = total;
            let secs = span.finish();
            source.record_context_stats(&stats);
            if source.telemetry.enabled() {
                source.telemetry.emit(
                    Event::new("corpus")
                        .u64("tuples", source.cached.len() as u64)
                        .u64("pairs", total)
                        .u64("local", stats.local)
                        .u64("global", stats.global)
                        .u64("walk_restarts", stats.walk.restarts + stats.walk.dead_end_restarts)
                        .f64("seconds", secs),
                );
            }
        } else {
            // Estimate for the lr schedule: every member yields ≈ L pairs.
            source.cached_pairs = source
                .nets
                .iter()
                .map(|n| n.len() as u64)
                .sum::<u64>()
                * (source.local_len + source.global_len) as u64;
        }
        source
    }

    /// Generates all tuples of one network, emitting `(global_u, global
    /// context)` and accumulating Algorithm 1 walk stats into `stats`.
    fn generate_net_tuples(
        &self,
        net: &PropagationNetwork,
        rng: &mut Xoshiro256pp,
        stats: &mut ContextStats,
        emit: &mut dyn FnMut(u32, Vec<u32>),
    ) {
        if net.len() < 2 {
            return;
        }
        for u in 0..net.len() as u32 {
            let (ctx, s) = generate_context_stats(
                net,
                u,
                self.local_len,
                self.global_len,
                self.restart,
                rng,
            );
            stats.merge(s);
            if ctx.is_empty() {
                continue;
            }
            let global_ctx: Vec<u32> = ctx.iter().map(|&v| net.global(v).0).collect();
            emit(net.global(u).0, global_ctx);
        }
    }

    /// Flushes accumulated context stats into the registry (one atomic add
    /// per counter, so this is cheap enough to call per epoch).
    fn record_context_stats(&self, stats: &ContextStats) {
        if !self.telemetry.enabled() {
            return;
        }
        self.telemetry
            .count("inf2vec_context_local_total", stats.local);
        self.telemetry
            .count("inf2vec_context_global_total", stats.global);
        self.telemetry
            .count("inf2vec_walk_restarts_total", stats.walk.restarts);
        self.telemetry.count(
            "inf2vec_walk_dead_end_restarts_total",
            stats.walk.dead_end_restarts,
        );
    }

    /// Number of `(u, C)` tuples in the cached corpus (0 in regenerate
    /// mode).
    pub fn tuple_count(&self) -> usize {
        self.cached.len()
    }

    /// Per-node counts of appearing as a context member, for the negative-
    /// sampling distribution. In regenerate mode this derives counts from
    /// episode membership (the expectation of the sampling process).
    pub fn context_target_counts(&self, n_nodes: usize) -> Vec<u64> {
        let mut counts = vec![0u64; n_nodes];
        if self.regenerate {
            for net in &self.nets {
                for &u in net.nodes() {
                    counts[u.index()] += 1;
                }
            }
        } else {
            for (_, ctx) in &self.cached {
                for &v in ctx {
                    counts[v as usize] += 1;
                }
            }
        }
        counts
    }

    /// The underlying propagation networks.
    pub fn nets(&self) -> &[PropagationNetwork] {
        &self.nets
    }
}

impl PairSource for InfluenceContextSource {
    fn for_each_pair(
        &self,
        epoch: usize,
        shard: usize,
        n_shards: usize,
        rng: &mut Xoshiro256pp,
        f: &mut dyn FnMut(u32, u32),
    ) {
        if self.regenerate {
            // Fresh contexts each epoch: walk this shard's networks with an
            // epoch-specific stream (independent of the trainer's rng so the
            // corpus is identical regardless of thread count).
            let mut gen_rng =
                Xoshiro256pp::new(split_seed(self.seed, 0x9E0 ^ ((epoch as u64) << 8 | shard as u64)));
            let mut stats = ContextStats::default();
            for i in (shard..self.nets.len()).step_by(n_shards) {
                self.generate_net_tuples(&self.nets[i], &mut gen_rng, &mut stats, &mut |u, ctx| {
                    for v in ctx {
                        f(u, v);
                    }
                });
            }
            self.record_context_stats(&stats);
        } else {
            let mut idx: Vec<u32> = (shard..self.cached.len())
                .step_by(n_shards)
                .map(|i| i as u32)
                .collect();
            rng.shuffle(&mut idx);
            for i in idx {
                let (u, ctx) = &self.cached[i as usize];
                for &v in ctx {
                    f(*u, v);
                }
            }
        }
    }

    fn pairs_per_epoch(&self) -> u64 {
        self.cached_pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inf2vec_diffusion::synth::{generate, SyntheticConfig};
    use inf2vec_diffusion::PropagationNetwork;

    fn nets() -> (Vec<PropagationNetwork>, u32) {
        let s = generate(&SyntheticConfig::tiny(), 3);
        let n = s.dataset.graph.node_count();
        let nets = s
            .dataset
            .log
            .episodes()
            .iter()
            .take(20)
            .map(|e| PropagationNetwork::build(&s.dataset.graph, e))
            .collect();
        (nets, n)
    }

    #[test]
    fn cached_corpus_has_tuples_and_pairs() {
        let (nets, n) = nets();
        let cfg = Inf2vecConfig {
            l: 20,
            ..Inf2vecConfig::default()
        };
        let src = InfluenceContextSource::new(nets, &cfg);
        assert!(src.tuple_count() > 0);
        assert!(src.pairs_per_epoch() > 0);

        let mut seen_pairs = 0u64;
        let mut rng = Xoshiro256pp::new(1);
        src.for_each_pair(0, 0, 1, &mut rng, &mut |u, v| {
            assert!(u < n && v < n);
            seen_pairs += 1;
        });
        assert_eq!(seen_pairs, src.pairs_per_epoch());
    }

    #[test]
    fn sharding_partitions_pairs() {
        let (nets, _) = nets();
        let cfg = Inf2vecConfig {
            l: 10,
            ..Inf2vecConfig::default()
        };
        let src = InfluenceContextSource::new(nets, &cfg);
        let count_shard = |shard, n_shards| {
            let mut c = 0u64;
            let mut rng = Xoshiro256pp::new(2);
            src.for_each_pair(0, shard, n_shards, &mut rng, &mut |_, _| c += 1);
            c
        };
        let total = count_shard(0, 1);
        assert_eq!(total, count_shard(0, 2) + count_shard(1, 2));
    }

    #[test]
    fn target_counts_match_context_occurrences() {
        let (nets, n) = nets();
        let cfg = Inf2vecConfig {
            l: 10,
            ..Inf2vecConfig::default()
        };
        let src = InfluenceContextSource::new(nets, &cfg);
        let counts = src.context_target_counts(n as usize);
        assert_eq!(counts.iter().sum::<u64>(), src.pairs_per_epoch());
    }

    #[test]
    fn regenerate_mode_differs_across_epochs_but_not_runs() {
        let (nets, _) = nets();
        let cfg = Inf2vecConfig {
            l: 10,
            regenerate_contexts: true,
            ..Inf2vecConfig::default()
        };
        let src = InfluenceContextSource::new(nets, &cfg);
        let collect = |epoch| {
            let mut pairs = Vec::new();
            let mut rng = Xoshiro256pp::new(3);
            src.for_each_pair(epoch, 0, 1, &mut rng, &mut |u, v| pairs.push((u, v)));
            pairs
        };
        assert_eq!(collect(0), collect(0), "same epoch must replay identically");
        assert_ne!(collect(0), collect(1), "epochs should differ");
    }

    #[test]
    fn alpha_one_contexts_follow_dag() {
        // Inf2vec-L: every emitted pair must be a (possibly high-order)
        // influence-pair descendant, which in particular means u != v.
        let (nets, _) = nets();
        let cfg = Inf2vecConfig {
            l: 10,
            ..Inf2vecConfig::default()
        }
        .inf2vec_l();
        let src = InfluenceContextSource::new(nets, &cfg);
        let mut rng = Xoshiro256pp::new(4);
        src.for_each_pair(0, 0, 1, &mut rng, &mut |u, v| {
            assert_ne!(u, v, "walk produced a self-pair");
        });
    }
}
