//! Inf2vec hyper-parameters.

use inf2vec_obs::Telemetry;
use inf2vec_util::error::ConfigError;

/// All knobs of Algorithm 1 + Algorithm 2, preloaded with the paper's §V-A2
/// defaults.
#[derive(Debug, Clone)]
pub struct Inf2vecConfig {
    /// Embedding dimension K (paper default 50; Figure 7 sweeps it).
    pub k: usize,
    /// Context length threshold L (paper default 50; Figure 8 sweeps it).
    pub l: usize,
    /// Component weight α: fraction of the context drawn by the local
    /// restart walk; the rest is global user-similarity sampling (paper
    /// default 0.1 from the tuning set; α = 1 is Inf2vec-L).
    pub alpha: f64,
    /// Restart probability of the local walk (paper: 0.5, following
    /// node2vec's default).
    pub restart: f64,
    /// Negative samples per positive pair (paper: 5–10).
    pub negatives: usize,
    /// SGD learning rate γ (paper default 0.005).
    pub lr: f32,
    /// Training epochs over the generated tuples (paper: converges in
    /// 10–20 iterations).
    pub epochs: usize,
    /// Hogwild worker threads (1 = deterministic, the default).
    pub threads: usize,
    /// Master seed for context generation, negative sampling, and
    /// initialization.
    pub seed: u64,
    /// Extension beyond the paper: regenerate influence contexts every
    /// epoch instead of once up front (Algorithm 2 generates them once;
    /// fresh contexts act like data augmentation). Off by default.
    pub regenerate_contexts: bool,
    /// Whether to learn the bias terms `b_u`, `b̃_u` (on in the paper;
    /// the `ablate-bias` bench turns it off).
    pub use_bias: bool,
    /// Metrics/event destination threaded through every training phase
    /// (corpus build, SGNS epochs, checkpointing). Disabled by default:
    /// then each instrumentation point costs one branch.
    pub telemetry: Telemetry,
}

impl Default for Inf2vecConfig {
    fn default() -> Self {
        Self {
            k: 50,
            l: 50,
            alpha: 0.1,
            restart: 0.5,
            negatives: 5,
            lr: 0.005,
            epochs: 15,
            threads: 1,
            seed: 0,
            regenerate_contexts: false,
            use_bias: true,
            telemetry: Telemetry::disabled(),
        }
    }
}

impl Inf2vecConfig {
    /// The Inf2vec-L variant of Table IV: local influence context only
    /// (α = 1.0), everything else unchanged.
    pub fn inf2vec_l(mut self) -> Self {
        self.alpha = 1.0;
        self
    }

    /// Sets the seed, chainable.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of local (walk) context nodes: `round(L · α)`.
    pub fn local_len(&self) -> usize {
        (self.l as f64 * self.alpha).round() as usize
    }

    /// Number of global (similarity) context nodes: `L - local`.
    pub fn global_len(&self) -> usize {
        self.l - self.local_len()
    }

    /// Validates parameter ranges; the trainers call this before touching
    /// any data.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.k == 0 {
            return Err(ConfigError::new("k", "K must be positive"));
        }
        if self.l == 0 {
            return Err(ConfigError::new("l", "L must be positive"));
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(ConfigError::new("alpha", "alpha must be in [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.restart) {
            return Err(ConfigError::new("restart", "restart must be in [0, 1]"));
        }
        if !(self.lr > 0.0 && self.lr.is_finite()) {
            return Err(ConfigError::new("lr", "learning rate must be positive"));
        }
        if self.epochs == 0 {
            return Err(ConfigError::new("epochs", "need at least one epoch"));
        }
        if self.threads == 0 {
            return Err(ConfigError::new("threads", "need at least one thread"));
        }
        Ok(())
    }

    /// [`validate`](Self::validate), panicking on the first violation
    /// (legacy wrapper for the panicking train entry points).
    pub fn validate_or_panic(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = Inf2vecConfig::default();
        assert_eq!(c.k, 50);
        assert_eq!(c.l, 50);
        assert!((c.alpha - 0.1).abs() < 1e-12);
        assert!((c.restart - 0.5).abs() < 1e-12);
        assert!((c.lr - 0.005).abs() < 1e-9);
        assert!(c.use_bias);
        c.validate().unwrap();
    }

    #[test]
    fn context_split_sums_to_l() {
        for alpha in [0.0, 0.1, 0.33, 0.5, 0.9, 1.0] {
            let c = Inf2vecConfig {
                alpha,
                ..Inf2vecConfig::default()
            };
            assert_eq!(c.local_len() + c.global_len(), c.l, "alpha = {alpha}");
        }
        let c = Inf2vecConfig::default();
        assert_eq!(c.local_len(), 5); // 50 * 0.1
        assert_eq!(c.global_len(), 45);
    }

    #[test]
    fn inf2vec_l_is_all_local() {
        let c = Inf2vecConfig::default().inf2vec_l();
        assert_eq!(c.local_len(), c.l);
        assert_eq!(c.global_len(), 0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn validate_rejects_bad_alpha() {
        Inf2vecConfig {
            alpha: 1.5,
            ..Inf2vecConfig::default()
        }
        .validate_or_panic();
    }

    #[test]
    fn validate_reports_the_offending_field() {
        let cases: [(&str, Inf2vecConfig); 5] = [
            ("k", Inf2vecConfig { k: 0, ..Inf2vecConfig::default() }),
            ("l", Inf2vecConfig { l: 0, ..Inf2vecConfig::default() }),
            ("restart", Inf2vecConfig { restart: -0.1, ..Inf2vecConfig::default() }),
            ("lr", Inf2vecConfig { lr: f32::NAN, ..Inf2vecConfig::default() }),
            ("epochs", Inf2vecConfig { epochs: 0, ..Inf2vecConfig::default() }),
        ];
        for (field, cfg) in cases {
            let err = cfg.validate().unwrap_err();
            assert_eq!(err.field, field);
        }
    }
}
