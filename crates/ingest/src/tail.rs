//! Resumable tailing of an append-only `user item time` action log, with
//! rotation-aware compaction.
//!
//! A [`LogTail`] polls the log file for *complete* lines past a committed
//! byte offset. A trailing line without its `\n` terminator is presumed to
//! be mid-append and is left unconsumed — the next poll re-reads it — so a
//! record is either seen whole exactly once or not yet at all. The
//! committed [`TailPosition`] (byte offset + line number) is plain data a
//! caller can persist in a progress journal and hand back to
//! [`LogTail::resume`] after a crash: replaying from a journaled position
//! yields exactly the records an uninterrupted tail would have produced.
//!
//! Every complete line classifies into exactly one [`TailItem`]:
//! a parsed [`ActionRecord`], a typed [`TailItem::Defect`] (quarantine),
//! or — for blanks and `#` comments — nothing at all. Corrupted tails
//! (torn writes, flipped bytes) therefore surface as `MalformedLine` /
//! `DanglingNode` / timestamp defects instead of derailing the stream.
//!
//! # Rotation, compaction, and logical offsets
//!
//! An immortal log file grows without bound, so long-running pipelines
//! periodically rotate the fully-consumed prefix away with [`compact_to`].
//! The compacted file opens with a **sentinel header line**
//!
//! ```text
//! #inf2vec-log v1 base <offset> lines <count>
//! ```
//!
//! recording how many logical bytes/lines of stream history precede the
//! file's first payload byte. [`TailPosition::offset`] is always a
//! *logical* offset — bytes since the origin of the stream, not since the
//! start of the current file — so journaled positions survive any number
//! of rotations unchanged. The sentinel starts with `#`, so readers that
//! ignore rotation (the batch loader) still parse the file: they simply
//! see a comment.
//!
//! A poll that cannot honor its committed position fails **typed** instead
//! of silently yielding nothing:
//!
//! - file shorter than the committed offset with no sentinel explaining it
//!   → [`IngestError::LogTruncated`] (a torn rotation or external
//!   truncation destroyed unread data);
//! - sentinel base beyond the committed offset →
//!   [`IngestError::LogRotated`] (the resume point was compacted away —
//!   only possible when compaction outruns the journal, which the
//!   pipeline's min-committed-across-slots rule prevents).

use std::fs;
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use inf2vec_obs::{Event, Telemetry};
use inf2vec_util::atomic_write;
use inf2vec_util::error::{DefectKind, IngestError};

use crate::lines::LineStream;
use crate::parse::{parse_id, parse_time, TimeParse};
use crate::policy::IdMode;
use crate::report::SAMPLE_MAX_CHARS;

/// Magic prefix of the rotation sentinel header line.
pub(crate) const SENTINEL_MAGIC: &str = "#inf2vec-log v1";

/// Parsed rotation sentinel: the logical stream history that precedes the
/// live file's first payload byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct LogHeader {
    /// Logical byte offset of the first payload byte.
    pub(crate) base: u64,
    /// Logical lines consumed before the first payload line.
    pub(crate) lines: u64,
    /// Physical bytes the sentinel line itself occupies (0 = no sentinel).
    pub(crate) header_len: u64,
}

pub(crate) fn render_sentinel(pos: TailPosition) -> String {
    format!("{SENTINEL_MAGIC} base {} lines {}\n", pos.offset, pos.line_no)
}

fn parse_sentinel(line: &str) -> Option<(u64, u64)> {
    let rest = line.strip_prefix(SENTINEL_MAGIC)?;
    let mut it = rest.split_ascii_whitespace();
    let (base, lines) = match (it.next()?, it.next()?, it.next()?, it.next()?) {
        ("base", b, "lines", l) => (b.parse().ok()?, l.parse().ok()?),
        _ => return None,
    };
    it.next().is_none().then_some((base, lines))
}

/// Reads the (optional) sentinel header from an open log file. The file's
/// read position afterwards is unspecified; callers must seek.
pub(crate) fn read_header(file: &mut fs::File) -> io::Result<LogHeader> {
    // A sentinel is a short first line; 128 bytes is comfortably enough
    // for two u64s and the magic.
    let mut buf = [0u8; 128];
    file.seek(SeekFrom::Start(0))?;
    let mut got = 0;
    while got < buf.len() {
        match file.read(&mut buf[got..])? {
            0 => break,
            n => got += n,
        }
    }
    let head = &buf[..got];
    if !head.starts_with(SENTINEL_MAGIC.as_bytes()) {
        return Ok(LogHeader::default());
    }
    let Some(nl) = head.iter().position(|&b| b == b'\n') else {
        // Starts like a sentinel but the line is not terminated within the
        // probe window. Compaction writes sentinels atomically, so this is
        // a foreign or torn file; treat it as payload.
        return Ok(LogHeader::default());
    };
    let line = std::str::from_utf8(&head[..nl]).ok().map(str::trim_end);
    match line.and_then(parse_sentinel) {
        Some((base, lines)) => Ok(LogHeader {
            base,
            lines,
            header_len: nl as u64 + 1,
        }),
        None => Ok(LogHeader::default()),
    }
}

/// Returns the rotation sentinel of `path` as `(logical base offset,
/// logical lines before the file)`, `(0, 0)` when the file has none, and
/// `None` when the file does not exist.
pub fn sentinel_base(path: &Path) -> io::Result<Option<(u64, u64)>> {
    let mut file = match fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let h = read_header(&mut file)?;
    Ok(Some((h.base, h.lines)))
}

/// What one [`compact_to`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStats {
    /// Physical payload bytes rotated out of the live file.
    pub dropped_bytes: u64,
    /// Physical bytes the live file holds afterwards (sentinel included).
    pub live_bytes: u64,
    /// The live file's logical base offset afterwards.
    pub base: u64,
}

/// Rotates every payload byte below the logical position `pos` out of the
/// log at `path`, atomically rewriting the file as a sentinel header plus
/// the surviving suffix. When `archive` is given, the dropped bytes are
/// appended there first (so `archive ++ live payload` reconstructs the
/// full logical stream, e.g. for a bit-identity replay).
///
/// `pos` must be a committed [`TailPosition`] (it always falls on a line
/// boundary) that every consumer has both applied *and* durably journaled:
/// after compaction, no resume point below `pos.offset` is servable.
/// Concurrent *readers* are safe (the rewrite is an atomic rename; a
/// reader holding the old file sees a consistent old snapshot). Concurrent
/// appenders are not — the producer must reopen the path per append and be
/// quiescent across this call, or its in-flight appends are lost.
///
/// Compacting at or below the current base is a no-op.
pub fn compact_to(
    path: &Path,
    pos: TailPosition,
    archive: Option<&Path>,
) -> io::Result<CompactionStats> {
    compact_to_with(path, pos, archive, None)
}

/// [`compact_to`] with an injected disk fault: when `fail_after_bytes` is
/// `Some(limit)`, the atomic rewrite accepts `limit` bytes and then fails
/// like a full disk — the destination is left untouched (and the call is
/// safe to retry: the archive append is idempotent, tracking how many
/// logical bytes it already holds).
pub fn compact_to_with(
    path: &Path,
    pos: TailPosition,
    archive: Option<&Path>,
    fail_after_bytes: Option<usize>,
) -> io::Result<CompactionStats> {
    let bytes = fs::read(path)?;
    let header = {
        let mut f = fs::File::open(path)?;
        read_header(&mut f)?
    };
    if pos.offset <= header.base {
        return Ok(CompactionStats {
            dropped_bytes: 0,
            live_bytes: bytes.len() as u64,
            base: header.base,
        });
    }
    let drop = pos.offset - header.base;
    let payload = &bytes[header.header_len as usize..];
    if drop > payload.len() as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "compact_to offset {} is past the log's logical end {}",
                pos.offset,
                header.base + payload.len() as u64
            ),
        ));
    }
    let (dropped, kept) = payload.split_at(drop as usize);
    if let Some(archive) = archive {
        // The archive invariantly holds logical bytes `[0, len)`. A prior
        // compaction attempt that archived and then failed the rewrite
        // left `len > header.base`; skip what it already wrote so retries
        // never duplicate bytes.
        let archived = fs::metadata(archive).map(|m| m.len()).unwrap_or(0);
        if archived < header.base {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "archive {} holds {archived} logical bytes but the live log \
                     already starts at base {}: the stream prefix is unrecoverable",
                    archive.display(),
                    header.base
                ),
            ));
        }
        let skip = (archived - header.base).min(drop) as usize;
        if skip < dropped.len() {
            let mut f = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(archive)?;
            f.write_all(&dropped[skip..])?;
            f.sync_all()?;
        }
    }
    let sentinel = render_sentinel(pos);
    atomic_write(path, |f| {
        let mut w: Box<dyn Write> = match fail_after_bytes {
            Some(limit) => {
                Box::new(inf2vec_util::faultinject::FailingWriter::new(&mut *f, limit))
            }
            None => Box::new(&mut *f),
        };
        w.write_all(sentinel.as_bytes())?;
        w.write_all(kept)
    })?;
    Ok(CompactionStats {
        dropped_bytes: drop,
        live_bytes: sentinel.len() as u64 + kept.len() as u64,
        base: pos.offset,
    })
}

/// One parsed action: `user` activated on `item` at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActionRecord {
    /// 1-based physical line number in the log.
    pub line_no: u64,
    /// Dense user id, verified `< num_users`.
    pub user: u32,
    /// Item id (its own namespace; any `u32`).
    pub item: u32,
    /// Activation timestamp.
    pub time: u64,
}

/// What one complete log line classified as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailItem {
    /// A well-formed action record.
    Record(ActionRecord),
    /// A quarantined line: the defect kind plus a truncated sample.
    Defect {
        /// 1-based physical line number in the log.
        line_no: u64,
        /// Why the line was quarantined.
        kind: DefectKind,
        /// The offending line, truncated for reporting.
        sample: String,
    },
}

/// A committed tail position: resume here and the stream continues as if
/// never interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TailPosition {
    /// Byte offset of the first unconsumed byte.
    pub offset: u64,
    /// Complete lines consumed so far.
    pub line_no: u64,
}

/// Tails an append-only action log from a resumable position.
#[derive(Debug)]
pub struct LogTail {
    path: PathBuf,
    num_users: u32,
    pos: TailPosition,
    telemetry: Telemetry,
}

impl LogTail {
    /// Tails `path` from the beginning. `num_users` bounds valid user ids
    /// (a record naming a user outside the propagation network is a
    /// [`DefectKind::DanglingNode`] defect).
    pub fn new(path: impl Into<PathBuf>, num_users: u32) -> Self {
        Self::resume(path, num_users, TailPosition::default())
    }

    /// Resumes tailing from a previously committed position.
    pub fn resume(path: impl Into<PathBuf>, num_users: u32, pos: TailPosition) -> Self {
        Self {
            path: path.into(),
            num_users,
            pos,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: each non-empty poll then counts its
    /// lines/records/defects and emits one `tail.batch` event. Disabled
    /// telemetry (the default) costs one branch per poll.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The position the next poll starts from (persist this to resume).
    pub fn position(&self) -> TailPosition {
        self.pos
    }

    /// The log file being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads up to `max` newly completed lines, classifying each. Returns
    /// an empty vec when nothing new is terminated yet (including when the
    /// log file does not exist yet). The committed position only advances
    /// past lines whose terminator has been seen.
    ///
    /// The committed offset is *logical* (see the module docs): a rotation
    /// sentinel at the head of the file maps it onto the live file. A poll
    /// that cannot honor the committed position — the file shrank below
    /// it, or compaction rotated it away — fails with the corresponding
    /// typed [`IngestError`] instead of silently reading nothing.
    pub fn poll(&mut self, max: usize) -> Result<Vec<TailItem>, IngestError> {
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let header = read_header(&mut file)?;
        if self.pos.offset < header.base {
            return Err(IngestError::LogRotated {
                committed: self.pos.offset,
                base: header.base,
            });
        }
        let file_len = file.metadata()?.len();
        let logical_len = header.base + file_len.saturating_sub(header.header_len);
        if self.pos.offset > logical_len {
            return Err(IngestError::LogTruncated {
                committed: self.pos.offset,
                len: logical_len,
            });
        }
        let physical = header.header_len + (self.pos.offset - header.base);
        file.seek(SeekFrom::Start(physical))?;
        let reader = BufReader::new(file.take(u64::MAX));
        let mut stream = LineStream::with_bom_strip(reader, physical == 0 && self.pos.offset == 0);
        let mut out = Vec::new();
        let mut committed = 0u64;
        while out.len() < max {
            let Some((_, line)) = stream.next_line()? else {
                break;
            };
            let line = line.to_string();
            if !stream.last_terminated() {
                // Partial tail line: the writer hasn't finished it. Leave
                // it for the next poll.
                break;
            }
            // Only lines whose terminator was seen move the offset.
            committed = stream.bytes();
            self.pos.line_no += 1;
            if let Some(item) = self.classify(self.pos.line_no, &line) {
                out.push(item);
            }
        }
        self.pos.offset += committed;
        if !out.is_empty() {
            let records = out
                .iter()
                .filter(|i| matches!(i, TailItem::Record(_)))
                .count() as u64;
            let defects = out.len() as u64 - records;
            self.telemetry
                .count("inf2vec_ingest_tail_records_total", records);
            self.telemetry
                .count("inf2vec_ingest_tail_defects_total", defects);
            self.telemetry.emit_with(|| {
                Event::new("tail.batch")
                    .u64("records", records)
                    .u64("defects", defects)
                    .u64("offset", self.pos.offset)
                    .u64("line", self.pos.line_no)
            });
        }
        Ok(out)
    }

    /// Classifies one complete line. Blank lines and comments yield
    /// nothing; everything else is exactly one record or one defect.
    fn classify(&self, line_no: u64, line: &str) -> Option<TailItem> {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return None;
        }
        let defect = |kind| TailItem::Defect {
            line_no,
            kind,
            sample: sample_of(trimmed),
        };

        let mut parts = trimmed.split_whitespace();
        let fields = (parts.next(), parts.next(), parts.next(), parts.next());
        let (u_tok, i_tok, t_tok) = match fields {
            (Some(u), Some(i), Some(t), None) => (u, i, t),
            _ => return Some(defect(DefectKind::MalformedLine)),
        };
        let user = match parse_id(u_tok, IdMode::Preserve, None) {
            Ok(u) if u < self.num_users => u,
            Ok(_) => return Some(defect(DefectKind::DanglingNode)),
            Err(kind) => return Some(defect(kind)),
        };
        let item = match parse_id(i_tok, IdMode::Preserve, None) {
            Ok(i) => i,
            Err(kind) => return Some(defect(kind)),
        };
        let time = match parse_time(t_tok) {
            TimeParse::Ok(t) => t,
            // The tail quarantines rather than repairs: an online record
            // with a mangled timestamp is evidence of a torn write, not a
            // float export quirk.
            TimeParse::Repairable(_, kind) | TimeParse::Bad(kind) => {
                return Some(defect(kind));
            }
        };
        Some(TailItem::Record(ActionRecord {
            line_no,
            user,
            item,
            time,
        }))
    }
}

fn sample_of(line: &str) -> String {
    if line.chars().count() <= SAMPLE_MAX_CHARS {
        line.to_string()
    } else {
        let cut: String = line.chars().take(SAMPLE_MAX_CHARS).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("inf2vec_tail_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn append(path: &Path, bytes: &[u8]) {
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap();
        f.write_all(bytes).unwrap();
    }

    fn rec(line_no: u64, user: u32, item: u32, time: u64) -> TailItem {
        TailItem::Record(ActionRecord {
            line_no,
            user,
            item,
            time,
        })
    }

    #[test]
    fn partial_tail_line_waits_for_terminator() {
        let path = tmp("partial.log");
        std::fs::remove_file(&path).ok();
        let mut tail = LogTail::new(&path, 10);
        assert_eq!(tail.poll(100).unwrap(), Vec::new()); // file absent: not an error

        append(&path, b"0 0 5\n1 0 7");
        assert_eq!(tail.poll(100).unwrap(), vec![rec(1, 0, 0, 5)]);
        let pos = tail.position();
        assert_eq!(pos, TailPosition { offset: 6, line_no: 1 });

        // The writer finishes the line: now it is consumed, exactly once.
        append(&path, b"\n");
        assert_eq!(tail.poll(100).unwrap(), vec![rec(2, 1, 0, 7)]);
        assert_eq!(tail.poll(100).unwrap(), Vec::new());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_from_position_matches_uninterrupted_tail() {
        let path = tmp("resume.log");
        std::fs::remove_file(&path).ok();
        append(&path, b"0 0 1\n1 0 2\n2 1 3\n3 1 4\n");

        let mut uninterrupted = LogTail::new(&path, 10);
        let all = uninterrupted.poll(100).unwrap();

        let mut first = LogTail::new(&path, 10);
        let head = first.poll(2).unwrap();
        let mut second = LogTail::resume(&path, 10, first.position());
        let rest = second.poll(100).unwrap();
        let mut replayed = head;
        replayed.extend(rest);
        assert_eq!(replayed, all);
        assert_eq!(second.position(), uninterrupted.position());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_lines_quarantine_with_typed_defects() {
        let path = tmp("corrupt.log");
        std::fs::remove_file(&path).ok();
        append(
            &path,
            b"0 0 1\ngarbage\n9 0 2\n1 0 NaN\n1 0 2.5\n# comment\n\n2 0 3\n",
        );
        let mut tail = LogTail::new(&path, 5);
        let items = tail.poll(100).unwrap();
        let kinds: Vec<_> = items
            .iter()
            .map(|i| match i {
                TailItem::Record(_) => None,
                TailItem::Defect { kind, .. } => Some(*kind),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                None,
                Some(DefectKind::MalformedLine),
                Some(DefectKind::DanglingNode),
                Some(DefectKind::NonFiniteTimestamp),
                Some(DefectKind::TimestampOutOfRange),
                None,
            ]
        );
        assert_eq!(tail.position().line_no, 8); // comments/blanks still count as lines
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn poll_respects_max_and_continues() {
        let path = tmp("batch.log");
        std::fs::remove_file(&path).ok();
        append(&path, b"0 0 1\n1 0 2\n2 0 3\n");
        let mut tail = LogTail::new(&path, 10);
        assert_eq!(tail.poll(2).unwrap().len(), 2);
        assert_eq!(tail.poll(2).unwrap(), vec![rec(3, 2, 0, 3)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn telemetry_counts_records_and_defects_per_poll() {
        use inf2vec_obs::{MemorySink, SampleValue, Telemetry};
        use std::sync::Arc;

        let path = tmp("telemetry.log");
        std::fs::remove_file(&path).ok();
        append(&path, b"0 0 1\ngarbage\n1 0 2\n");
        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(Arc::clone(&sink) as Arc<dyn inf2vec_obs::Recorder>);
        let mut tail = LogTail::new(&path, 10).with_telemetry(telemetry.clone());
        assert_eq!(tail.poll(100).unwrap().len(), 3);

        let snap = telemetry.snapshot();
        let counter = |name: &str| match snap.get(name).map(|s| &s.value) {
            Some(SampleValue::Counter(v)) => *v,
            _ => 0,
        };
        assert_eq!(counter("inf2vec_ingest_tail_records_total"), 2);
        assert_eq!(counter("inf2vec_ingest_tail_defects_total"), 1);

        let events = sink.events();
        let batch = events.iter().find(|e| e.kind() == "tail.batch").unwrap();
        assert_eq!(batch.get("records").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(batch.get("defects").and_then(|v| v.as_u64()), Some(1));

        // An empty poll is silent — no event, no counter bumps.
        assert!(tail.poll(100).unwrap().is_empty());
        assert_eq!(
            sink.events()
                .iter()
                .filter(|e| e.kind() == "tail.batch")
                .count(),
            1
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shrunk_file_is_a_typed_truncation_not_silence() {
        // Torn-rotation fixture: an external actor truncates the log below
        // the committed offset without leaving a sentinel. The old tail
        // would seek past EOF and return empty forever; it must error.
        let path = tmp("shrunk.log");
        std::fs::remove_file(&path).ok();
        append(&path, b"0 0 1\n1 0 2\n2 0 3\n");
        let mut tail = LogTail::new(&path, 10);
        assert_eq!(tail.poll(100).unwrap().len(), 3);
        let committed = tail.position().offset;
        std::fs::write(&path, b"0 0 1\n").unwrap(); // shrink below offset
        let err = tail.poll(100).unwrap_err();
        match err {
            IngestError::LogTruncated {
                committed: c,
                len,
            } => {
                assert_eq!(c, committed);
                assert_eq!(len, 6);
            }
            other => panic!("expected LogTruncated, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_rewrites_prefix_and_resume_continues_identically() {
        let path = tmp("compact.log");
        let archive = tmp("compact.archive");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&archive).ok();
        append(&path, b"0 0 1\n1 0 2\n2 0 3\n");
        let mut tail = LogTail::new(&path, 10);
        assert_eq!(tail.poll(2).unwrap().len(), 2);
        let pos = tail.position();

        let stats = compact_to(&path, pos, Some(&archive)).unwrap();
        assert_eq!(stats.dropped_bytes, pos.offset);
        assert_eq!(stats.base, pos.offset);
        assert_eq!(sentinel_base(&path).unwrap(), Some((pos.offset, pos.line_no)));
        // Archive holds exactly the rotated payload bytes.
        assert_eq!(std::fs::read(&archive).unwrap(), b"0 0 1\n1 0 2\n");

        // The same tail keeps polling across the rotation...
        assert_eq!(tail.poll(100).unwrap(), vec![rec(3, 2, 0, 3)]);
        // ...and a journal-resumed tail lands on the same stream.
        append(&path, b"3 0 4\n");
        let mut resumed = LogTail::resume(&path, 10, tail.position());
        assert_eq!(resumed.poll(100).unwrap(), vec![rec(4, 3, 0, 4)]);

        // Compacting again at or below the base is a no-op.
        let again = compact_to(&path, pos, None).unwrap();
        assert_eq!(again.dropped_bytes, 0);
        assert_eq!(again.base, pos.offset);

        // A fresh tail at offset 0 cannot be served: the prefix is gone.
        let mut fresh = LogTail::new(&path, 10);
        match fresh.poll(100).unwrap_err() {
            IngestError::LogRotated { committed: 0, base } => {
                assert_eq!(base, pos.offset)
            }
            other => panic!("expected LogRotated, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&archive).ok();
    }

    #[test]
    fn repeated_compaction_composes_logical_offsets() {
        let path = tmp("recompact.log");
        std::fs::remove_file(&path).ok();
        append(&path, b"0 0 1\n1 0 2\n");
        let mut tail = LogTail::new(&path, 10);
        assert_eq!(tail.poll(1).unwrap().len(), 1);
        compact_to(&path, tail.position(), None).unwrap();
        append(&path, b"2 0 3\n3 0 4\n");
        assert_eq!(tail.poll(2).unwrap().len(), 2);
        compact_to(&path, tail.position(), None).unwrap();
        assert_eq!(
            sentinel_base(&path).unwrap(),
            Some((tail.position().offset, tail.position().line_no))
        );
        append(&path, b"4 0 5\n");
        assert_eq!(
            tail.poll(100).unwrap(),
            vec![rec(4, 3, 0, 4), rec(5, 4, 0, 5)]
        );
        assert_eq!(tail.position().offset, 30, "logical offsets keep counting");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sentinel_on_missing_file_is_none() {
        let path = tmp("no-such.log");
        std::fs::remove_file(&path).ok();
        assert_eq!(sentinel_base(&path).unwrap(), None);
    }

    #[test]
    fn bom_is_data_when_resuming_mid_file() {
        let path = tmp("bom.log");
        std::fs::remove_file(&path).ok();
        append(&path, b"\xef\xbb\xbf0 0 1\n");
        let mut tail = LogTail::new(&path, 10);
        assert_eq!(tail.poll(100).unwrap(), vec![rec(1, 0, 0, 1)]);
        // A resumed tail must not strip BOM-looking bytes mid-file.
        append(&path, b"\xef\xbb\xbf1 0 2\n");
        let mut resumed = LogTail::resume(&path, 10, tail.position());
        let items = resumed.poll(100).unwrap();
        assert!(
            matches!(
                &items[..],
                [TailItem::Defect {
                    kind: DefectKind::MalformedLine,
                    ..
                }]
            ),
            "{items:?}"
        );
        std::fs::remove_file(&path).ok();
    }
}
