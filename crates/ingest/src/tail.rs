//! Resumable tailing of an append-only `user item time` action log.
//!
//! A [`LogTail`] polls the log file for *complete* lines past a committed
//! byte offset. A trailing line without its `\n` terminator is presumed to
//! be mid-append and is left unconsumed — the next poll re-reads it — so a
//! record is either seen whole exactly once or not yet at all. The
//! committed [`TailPosition`] (byte offset + line number) is plain data a
//! caller can persist in a progress journal and hand back to
//! [`LogTail::resume`] after a crash: replaying from a journaled position
//! yields exactly the records an uninterrupted tail would have produced.
//!
//! Every complete line classifies into exactly one [`TailItem`]:
//! a parsed [`ActionRecord`], a typed [`TailItem::Defect`] (quarantine),
//! or — for blanks and `#` comments — nothing at all. Corrupted tails
//! (torn writes, flipped bytes) therefore surface as `MalformedLine` /
//! `DanglingNode` / timestamp defects instead of derailing the stream.

use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use inf2vec_obs::{Event, Telemetry};
use inf2vec_util::error::DefectKind;

use crate::lines::LineStream;
use crate::parse::{parse_id, parse_time, TimeParse};
use crate::policy::IdMode;
use crate::report::SAMPLE_MAX_CHARS;

/// One parsed action: `user` activated on `item` at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActionRecord {
    /// 1-based physical line number in the log.
    pub line_no: u64,
    /// Dense user id, verified `< num_users`.
    pub user: u32,
    /// Item id (its own namespace; any `u32`).
    pub item: u32,
    /// Activation timestamp.
    pub time: u64,
}

/// What one complete log line classified as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailItem {
    /// A well-formed action record.
    Record(ActionRecord),
    /// A quarantined line: the defect kind plus a truncated sample.
    Defect {
        /// 1-based physical line number in the log.
        line_no: u64,
        /// Why the line was quarantined.
        kind: DefectKind,
        /// The offending line, truncated for reporting.
        sample: String,
    },
}

/// A committed tail position: resume here and the stream continues as if
/// never interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TailPosition {
    /// Byte offset of the first unconsumed byte.
    pub offset: u64,
    /// Complete lines consumed so far.
    pub line_no: u64,
}

/// Tails an append-only action log from a resumable position.
#[derive(Debug)]
pub struct LogTail {
    path: PathBuf,
    num_users: u32,
    pos: TailPosition,
    telemetry: Telemetry,
}

impl LogTail {
    /// Tails `path` from the beginning. `num_users` bounds valid user ids
    /// (a record naming a user outside the propagation network is a
    /// [`DefectKind::DanglingNode`] defect).
    pub fn new(path: impl Into<PathBuf>, num_users: u32) -> Self {
        Self::resume(path, num_users, TailPosition::default())
    }

    /// Resumes tailing from a previously committed position.
    pub fn resume(path: impl Into<PathBuf>, num_users: u32, pos: TailPosition) -> Self {
        Self {
            path: path.into(),
            num_users,
            pos,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: each non-empty poll then counts its
    /// lines/records/defects and emits one `tail.batch` event. Disabled
    /// telemetry (the default) costs one branch per poll.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The position the next poll starts from (persist this to resume).
    pub fn position(&self) -> TailPosition {
        self.pos
    }

    /// The log file being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads up to `max` newly completed lines, classifying each. Returns
    /// an empty vec when nothing new is terminated yet (including when the
    /// log file does not exist yet). The committed position only advances
    /// past lines whose terminator has been seen.
    pub fn poll(&mut self, max: usize) -> io::Result<Vec<TailItem>> {
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        file.seek(SeekFrom::Start(self.pos.offset))?;
        let reader = BufReader::new(file.take(u64::MAX));
        let mut stream = LineStream::with_bom_strip(reader, self.pos.offset == 0);
        let mut out = Vec::new();
        let mut committed = 0u64;
        while out.len() < max {
            let Some((_, line)) = stream.next_line()? else {
                break;
            };
            let line = line.to_string();
            if !stream.last_terminated() {
                // Partial tail line: the writer hasn't finished it. Leave
                // it for the next poll.
                break;
            }
            // Only lines whose terminator was seen move the offset.
            committed = stream.bytes();
            self.pos.line_no += 1;
            if let Some(item) = self.classify(self.pos.line_no, &line) {
                out.push(item);
            }
        }
        self.pos.offset += committed;
        if !out.is_empty() {
            let records = out
                .iter()
                .filter(|i| matches!(i, TailItem::Record(_)))
                .count() as u64;
            let defects = out.len() as u64 - records;
            self.telemetry
                .count("inf2vec_ingest_tail_records_total", records);
            self.telemetry
                .count("inf2vec_ingest_tail_defects_total", defects);
            self.telemetry.emit_with(|| {
                Event::new("tail.batch")
                    .u64("records", records)
                    .u64("defects", defects)
                    .u64("offset", self.pos.offset)
                    .u64("line", self.pos.line_no)
            });
        }
        Ok(out)
    }

    /// Classifies one complete line. Blank lines and comments yield
    /// nothing; everything else is exactly one record or one defect.
    fn classify(&self, line_no: u64, line: &str) -> Option<TailItem> {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return None;
        }
        let defect = |kind| TailItem::Defect {
            line_no,
            kind,
            sample: sample_of(trimmed),
        };

        let mut parts = trimmed.split_whitespace();
        let fields = (parts.next(), parts.next(), parts.next(), parts.next());
        let (u_tok, i_tok, t_tok) = match fields {
            (Some(u), Some(i), Some(t), None) => (u, i, t),
            _ => return Some(defect(DefectKind::MalformedLine)),
        };
        let user = match parse_id(u_tok, IdMode::Preserve, None) {
            Ok(u) if u < self.num_users => u,
            Ok(_) => return Some(defect(DefectKind::DanglingNode)),
            Err(kind) => return Some(defect(kind)),
        };
        let item = match parse_id(i_tok, IdMode::Preserve, None) {
            Ok(i) => i,
            Err(kind) => return Some(defect(kind)),
        };
        let time = match parse_time(t_tok) {
            TimeParse::Ok(t) => t,
            // The tail quarantines rather than repairs: an online record
            // with a mangled timestamp is evidence of a torn write, not a
            // float export quirk.
            TimeParse::Repairable(_, kind) | TimeParse::Bad(kind) => {
                return Some(defect(kind));
            }
        };
        Some(TailItem::Record(ActionRecord {
            line_no,
            user,
            item,
            time,
        }))
    }
}

fn sample_of(line: &str) -> String {
    if line.chars().count() <= SAMPLE_MAX_CHARS {
        line.to_string()
    } else {
        let cut: String = line.chars().take(SAMPLE_MAX_CHARS).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("inf2vec_tail_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn append(path: &Path, bytes: &[u8]) {
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap();
        f.write_all(bytes).unwrap();
    }

    fn rec(line_no: u64, user: u32, item: u32, time: u64) -> TailItem {
        TailItem::Record(ActionRecord {
            line_no,
            user,
            item,
            time,
        })
    }

    #[test]
    fn partial_tail_line_waits_for_terminator() {
        let path = tmp("partial.log");
        std::fs::remove_file(&path).ok();
        let mut tail = LogTail::new(&path, 10);
        assert_eq!(tail.poll(100).unwrap(), Vec::new()); // file absent: not an error

        append(&path, b"0 0 5\n1 0 7");
        assert_eq!(tail.poll(100).unwrap(), vec![rec(1, 0, 0, 5)]);
        let pos = tail.position();
        assert_eq!(pos, TailPosition { offset: 6, line_no: 1 });

        // The writer finishes the line: now it is consumed, exactly once.
        append(&path, b"\n");
        assert_eq!(tail.poll(100).unwrap(), vec![rec(2, 1, 0, 7)]);
        assert_eq!(tail.poll(100).unwrap(), Vec::new());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_from_position_matches_uninterrupted_tail() {
        let path = tmp("resume.log");
        std::fs::remove_file(&path).ok();
        append(&path, b"0 0 1\n1 0 2\n2 1 3\n3 1 4\n");

        let mut uninterrupted = LogTail::new(&path, 10);
        let all = uninterrupted.poll(100).unwrap();

        let mut first = LogTail::new(&path, 10);
        let head = first.poll(2).unwrap();
        let mut second = LogTail::resume(&path, 10, first.position());
        let rest = second.poll(100).unwrap();
        let mut replayed = head;
        replayed.extend(rest);
        assert_eq!(replayed, all);
        assert_eq!(second.position(), uninterrupted.position());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_lines_quarantine_with_typed_defects() {
        let path = tmp("corrupt.log");
        std::fs::remove_file(&path).ok();
        append(
            &path,
            b"0 0 1\ngarbage\n9 0 2\n1 0 NaN\n1 0 2.5\n# comment\n\n2 0 3\n",
        );
        let mut tail = LogTail::new(&path, 5);
        let items = tail.poll(100).unwrap();
        let kinds: Vec<_> = items
            .iter()
            .map(|i| match i {
                TailItem::Record(_) => None,
                TailItem::Defect { kind, .. } => Some(*kind),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                None,
                Some(DefectKind::MalformedLine),
                Some(DefectKind::DanglingNode),
                Some(DefectKind::NonFiniteTimestamp),
                Some(DefectKind::TimestampOutOfRange),
                None,
            ]
        );
        assert_eq!(tail.position().line_no, 8); // comments/blanks still count as lines
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn poll_respects_max_and_continues() {
        let path = tmp("batch.log");
        std::fs::remove_file(&path).ok();
        append(&path, b"0 0 1\n1 0 2\n2 0 3\n");
        let mut tail = LogTail::new(&path, 10);
        assert_eq!(tail.poll(2).unwrap().len(), 2);
        assert_eq!(tail.poll(2).unwrap(), vec![rec(3, 2, 0, 3)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn telemetry_counts_records_and_defects_per_poll() {
        use inf2vec_obs::{MemorySink, SampleValue, Telemetry};
        use std::sync::Arc;

        let path = tmp("telemetry.log");
        std::fs::remove_file(&path).ok();
        append(&path, b"0 0 1\ngarbage\n1 0 2\n");
        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(Arc::clone(&sink) as Arc<dyn inf2vec_obs::Recorder>);
        let mut tail = LogTail::new(&path, 10).with_telemetry(telemetry.clone());
        assert_eq!(tail.poll(100).unwrap().len(), 3);

        let snap = telemetry.snapshot();
        let counter = |name: &str| match snap.get(name).map(|s| &s.value) {
            Some(SampleValue::Counter(v)) => *v,
            _ => 0,
        };
        assert_eq!(counter("inf2vec_ingest_tail_records_total"), 2);
        assert_eq!(counter("inf2vec_ingest_tail_defects_total"), 1);

        let events = sink.events();
        let batch = events.iter().find(|e| e.kind() == "tail.batch").unwrap();
        assert_eq!(batch.get("records").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(batch.get("defects").and_then(|v| v.as_u64()), Some(1));

        // An empty poll is silent — no event, no counter bumps.
        assert!(tail.poll(100).unwrap().is_empty());
        assert_eq!(
            sink.events()
                .iter()
                .filter(|e| e.kind() == "tail.batch")
                .count(),
            1
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bom_is_data_when_resuming_mid_file() {
        let path = tmp("bom.log");
        std::fs::remove_file(&path).ok();
        append(&path, b"\xef\xbb\xbf0 0 1\n");
        let mut tail = LogTail::new(&path, 10);
        assert_eq!(tail.poll(100).unwrap(), vec![rec(1, 0, 0, 1)]);
        // A resumed tail must not strip BOM-looking bytes mid-file.
        append(&path, b"\xef\xbb\xbf1 0 2\n");
        let mut resumed = LogTail::resume(&path, 10, tail.position());
        let items = resumed.poll(100).unwrap();
        assert!(
            matches!(
                &items[..],
                [TailItem::Defect {
                    kind: DefectKind::MalformedLine,
                    ..
                }]
            ),
            "{items:?}"
        );
        std::fs::remove_file(&path).ok();
    }
}
