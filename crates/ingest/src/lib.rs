#![warn(missing_docs)]

//! `inf2vec-ingest`: robust streaming ingestion for real crawled datasets.
//!
//! The paper trains on crawled action logs (Digg votes, Twitter retweets,
//! Flickr favorites), and real SNAP-style dumps are dirty: junk lines,
//! CRLF/BOM artifacts, non-contiguous ids, re-votes, dangling user ids,
//! wild timestamps. The legacy parsers (`inf2vec_graph::io::read_edge_list`,
//! `inf2vec_diffusion::dataset::read_log`) are strict fail-fast readers
//! that abort on the first bad byte and never cross-check the log against
//! the graph. This crate replaces the loading path with *observable,
//! policy-driven degradation*:
//!
//! - [`ErrorPolicy`] — `Strict` (legacy behaviour, typed error), `Skip`
//!   (quarantine within a `max_errors`/`max_error_ratio` budget), and
//!   `Repair` (best-effort fixes: clamp timestamps, drop what can't be
//!   fixed).
//! - A defect taxonomy ([`DefectKind`]) covering malformed lines, dangling
//!   node ids, duplicate edges/activations, self-loops, non-finite and
//!   out-of-range timestamps, and id overflow.
//! - [`IngestReport`] — per-defect counts, sampled offending lines with
//!   line numbers, and bytes/records throughput, serializable to JSON.
//! - [`IdMap`] — sparse external ids (SNAP crawls are non-contiguous)
//!   interned into the dense `u32` space in first-seen order.
//! - Bounded-memory episode assembly: actions fold straight into a
//!   per-item earliest-activation table instead of materializing the raw
//!   action vector.
//! - [`ValidatedDataset`] — the [`Ingestor`] entry point that
//!   cross-validates log against graph and passes the final bundle
//!   through `Dataset::try_new`.
//! - [`LogTail`] — resumable tailing of an append-only action log for the
//!   continuous-learning pipeline: complete-lines-only consumption and a
//!   persistable [`TailPosition`] so a crash replays exactly once.
//!
//! Telemetry: when [`IngestConfig::telemetry`] is enabled, ingestion emits
//! `ingest_started` / `record_quarantined` / `ingest_finished` events and
//! maintains `inf2vec_ingest_records_total{stream}`,
//! `inf2vec_ingest_bytes_total{stream}`,
//! `inf2vec_ingest_quarantined_total{stream}`,
//! `inf2vec_ingest_defects_total{kind}`, and the
//! `inf2vec_ingest_seconds{stream}` histogram.
//!
//! ```
//! use inf2vec_ingest::{ErrorPolicy, IngestConfig, Ingestor};
//!
//! let edges = b"# nodes: 3\n0 1\njunk line\n1 2\n";
//! let actions = b"0 0 10\n1 0 NaN\n2 0 30\n";
//! let v = Ingestor::new(IngestConfig {
//!     policy: ErrorPolicy::skip(100),
//!     ..IngestConfig::default()
//! })
//! .ingest(edges.as_slice(), actions.as_slice(), "demo")
//! .unwrap();
//! assert_eq!(v.dataset.graph.edge_count(), 2);
//! assert_eq!(v.total_defects(), 2); // the junk line + the NaN timestamp
//! ```

mod actions;
mod archive;
mod collect;
mod edges;
mod idmap;
mod lines;
mod parse;
mod policy;
mod report;
mod tail;
mod validated;

pub use archive::{
    archive_dir, legacy_archive_path, ArchiveStart, ArchiveStore, ExpiryStats, RestoreStats,
    RetentionPolicy, SegmentMeta, VerifyReport, ARCHIVE_SCHEMA_VERSION,
};
pub use idmap::IdMap;
pub use policy::{ErrorPolicy, IdMode, IngestConfig, RATIO_MIN_RECORDS};
pub use report::{DefectSample, Disposition, IngestReport, SAMPLE_MAX_CHARS};
pub use tail::{
    compact_to, compact_to_with, sentinel_base, ActionRecord, CompactionStats, LogTail, TailItem,
    TailPosition,
};
pub use validated::{Ingestor, ValidatedDataset};

// The taxonomy and error type live in the workspace error hierarchy
// (`inf2vec-util`); re-export them so ingest callers need one import.
pub use inf2vec_util::error::{DefectKind, IngestError};
