//! The quarantine report: per-defect counts, sampled offending lines, and
//! throughput, for one ingested stream.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use inf2vec_util::error::DefectKind;

/// What happened to a defective record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Collapsed under every policy (duplicate edges/activations,
    /// self-loops) — the record contributed what it could.
    Normalized,
    /// Fixed under `Repair` (clamped timestamp) — the record survived.
    Repaired,
    /// Dropped under `Skip`/`Repair` — the record is gone.
    Quarantined,
}

/// One sampled offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefectSample {
    /// Defect class.
    pub kind: DefectKind,
    /// 1-based line number in the source stream.
    pub line: u64,
    /// The offending content, truncated to [`SAMPLE_MAX_CHARS`].
    pub content: String,
    /// What happened to the record.
    pub disposition: Disposition,
}

/// Longest stored/emitted sample content, in chars.
pub const SAMPLE_MAX_CHARS: usize = 160;

/// Per-stream ingestion accounting: every record is either ok,
/// normalized, repaired, or quarantined, and every defect lands in a
/// per-kind counter with the first few offenders sampled verbatim.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Which stream this report covers (`"edges"` or `"actions"`).
    pub stream: &'static str,
    /// Policy name the stream was ingested under.
    pub policy: &'static str,
    /// Physical lines seen (comments and blanks included).
    pub lines: u64,
    /// Candidate records seen (non-comment, non-blank lines).
    pub records: u64,
    /// Records ingested without any defect.
    pub records_ok: u64,
    /// Records dropped.
    pub quarantined: u64,
    /// Records fixed and kept.
    pub repaired: u64,
    /// Records collapsed by normalization (duplicates, self-loops).
    pub normalized: u64,
    /// Bytes consumed from the stream.
    pub bytes: u64,
    /// Wall-clock ingestion time.
    pub elapsed_secs: f64,
    counts: BTreeMap<DefectKind, u64>,
    samples: Vec<DefectSample>,
    max_samples_per_defect: usize,
}

impl IngestReport {
    /// An empty report for `stream` under `policy`.
    pub fn new(stream: &'static str, policy: &'static str, max_samples_per_defect: usize) -> Self {
        Self {
            stream,
            policy,
            lines: 0,
            records: 0,
            records_ok: 0,
            quarantined: 0,
            repaired: 0,
            normalized: 0,
            bytes: 0,
            elapsed_secs: 0.0,
            counts: BTreeMap::new(),
            samples: Vec::new(),
            max_samples_per_defect,
        }
    }

    /// Records one defect; returns true when the offending line was kept
    /// as a sample (callers mirror exactly those into telemetry events so
    /// event volume stays bounded too).
    pub fn note(
        &mut self,
        kind: DefectKind,
        line: u64,
        content: &str,
        disposition: Disposition,
    ) -> bool {
        *self.counts.entry(kind).or_insert(0) += 1;
        match disposition {
            Disposition::Normalized => self.normalized += 1,
            Disposition::Repaired => self.repaired += 1,
            Disposition::Quarantined => self.quarantined += 1,
        }
        let sampled = self.counts[&kind] <= self.max_samples_per_defect as u64;
        if sampled {
            self.samples.push(DefectSample {
                kind,
                line,
                content: truncate_sample(content),
                disposition,
            });
        }
        sampled
    }

    /// Total occurrences of `kind`.
    pub fn count(&self, kind: DefectKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total defects of any kind.
    pub fn total_defects(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Per-kind counts in taxonomy order (zero counts omitted).
    pub fn counts(&self) -> impl Iterator<Item = (DefectKind, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// The sampled offending lines, in arrival order.
    pub fn samples(&self) -> &[DefectSample] {
        &self.samples
    }

    /// Records per second (0 when the clock saw nothing).
    pub fn records_per_sec(&self) -> f64 {
        safe_rate(self.records, self.elapsed_secs)
    }

    /// Bytes per second (0 when the clock saw nothing).
    pub fn bytes_per_sec(&self) -> f64 {
        safe_rate(self.bytes, self.elapsed_secs)
    }

    /// One JSON object (no trailing newline): scalar totals, a `defects`
    /// map keyed by kind name, and a `samples` array.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.samples.len() * 64);
        s.push('{');
        push_str_field(&mut s, "stream", self.stream, true);
        push_str_field(&mut s, "policy", self.policy, false);
        push_u64_field(&mut s, "lines", self.lines);
        push_u64_field(&mut s, "records", self.records);
        push_u64_field(&mut s, "records_ok", self.records_ok);
        push_u64_field(&mut s, "quarantined", self.quarantined);
        push_u64_field(&mut s, "repaired", self.repaired);
        push_u64_field(&mut s, "normalized", self.normalized);
        push_u64_field(&mut s, "bytes", self.bytes);
        let _ = write!(s, ",\"elapsed_secs\":{:?}", self.elapsed_secs);
        let _ = write!(s, ",\"records_per_sec\":{:?}", self.records_per_sec());
        let _ = write!(s, ",\"bytes_per_sec\":{:?}", self.bytes_per_sec());
        s.push_str(",\"defects\":{");
        for (i, (kind, n)) in self.counts().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_string(&mut s, kind.name());
            let _ = write!(s, ":{n}");
        }
        s.push_str("},\"samples\":[");
        for (i, sample) in self.samples.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_str_field(&mut s, "kind", sample.kind.name(), true);
            push_u64_field(&mut s, "line", sample.line);
            let disposition = match sample.disposition {
                Disposition::Normalized => "normalized",
                Disposition::Repaired => "repaired",
                Disposition::Quarantined => "quarantined",
            };
            push_str_field(&mut s, "disposition", disposition, false);
            push_str_field(&mut s, "content", &sample.content, false);
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// A short human-readable summary, one line per populated defect kind.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "[ingest:{}] policy={} records={} ok={} quarantined={} repaired={} normalized={} \
             ({} bytes, {:.1} records/s)",
            self.stream,
            self.policy,
            self.records,
            self.records_ok,
            self.quarantined,
            self.repaired,
            self.normalized,
            self.bytes,
            self.records_per_sec(),
        );
        for (kind, n) in self.counts() {
            let _ = write!(s, "\n  {kind}: {n}");
        }
        s
    }
}

fn safe_rate(n: u64, secs: f64) -> f64 {
    if secs > 0.0 {
        n as f64 / secs
    } else {
        0.0
    }
}

fn truncate_sample(content: &str) -> String {
    if content.chars().count() <= SAMPLE_MAX_CHARS {
        content.to_string()
    } else {
        let mut s: String = content.chars().take(SAMPLE_MAX_CHARS).collect();
        s.push('…');
        s
    }
}

// The JSON string escaping lives in `inf2vec-util` so every hand-rolled
// JSON writer in the workspace (this report, the serve chaos report)
// shares one implementation; re-exported for the sibling modules.
pub(crate) use inf2vec_util::json::push_json_string;

fn push_str_field(out: &mut String, key: &str, v: &str, first: bool) {
    if !first {
        out.push(',');
    }
    push_json_string(out, key);
    out.push(':');
    push_json_string(out, v);
}

fn push_u64_field(out: &mut String, key: &str, v: u64) {
    out.push(',');
    push_json_string(out, key);
    let _ = write!(out, ":{v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_samples_are_bounded() {
        let mut r = IngestReport::new("edges", "skip", 2);
        for line in 0..5 {
            r.note(
                DefectKind::MalformedLine,
                line + 1,
                "junk",
                Disposition::Quarantined,
            );
        }
        r.note(DefectKind::SelfLoop, 9, "3 3", Disposition::Normalized);
        assert_eq!(r.count(DefectKind::MalformedLine), 5);
        assert_eq!(r.count(DefectKind::SelfLoop), 1);
        assert_eq!(r.count(DefectKind::DanglingNode), 0);
        assert_eq!(r.total_defects(), 6);
        assert_eq!(r.quarantined, 5);
        assert_eq!(r.normalized, 1);
        // Only 2 malformed samples kept + 1 self-loop.
        assert_eq!(r.samples().len(), 3);
    }

    #[test]
    fn json_is_parseable_by_the_obs_event_parser() {
        // The report object is flat-plus-two-nested; reuse the obs parser
        // on a doctored copy to validate escaping of the scalar prefix.
        let mut r = IngestReport::new("actions", "repair", 4);
        r.bytes = 100;
        r.records = 10;
        r.records_ok = 9;
        r.elapsed_secs = 0.5;
        r.note(
            DefectKind::NonFiniteTimestamp,
            3,
            "1 2 NaN\t\"quoted\"",
            Disposition::Quarantined,
        );
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"non_finite_timestamp\":1"));
        assert!(json.contains("\"records_per_sec\":20.0"));
        assert!(json.contains("\\\"quoted\\\""));
    }

    #[test]
    fn long_samples_are_truncated() {
        let mut r = IngestReport::new("edges", "skip", 1);
        let long = "x".repeat(500);
        r.note(DefectKind::MalformedLine, 1, &long, Disposition::Quarantined);
        assert!(r.samples()[0].content.chars().count() <= SAMPLE_MAX_CHARS + 1);
    }

    #[test]
    fn summary_mentions_each_kind() {
        let mut r = IngestReport::new("edges", "skip", 1);
        r.note(DefectKind::DuplicateEdge, 2, "0 1", Disposition::Normalized);
        let s = r.summary();
        assert!(s.contains("duplicate_edge: 1"), "{s}");
    }
}
