//! Sparse external-id interning.
//!
//! SNAP-style crawls identify users and items by arbitrary, non-contiguous
//! integers (Digg vote dumps jump from id 17 to id 4 000 019). The rest of
//! the workspace wants dense `u32` indices into CSR arrays and embedding
//! matrices, so ingestion interns every external id it meets, in first-seen
//! order, and keeps the reverse table for reporting and export.

use inf2vec_util::hash::{fx_hashmap, FxHashMap};

/// A bijection between sparse external `u64` ids and dense `u32` indices.
#[derive(Debug, Clone)]
pub struct IdMap {
    fwd: FxHashMap<u64, u32>,
    rev: Vec<u64>,
    limit: u32,
}

impl Default for IdMap {
    fn default() -> Self {
        Self::new()
    }
}

impl IdMap {
    /// An empty map over the full `u32` dense space.
    pub fn new() -> Self {
        Self::with_limit(u32::MAX)
    }

    /// An empty map holding at most `limit` distinct ids — smaller limits
    /// exist so tests can exercise the overflow path without 2³² inserts.
    pub fn with_limit(limit: u32) -> Self {
        Self {
            fwd: fx_hashmap(),
            rev: Vec::new(),
            limit,
        }
    }

    /// Dense index for `ext`, interning it if new. `None` when the map is
    /// full — the caller reports [`IdOverflow`].
    ///
    /// [`IdOverflow`]: inf2vec_util::error::DefectKind::IdOverflow
    pub fn intern(&mut self, ext: u64) -> Option<u32> {
        if let Some(&dense) = self.fwd.get(&ext) {
            return Some(dense);
        }
        if self.rev.len() >= self.limit as usize {
            return None;
        }
        let dense = self.rev.len() as u32;
        self.fwd.insert(ext, dense);
        self.rev.push(ext);
        Some(dense)
    }

    /// Dense index for `ext` without interning.
    pub fn get(&self, ext: u64) -> Option<u32> {
        self.fwd.get(&ext).copied()
    }

    /// The external id behind a dense index.
    pub fn external(&self, dense: u32) -> Option<u64> {
        self.rev.get(dense as usize).copied()
    }

    /// Number of interned ids.
    pub fn len(&self) -> usize {
        self.rev.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.rev.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_in_first_seen_order() {
        let mut m = IdMap::new();
        assert_eq!(m.intern(4_000_019), Some(0));
        assert_eq!(m.intern(17), Some(1));
        assert_eq!(m.intern(4_000_019), Some(0));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(17), Some(1));
        assert_eq!(m.get(99), None);
        assert_eq!(m.external(0), Some(4_000_019));
        assert_eq!(m.external(2), None);
    }

    #[test]
    fn respects_limit() {
        let mut m = IdMap::with_limit(2);
        assert_eq!(m.intern(10), Some(0));
        assert_eq!(m.intern(20), Some(1));
        assert_eq!(m.intern(30), None);
        // Already-interned ids still resolve at the limit.
        assert_eq!(m.intern(10), Some(0));
        assert_eq!(m.len(), 2);
    }
}
