//! Policy enforcement: routes every defect into the report, the telemetry
//! stream, and — when the policy says so — a typed error.

use inf2vec_obs::{Event, Telemetry};
use inf2vec_util::error::{DefectKind, IngestError};

use crate::policy::{ErrorPolicy, IngestConfig, RATIO_MIN_RECORDS};
use crate::report::{Disposition, IngestReport};

/// Per-stream defect router. Owns the growing [`IngestReport`]; parsers
/// call [`normalized`]/[`fatal`]/[`repairable`] per defect and
/// [`finish`] once at EOF.
///
/// [`normalized`]: Collector::normalized
/// [`fatal`]: Collector::fatal
/// [`repairable`]: Collector::repairable
/// [`finish`]: Collector::finish
pub(crate) struct Collector<'a> {
    policy: ErrorPolicy,
    telemetry: &'a Telemetry,
    pub(crate) report: IngestReport,
    started: std::time::Instant,
}

impl<'a> Collector<'a> {
    /// Starts accounting for one stream; emits `ingest_started`.
    pub(crate) fn new(stream: &'static str, cfg: &'a IngestConfig) -> Self {
        let report = IngestReport::new(stream, cfg.policy.name(), cfg.max_samples_per_defect);
        if cfg.telemetry.enabled() {
            cfg.telemetry.emit(
                Event::new("ingest_started")
                    .str("stream", stream)
                    .str("policy", cfg.policy.name()),
            );
        }
        Self {
            policy: cfg.policy,
            telemetry: &cfg.telemetry,
            report,
            started: std::time::Instant::now(),
        }
    }

    /// A normalization defect (duplicate edge/activation, self-loop):
    /// counted under every policy, never fatal.
    pub(crate) fn normalized(&mut self, kind: DefectKind, line: u64, content: &str) {
        debug_assert!(!kind.is_fatal_in_strict());
        self.report.note(kind, line, content, Disposition::Normalized);
    }

    /// A fatal, unfixable defect. `Strict` aborts; `Skip` quarantines
    /// within budget; `Repair` quarantines unbounded. `Ok(())` means the
    /// record was dropped and ingestion continues.
    pub(crate) fn fatal(
        &mut self,
        kind: DefectKind,
        line: u64,
        content: &str,
    ) -> Result<(), IngestError> {
        debug_assert!(kind.is_fatal_in_strict());
        if self.policy == ErrorPolicy::Strict {
            return Err(IngestError::Defect {
                kind,
                line,
                content: content.to_string(),
            });
        }
        self.quarantine(kind, line, content)
    }

    /// A fixable defect (out-of-range timestamp). Returns `Ok(true)` when
    /// the caller should apply the fix and keep the record (`Repair`),
    /// `Ok(false)` when the record was quarantined instead (`Skip`).
    pub(crate) fn repairable(
        &mut self,
        kind: DefectKind,
        line: u64,
        content: &str,
    ) -> Result<bool, IngestError> {
        match self.policy {
            ErrorPolicy::Strict => Err(IngestError::Defect {
                kind,
                line,
                content: content.to_string(),
            }),
            ErrorPolicy::Skip { .. } => {
                self.quarantine(kind, line, content)?;
                Ok(false)
            }
            ErrorPolicy::Repair => {
                self.report.note(kind, line, content, Disposition::Repaired);
                Ok(true)
            }
        }
    }

    fn quarantine(&mut self, kind: DefectKind, line: u64, content: &str) -> Result<(), IngestError> {
        let sampled = self.report.note(kind, line, content, Disposition::Quarantined);
        if sampled && self.telemetry.enabled() {
            self.telemetry.emit(
                Event::new("record_quarantined")
                    .str("stream", self.report.stream)
                    .str("kind", kind.name())
                    .u64("line", line)
                    .str("content", self.report.samples().last().map_or("", |s| &s.content)),
            );
        }
        if let ErrorPolicy::Skip {
            max_errors,
            max_error_ratio,
        } = self.policy
        {
            let over_count = self.report.quarantined > max_errors;
            let over_ratio = self.report.records >= RATIO_MIN_RECORDS
                && self.report.quarantined as f64 > max_error_ratio * self.report.records as f64;
            if over_count || over_ratio {
                return Err(IngestError::BudgetExceeded {
                    quarantined: self.report.quarantined,
                    records: self.report.records,
                    max_errors,
                    max_error_ratio,
                });
            }
        }
        Ok(())
    }

    /// Seals the report with throughput figures, flushes stream-level
    /// counters/histograms, and emits `ingest_finished`.
    pub(crate) fn finish(mut self, lines: u64, bytes: u64) -> IngestReport {
        self.report.lines = lines;
        self.report.bytes = bytes;
        self.report.elapsed_secs = self.started.elapsed().as_secs_f64();
        let stream = self.report.stream;
        let t = self.telemetry;
        if t.enabled() {
            t.count_with("inf2vec_ingest_records_total", &[("stream", stream)], self.report.records);
            t.count_with("inf2vec_ingest_bytes_total", &[("stream", stream)], bytes);
            t.count_with(
                "inf2vec_ingest_quarantined_total",
                &[("stream", stream)],
                self.report.quarantined,
            );
            for (kind, n) in self.report.counts() {
                t.count_with("inf2vec_ingest_defects_total", &[("kind", kind.name())], n);
            }
            t.observe_with(
                "inf2vec_ingest_seconds",
                &[("stream", stream)],
                self.report.elapsed_secs,
            );
            t.emit(
                Event::new("ingest_finished")
                    .str("stream", stream)
                    .u64("records", self.report.records)
                    .u64("records_ok", self.report.records_ok)
                    .u64("quarantined", self.report.quarantined)
                    .u64("repaired", self.report.repaired)
                    .u64("normalized", self.report.normalized)
                    .u64("bytes", bytes)
                    .f64("secs", self.report.elapsed_secs),
            );
        }
        self.report
    }
}
