//! Segmented, bounded-disk archive for compacted log prefixes.
//!
//! [`compact_to`](crate::compact_to) rotates consumed bytes out of the
//! live action log; this module is where those bytes go when the caller
//! wants the full logical stream to stay replayable *without* letting a
//! single `<log>.archive` file grow until the disk fills. The store is a
//! directory beside the log:
//!
//! ```text
//! <log>.archive.d/
//!   manifest        # "#inf2vec-archive v1" + expired-prefix boundary
//!   seg-00000       # one checksummed header line + raw payload bytes
//!   seg-00001
//!   ...
//! ```
//!
//! Each segment holds a contiguous slice of the logical stream. Its
//! single header line carries the schema version, the segment's logical
//! base offset and base line, its payload line count, payload length and
//! payload FNV-1a, a seal timestamp, and an FNV of the header itself —
//! so any segment can be verified standalone and the set can be checked
//! for contiguity without trusting file names.
//!
//! The manifest records the **expired-prefix boundary**: the logical
//! `(seq, offset, line)` where the archive now begins. Everything below
//! it has been deliberately reclaimed by the retention policy and is no
//! longer reconstructable. Expiry is crash-safe at every seam:
//!
//! 1. the new manifest is written first (atomic temp+rename — a crash
//!    leaves the *old* manifest, and the doomed segments are still
//!    present and consistent);
//! 2. only then are the expired segment files unlinked — a crash
//!    in between leaves segments *below* the manifest boundary, which
//!    [`ArchiveStore::open`] unlinks idempotently on the next open.
//!
//! Sealing has the same discipline: the segment file is written
//! atomically (a crash leaves either no segment or a complete one), and
//! a retried seal is a no-op for bytes the store already holds, so the
//! seal → live-rewrite sequence in the pipeline can die between any two
//! steps without duplicating or losing a byte.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use inf2vec_util::faultinject::FailingWriter;
use inf2vec_util::{atomic_write, fnv1a};

use crate::tail::{read_header, render_sentinel, TailPosition};

/// Archive segment/manifest schema version (bump on incompatible change).
pub const ARCHIVE_SCHEMA_VERSION: u32 = 1;

const SEG_MAGIC: &str = "#inf2vec-seg v1";
const MANIFEST_MAGIC: &str = "#inf2vec-archive v1";
const MANIFEST_FILE: &str = "manifest";

/// `<log>.archive.d` beside the live log — the segmented archive
/// directory for `log_path`.
pub fn archive_dir(log_path: &Path) -> PathBuf {
    let mut os = log_path.as_os_str().to_os_string();
    os.push(".archive.d");
    PathBuf::from(os)
}

/// One sealed segment's parsed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Monotone segment sequence number (never reused after expiry).
    pub seq: u64,
    /// Logical stream offset of the segment's first payload byte.
    pub base_offset: u64,
    /// Logical lines preceding the segment's first payload line.
    pub base_line: u64,
    /// Payload lines the segment holds.
    pub lines: u64,
    /// Payload bytes the segment holds.
    pub len: u64,
    /// FNV-1a of the payload bytes.
    pub sum: u64,
    /// Clock reading (milliseconds) when the segment was sealed. Taken
    /// from the pipeline's clock, so it is process-relative: age-based
    /// retention treats segments sealed by an earlier process
    /// conservatively (they look young, never spuriously old).
    pub sealed_at_ms: u64,
    /// Physical bytes the header line occupies in the file.
    pub header_len: u64,
}

impl SegmentMeta {
    /// Logical offset one past the segment's last payload byte.
    pub fn end_offset(&self) -> u64 {
        self.base_offset + self.len
    }

    /// Logical line count after the segment.
    pub fn end_line(&self) -> u64 {
        self.base_line + self.lines
    }

    /// The segment's file name (`seg-NNNNN`).
    pub fn file_name(&self) -> String {
        segment_file_name(self.seq)
    }

    fn render_header(&self) -> String {
        let prefix = format!(
            "{SEG_MAGIC} seq {} base {} line {} count {} len {} sum {:016x} t {}",
            self.seq, self.base_offset, self.base_line, self.lines, self.len, self.sum,
            self.sealed_at_ms,
        );
        format!("{prefix} h {:016x}\n", fnv1a(prefix.as_bytes()))
    }

    fn parse_header(line: &str) -> Option<Self> {
        let rest = line.strip_prefix(SEG_MAGIC)?;
        let mut kv = rest.split_ascii_whitespace();
        let mut field = |key: &str| -> Option<&str> {
            (kv.next()? == key).then_some(()).and_then(|()| kv.next())
        };
        let seq: u64 = field("seq")?.parse().ok()?;
        let base_offset: u64 = field("base")?.parse().ok()?;
        let base_line: u64 = field("line")?.parse().ok()?;
        let lines: u64 = field("count")?.parse().ok()?;
        let len: u64 = field("len")?.parse().ok()?;
        let sum = u64::from_str_radix(field("sum")?, 16).ok()?;
        let sealed_at_ms: u64 = field("t")?.parse().ok()?;
        let declared = u64::from_str_radix(field("h")?, 16).ok()?;
        if kv.next().is_some() {
            return None;
        }
        let meta = Self {
            seq,
            base_offset,
            base_line,
            lines,
            len,
            sum,
            sealed_at_ms,
            header_len: line.len() as u64 + 1,
        };
        let prefix = format!(
            "{SEG_MAGIC} seq {} base {} line {} count {} len {} sum {:016x} t {}",
            seq, base_offset, base_line, lines, len, sum, sealed_at_ms,
        );
        (fnv1a(prefix.as_bytes()) == declared).then_some(meta)
    }
}

fn segment_file_name(seq: u64) -> String {
    format!("seg-{seq:05}")
}

/// The expired-prefix boundary: where the archive's retained history
/// begins. Everything below it was reclaimed by retention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArchiveStart {
    /// First live (non-expired) segment sequence number.
    pub seq: u64,
    /// Logical byte offset where retained history begins.
    pub offset: u64,
    /// Logical lines preceding the retained history.
    pub line: u64,
}

/// Byte / segment-count / age budgets driving [`ArchiveStore::expire`].
/// A zero (or `None`) budget means "unlimited" on that axis. Segments
/// inside the journal replay window are never expired regardless of
/// budgets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Expire oldest segments while retained payload exceeds this.
    pub max_bytes: u64,
    /// Expire oldest segments while more than this many are retained.
    pub max_segments: usize,
    /// Expire segments sealed longer ago than this (against the same
    /// clock that stamped them).
    pub max_age: Option<Duration>,
}

impl RetentionPolicy {
    /// True when no axis is bounded (expiry never fires).
    pub fn is_unbounded(&self) -> bool {
        self.max_bytes == 0 && self.max_segments == 0 && self.max_age.is_none()
    }
}

/// What one [`ArchiveStore::expire`] call reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpiryStats {
    /// Segments expired.
    pub segments: u64,
    /// Payload bytes reclaimed.
    pub bytes: u64,
}

/// What one [`ArchiveStore::restore_to`] call reconstructed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// The expired-prefix boundary the restored stream begins at.
    pub start_offset: u64,
    /// Logical lines preceding the restored stream.
    pub start_line: u64,
    /// Segments concatenated.
    pub segments: u64,
    /// Archived payload bytes restored.
    pub archived_bytes: u64,
    /// Live-log payload bytes appended after the archive.
    pub live_bytes: u64,
    /// Physical bytes of the sentinel line heading the restored file
    /// (0 when the stream starts at logical offset 0).
    pub sentinel_len: u64,
}

/// What [`ArchiveStore::verify`] proved about the on-disk store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Segments verified (header FNV, payload FNV, length, contiguity).
    pub segments: u64,
    /// Retained payload bytes.
    pub payload_bytes: u64,
    /// The expired-prefix boundary.
    pub start: ArchiveStart,
    /// Logical offset one past the newest archived byte.
    pub end_offset: u64,
    /// When a live log was given: its sentinel base equals
    /// [`end_offset`](Self::end_offset) — `archive ++ live` is gapless.
    pub contiguous_with_live: bool,
}

fn corrupt(detail: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("archive: {detail}"))
}

/// A segmented archive directory (see the module docs for the layout and
/// crash-safety discipline). All mutating operations leave the on-disk
/// store consistent under a crash at any byte.
#[derive(Debug)]
pub struct ArchiveStore {
    dir: PathBuf,
    start: ArchiveStart,
    /// Live segments, ascending and contiguous in both seq and offset.
    segments: Vec<SegmentMeta>,
}

impl ArchiveStore {
    /// Opens (creating if absent) the archive directory `dir`, repairing
    /// any interrupted expiry: segments below the manifest boundary are
    /// unlinked, stray atomic-write temp files are removed, and the
    /// retained chain is validated for contiguity. A missing manifest is
    /// initialized to the origin boundary.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let manifest = dir.join(MANIFEST_FILE);
        let start = match fs::read_to_string(&manifest) {
            Ok(text) => parse_manifest(&text)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let start = ArchiveStart::default();
                write_manifest(&dir, start, None)?;
                start
            }
            Err(e) => return Err(e),
        };
        let mut segments = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with('.') {
                // Atomic-write temp debris from a crashed seal/expiry.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            if !name.starts_with("seg-") {
                continue;
            }
            let meta = read_segment_header(&entry.path())?;
            if meta.seq < start.seq || meta.end_offset() <= start.offset {
                // Below the manifest boundary: an expiry committed its
                // manifest but died before the unlink. Finish it.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            segments.push(meta);
        }
        segments.sort_unstable_by_key(|m| m.seq);
        let store = Self {
            dir,
            start,
            segments,
        };
        store.check_chain()?;
        Ok(store)
    }

    /// [`ArchiveStore::open`] on [`archive_dir`]`(log_path)`, importing a
    /// legacy monolithic `<log>.archive` file (pre-segmentation layout)
    /// as segment 0 and removing it. The import is idempotent: a crash
    /// between the seal and the unlink re-detects the already-imported
    /// bytes and just finishes the unlink.
    pub fn open_for_log(log_path: &Path, now_ms: u64) -> io::Result<Self> {
        let mut store = Self::open(archive_dir(log_path))?;
        let legacy = legacy_archive_path(log_path);
        let bytes = match fs::read(&legacy) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e),
        };
        let already = store.start.offset == 0
            && store.end_offset() == bytes.len() as u64
            && !bytes.is_empty()
            && !store.segments.is_empty();
        if store.segments.is_empty() && store.start == ArchiveStart::default() {
            if !bytes.is_empty() {
                let lines = bytes.iter().filter(|&&b| b == b'\n').count() as u64;
                store.seal(&bytes, lines, now_ms, None)?;
            }
        } else if !already {
            return Err(corrupt(format!(
                "legacy archive {} coexists with a non-matching segmented store \
                 (segments hold [{}, {}), legacy holds [0, {}))",
                legacy.display(),
                store.start.offset,
                store.end_offset(),
                bytes.len()
            )));
        }
        fs::remove_file(&legacy)?;
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest file path (CI uploads this as an artifact).
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    /// The expired-prefix boundary.
    pub fn start(&self) -> ArchiveStart {
        self.start
    }

    /// The retained segments, oldest first.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.segments
    }

    /// Logical offset one past the newest archived byte (equals
    /// [`start`](Self::start)`.offset` when nothing is retained).
    pub fn end_offset(&self) -> u64 {
        self.segments
            .last()
            .map_or(self.start.offset, |m| m.end_offset())
    }

    /// Logical line count after the newest archived byte.
    pub fn end_line(&self) -> u64 {
        self.segments
            .last()
            .map_or(self.start.line, |m| m.end_line())
    }

    /// Retained payload bytes across all live segments.
    pub fn payload_bytes(&self) -> u64 {
        self.segments.iter().map(|m| m.len).sum()
    }

    fn next_seq(&self) -> u64 {
        self.segments
            .last()
            .map_or(self.start.seq, |m| m.seq + 1)
    }

    /// Seals `payload` (exactly `lines` complete lines) as the next
    /// segment. The write is atomic: a crash (or the injected
    /// `fail_after` disk fault) leaves no segment and the store
    /// unchanged. Returns the new segment's metadata.
    pub fn seal(
        &mut self,
        payload: &[u8],
        lines: u64,
        now_ms: u64,
        fail_after: Option<usize>,
    ) -> io::Result<SegmentMeta> {
        let meta = SegmentMeta {
            seq: self.next_seq(),
            base_offset: self.end_offset(),
            base_line: self.end_line(),
            lines,
            len: payload.len() as u64,
            sum: fnv1a(payload),
            sealed_at_ms: now_ms,
            header_len: 0,
        };
        let header = meta.render_header();
        let meta = SegmentMeta {
            header_len: header.len() as u64,
            ..meta
        };
        let path = self.dir.join(meta.file_name());
        atomic_write(&path, |f| {
            let mut w: Box<dyn Write> = match fail_after {
                Some(limit) => Box::new(FailingWriter::new(&mut *f, limit)),
                None => Box::new(&mut *f),
            };
            w.write_all(header.as_bytes())?;
            w.write_all(payload)
        })?;
        self.segments.push(meta);
        Ok(meta)
    }

    /// Seals every live-log payload byte in `[self.end_offset(), upto)`
    /// as one segment — the slice a compaction at `upto` is about to
    /// drop. Idempotent: bytes the store already holds are skipped, so a
    /// retried seal (after a crashed or failed live rewrite) never
    /// duplicates. Returns the payload bytes sealed (0 = nothing new).
    ///
    /// Fails typed when the live log's base has moved past the archive's
    /// end (a hole: bytes were dropped unarchived); the caller decides
    /// whether to [`rebase`](Self::rebase_to) over the gap.
    pub fn seal_from_log(
        &mut self,
        log_path: &Path,
        upto: TailPosition,
        now_ms: u64,
        fail_after: Option<usize>,
    ) -> io::Result<u64> {
        let end = self.end_offset();
        if upto.offset <= end {
            return Ok(0);
        }
        let bytes = fs::read(log_path)?;
        let header = {
            let mut f = fs::File::open(log_path)?;
            read_header(&mut f)?
        };
        if end < header.base {
            return Err(corrupt(format!(
                "live log base {} is past the archive end {end}: \
                 [{end}, {}) was dropped unarchived",
                header.base, header.base
            )));
        }
        let payload = &bytes[header.header_len as usize..];
        let from = (end - header.base) as usize;
        let to = (upto.offset - header.base) as usize;
        if to > payload.len() {
            return Err(corrupt(format!(
                "seal to offset {} is past the log's logical end {}",
                upto.offset,
                header.base + payload.len() as u64
            )));
        }
        let slice = &payload[from..to];
        let lines = upto.line_no - self.end_line();
        let newlines = slice.iter().filter(|&&b| b == b'\n').count() as u64;
        if newlines != lines {
            return Err(corrupt(format!(
                "seal slice holds {newlines} lines but positions imply {lines} \
                 (log rewritten underneath the archive?)"
            )));
        }
        self.seal(slice, lines, now_ms, fail_after)?;
        Ok(slice.len() as u64)
    }

    /// Expires the oldest segments until every budget in `policy` is
    /// met, never expiring a segment whose end is past `floor_offset`
    /// (the journal replay window: a resume below the floor must still
    /// find its bytes). Crash-safe: the new manifest commits first (with
    /// the injected `fail_after` disk fault hitting *that* write, the
    /// old manifest survives untouched), then the segment files are
    /// unlinked; [`open`](Self::open) finishes an interrupted unlink.
    pub fn expire(
        &mut self,
        policy: &RetentionPolicy,
        floor_offset: u64,
        now_ms: u64,
        fail_after: Option<usize>,
    ) -> io::Result<ExpiryStats> {
        self.expire_inner(policy, floor_offset, now_ms, fail_after, None)
    }

    /// [`expire`](Self::expire) with an injected crash point for the
    /// crash-matrix tests; `crash` simulates dying between the manifest
    /// commit and (part of) the unlink phase.
    pub(crate) fn expire_inner(
        &mut self,
        policy: &RetentionPolicy,
        floor_offset: u64,
        now_ms: u64,
        fail_after: Option<usize>,
        crash: Option<ExpiryCrash>,
    ) -> io::Result<ExpiryStats> {
        let mut drop_n = 0usize;
        let mut kept_bytes = self.payload_bytes();
        let max_age_ms = policy
            .max_age
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64);
        while let Some(seg) = self.segments.get(drop_n) {
            if seg.end_offset() > floor_offset {
                break; // inside the journal replay window: untouchable
            }
            let kept_n = self.segments.len() - drop_n;
            let over_bytes = policy.max_bytes > 0 && kept_bytes > policy.max_bytes;
            let over_count = policy.max_segments > 0 && kept_n > policy.max_segments;
            let over_age = max_age_ms
                .is_some_and(|max| now_ms.saturating_sub(seg.sealed_at_ms) > max);
            if !(over_bytes || over_count || over_age) {
                break;
            }
            kept_bytes -= seg.len;
            drop_n += 1;
        }
        if drop_n == 0 {
            return Ok(ExpiryStats::default());
        }
        let last = self.segments[drop_n - 1];
        let new_start = ArchiveStart {
            seq: last.seq + 1,
            offset: last.end_offset(),
            line: last.end_line(),
        };
        // Seam 1: manifest-before-delete. A failure (or crash) here
        // leaves the old manifest and every segment intact.
        write_manifest(&self.dir, new_start, fail_after)?;
        let stats = ExpiryStats {
            segments: drop_n as u64,
            bytes: self.segments[..drop_n].iter().map(|m| m.len).sum(),
        };
        // Seam 2: unlink the expired files. A crash anywhere in here
        // leaves segments below the committed boundary; open() unlinks
        // them idempotently.
        for (i, seg) in self.segments[..drop_n].iter().enumerate() {
            match crash {
                Some(ExpiryCrash::BeforeUnlink) => return Err(simulated_crash()),
                Some(ExpiryCrash::AfterUnlink(n)) if i >= n => {
                    return Err(simulated_crash())
                }
                _ => {}
            }
            // A failed unlink degrades to an orphan the next open
            // removes; the manifest is already durable.
            let _ = fs::remove_file(self.dir.join(seg.file_name()));
        }
        self.segments.drain(..drop_n);
        self.start = new_start;
        Ok(stats)
    }

    /// Rebases the boundary to `pos`, discarding **all** retained
    /// segments: the recovery path for a hole (bytes dropped unarchived
    /// after a seal's retry chain exhausted), where the retained prefix
    /// can no longer be joined to the live log. Returns the payload
    /// bytes discarded. Same manifest-before-delete discipline as
    /// [`expire`](Self::expire).
    pub fn rebase_to(
        &mut self,
        pos: TailPosition,
        fail_after: Option<usize>,
    ) -> io::Result<u64> {
        let new_start = ArchiveStart {
            seq: self.next_seq(),
            offset: pos.offset,
            line: pos.line_no,
        };
        write_manifest(&self.dir, new_start, fail_after)?;
        let discarded = self.payload_bytes();
        for seg in &self.segments {
            let _ = fs::remove_file(self.dir.join(seg.file_name()));
        }
        self.segments.clear();
        self.start = new_start;
        Ok(discarded)
    }

    /// Reconstructs the retained logical stream — a sentinel line (when
    /// the boundary is past the origin), every segment payload in order,
    /// then the live log's payload — into `out`, verifying every segment
    /// checksum and the archive↔live contiguity on the way. The restored
    /// file replays exactly like the original log: a tail resumed at or
    /// past the boundary sees identical bytes.
    pub fn restore_to(&self, log_path: &Path, out: &Path) -> io::Result<RestoreStats> {
        let live = fs::read(log_path)?;
        let live_header = {
            let mut f = fs::File::open(log_path)?;
            read_header(&mut f)?
        };
        // Overlap (live base below the archive end) is legal: a crash
        // between a seal and the live rewrite leaves the sealed bytes in
        // both places, and the duplicate live prefix is skipped. A hole
        // (live base past the archive end) is not recoverable.
        let end = self.end_offset();
        if live_header.base > end {
            return Err(corrupt(format!(
                "live log base {} is past the archive end {end} — \
                 the stream has a hole and cannot be restored",
                live_header.base
            )));
        }
        let overlap = (end - live_header.base) as usize;
        let mut stats = RestoreStats {
            start_offset: self.start.offset,
            start_line: self.start.line,
            ..RestoreStats::default()
        };
        let mut payloads = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            payloads.push(self.read_segment_payload(seg)?);
        }
        let live_payload_full = &live[live_header.header_len as usize..];
        if overlap > live_payload_full.len() {
            return Err(corrupt(format!(
                "live log ends at {} — before the archive end {end}",
                live_header.base + live_payload_full.len() as u64
            )));
        }
        let live_payload = &live_payload_full[overlap..];
        let sentinel = (self.start.offset > 0).then(|| {
            render_sentinel(TailPosition {
                offset: self.start.offset,
                line_no: self.start.line,
            })
        });
        atomic_write(out, |f| {
            if let Some(s) = &sentinel {
                f.write_all(s.as_bytes())?;
            }
            for p in &payloads {
                f.write_all(p)?;
            }
            f.write_all(live_payload)
        })?;
        stats.segments = self.segments.len() as u64;
        stats.archived_bytes = payloads.iter().map(|p| p.len() as u64).sum();
        stats.live_bytes = live_payload.len() as u64;
        stats.sentinel_len = sentinel.map_or(0, |s| s.len() as u64);
        Ok(stats)
    }

    /// Deep integrity check: re-reads every segment from disk, verifies
    /// its header FNV, payload FNV, length, line count, and chain
    /// contiguity against the manifest; when `log_path` is given, also
    /// requires the live log to continue the archive gaplessly. Any
    /// violation is an error, not a report field.
    pub fn verify(&self, log_path: Option<&Path>) -> io::Result<VerifyReport> {
        // Re-open from disk so verify sees what a recovery would, not
        // this process's cached view.
        let fresh = Self::open(&self.dir)?;
        if fresh.start != self.start || fresh.segments != self.segments {
            return Err(corrupt(
                "on-disk store disagrees with the open handle (concurrent writer?)",
            ));
        }
        for seg in &fresh.segments {
            let payload = fresh.read_segment_payload(seg)?;
            let lines = payload.iter().filter(|&&b| b == b'\n').count() as u64;
            if lines != seg.lines {
                return Err(corrupt(format!(
                    "segment {} declares {} lines but holds {lines}",
                    seg.file_name(),
                    seg.lines
                )));
            }
        }
        let mut report = VerifyReport {
            segments: fresh.segments.len() as u64,
            payload_bytes: fresh.payload_bytes(),
            start: fresh.start,
            end_offset: fresh.end_offset(),
            contiguous_with_live: log_path.is_none(),
        };
        if let Some(log) = log_path {
            let base = match crate::tail::sentinel_base(log)? {
                Some((base, _)) => base,
                None => 0,
            };
            // base == end is the steady state; base < end is a benign
            // overlap (seal durable, rewrite pending); base > end is a
            // hole.
            if base > fresh.end_offset() {
                return Err(corrupt(format!(
                    "live log base {base} is past the archive end {} — \
                     the stream has a hole",
                    fresh.end_offset()
                )));
            }
            report.contiguous_with_live = true;
        }
        Ok(report)
    }

    /// Reads and checksum-verifies one segment's payload.
    fn read_segment_payload(&self, seg: &SegmentMeta) -> io::Result<Vec<u8>> {
        let path = self.dir.join(seg.file_name());
        let bytes = fs::read(&path)?;
        let on_disk = read_segment_header(&path)?;
        if on_disk != *seg {
            return Err(corrupt(format!(
                "segment {} header changed underneath the store",
                seg.file_name()
            )));
        }
        let payload = bytes[seg.header_len as usize..].to_vec();
        if payload.len() as u64 != seg.len {
            return Err(corrupt(format!(
                "segment {} declares {} payload bytes but holds {}",
                seg.file_name(),
                seg.len,
                payload.len()
            )));
        }
        if fnv1a(&payload) != seg.sum {
            return Err(corrupt(format!(
                "segment {} payload checksum mismatch",
                seg.file_name()
            )));
        }
        Ok(payload)
    }

    /// Validates seq/offset/line contiguity of the retained chain
    /// against the manifest boundary.
    fn check_chain(&self) -> io::Result<()> {
        let (mut seq, mut offset, mut line) =
            (self.start.seq, self.start.offset, self.start.line);
        for seg in &self.segments {
            if seg.seq != seq || seg.base_offset != offset || seg.base_line != line {
                return Err(corrupt(format!(
                    "segment {} (base {}, line {}) breaks the chain at \
                     seq {seq} / offset {offset} / line {line}",
                    seg.file_name(),
                    seg.base_offset,
                    seg.base_line
                )));
            }
            seq += 1;
            offset = seg.end_offset();
            line = seg.end_line();
        }
        Ok(())
    }
}

/// Injected crash points for the expiry crash-matrix tests. Only test
/// code constructs these; production expiry always passes `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) enum ExpiryCrash {
    /// Die after the manifest commit, before any unlink.
    BeforeUnlink,
    /// Die after unlinking this many of the expired segments.
    AfterUnlink(usize),
}

fn simulated_crash() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected crash mid-expiry")
}

/// The pre-segmentation monolithic archive file (`<log>.archive`),
/// recognized for import only.
pub fn legacy_archive_path(log_path: &Path) -> PathBuf {
    let mut os = log_path.as_os_str().to_os_string();
    os.push(".archive");
    PathBuf::from(os)
}

fn read_segment_header(path: &Path) -> io::Result<SegmentMeta> {
    let bytes = fs::read(path)?;
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| corrupt(format!("{}: unterminated header", path.display())))?;
    let line = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| corrupt(format!("{}: non-UTF-8 header", path.display())))?;
    SegmentMeta::parse_header(line)
        .ok_or_else(|| corrupt(format!("{}: bad segment header: {line:?}", path.display())))
}

fn render_manifest(start: ArchiveStart) -> String {
    let body = format!(
        "{MANIFEST_MAGIC}\nstart seq {} offset {} line {}\n",
        start.seq, start.offset, start.line
    );
    format!("{body}sum {:016x}\n", fnv1a(body.as_bytes()))
}

fn parse_manifest(text: &str) -> io::Result<ArchiveStart> {
    let mut lines = text.lines();
    let magic = lines.next().unwrap_or_default();
    if magic != MANIFEST_MAGIC {
        return Err(corrupt(format!("bad manifest magic {magic:?}")));
    }
    let start_line = lines.next().unwrap_or_default();
    let sum_line = lines.next().unwrap_or_default();
    if lines.next().is_some() {
        return Err(corrupt("trailing manifest content"));
    }
    let declared = sum_line
        .strip_prefix("sum ")
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| corrupt(format!("bad manifest checksum line {sum_line:?}")))?;
    let body = format!("{magic}\n{start_line}\n");
    if fnv1a(body.as_bytes()) != declared {
        return Err(corrupt("manifest checksum mismatch"));
    }
    let mut kv = start_line
        .strip_prefix("start ")
        .ok_or_else(|| corrupt(format!("bad manifest start line {start_line:?}")))?
        .split_ascii_whitespace();
    let mut field = |key: &str| -> io::Result<u64> {
        match (kv.next(), kv.next()) {
            (Some(k), Some(v)) if k == key => v
                .parse()
                .map_err(|_| corrupt(format!("bad manifest field {key}"))),
            _ => Err(corrupt(format!("missing manifest field {key}"))),
        }
    };
    let start = ArchiveStart {
        seq: field("seq")?,
        offset: field("offset")?,
        line: field("line")?,
    };
    Ok(start)
}

fn write_manifest(dir: &Path, start: ArchiveStart, fail_after: Option<usize>) -> io::Result<()> {
    let text = render_manifest(start);
    atomic_write(&dir.join(MANIFEST_FILE), |f| {
        let mut w: Box<dyn Write> = match fail_after {
            Some(limit) => Box::new(FailingWriter::new(&mut *f, limit)),
            None => Box::new(&mut *f),
        };
        w.write_all(text.as_bytes())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmp(name: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "inf2vec_archive_{name}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Seals `chunks` consecutive line-payloads and returns the
    /// concatenated stream for reference.
    fn seed_store(dir: &Path, chunks: &[&str]) -> (ArchiveStore, Vec<u8>) {
        let mut store = ArchiveStore::open(dir).unwrap();
        let mut stream = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            let lines = c.bytes().filter(|&b| b == b'\n').count() as u64;
            store.seal(c.as_bytes(), lines, i as u64 * 10, None).unwrap();
            stream.extend_from_slice(c.as_bytes());
        }
        (store, stream)
    }

    #[test]
    fn seal_reopen_restore_round_trips() {
        let dir = tmp("roundtrip");
        let log = dir.join("actions.log");
        let (store, stream) =
            seed_store(&dir.join("a.d"), &["0 0 1\n1 0 2\n", "2 0 3\n", "3 0 4\n4 0 5\n"]);
        assert_eq!(store.segments().len(), 3);
        assert_eq!(store.end_offset(), stream.len() as u64);
        assert_eq!(store.end_line(), 5);
        drop(store);

        // Reopen sees the identical chain.
        let store = ArchiveStore::open(dir.join("a.d")).unwrap();
        assert_eq!(store.segments().len(), 3);
        assert_eq!(store.end_offset(), stream.len() as u64);

        // An empty live log continuing the archive restores the stream.
        let pos = TailPosition {
            offset: stream.len() as u64,
            line_no: 5,
        };
        fs::write(&log, render_sentinel(pos)).unwrap();
        let out = dir.join("restored.log");
        let stats = store.restore_to(&log, &out).unwrap();
        assert_eq!(stats.segments, 3);
        assert_eq!(stats.archived_bytes, stream.len() as u64);
        // start == 0: no sentinel, byte-identical to the original stream.
        assert_eq!(stats.sentinel_len, 0);
        assert_eq!(fs::read(&out).unwrap(), stream);
        store.verify(Some(&log)).unwrap();
    }

    #[test]
    fn failed_seal_leaves_no_segment_and_retry_succeeds() {
        let dir = tmp("sealfail");
        let mut store = ArchiveStore::open(dir.join("a.d")).unwrap();
        let err = store.seal(b"0 0 1\n", 1, 0, Some(3)).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert!(store.segments().is_empty());
        drop(store);
        let mut store = ArchiveStore::open(dir.join("a.d")).unwrap();
        assert!(store.segments().is_empty(), "no torn segment survives");
        store.seal(b"0 0 1\n", 1, 0, None).unwrap();
        assert_eq!(store.end_offset(), 6);
    }

    #[test]
    fn seal_from_log_is_idempotent_across_rewrite_failures() {
        let dir = tmp("sealidem");
        let log = dir.join("actions.log");
        fs::write(&log, b"0 0 1\n1 0 2\n2 0 3\n").unwrap();
        let mut store = ArchiveStore::open(dir.join("a.d")).unwrap();
        let upto = TailPosition { offset: 12, line_no: 2 };
        assert_eq!(store.seal_from_log(&log, upto, 0, None).unwrap(), 12);
        // The live rewrite failed; the next boundary retries the seal at
        // the same (or a later) position — nothing is duplicated.
        assert_eq!(store.seal_from_log(&log, upto, 0, None).unwrap(), 0);
        let later = TailPosition { offset: 18, line_no: 3 };
        assert_eq!(store.seal_from_log(&log, later, 0, None).unwrap(), 6);
        assert_eq!(store.payload_bytes(), 18);
        store.verify(None).unwrap();
    }

    #[test]
    fn expiry_respects_budgets_and_replay_floor() {
        let dir = tmp("expiry");
        let (mut store, stream) =
            seed_store(&dir.join("a.d"), &["0 0 1\n", "1 0 2\n", "2 0 3\n", "3 0 4\n"]);
        let policy = RetentionPolicy {
            max_segments: 2,
            ..RetentionPolicy::default()
        };
        // Floor inside segment 0: nothing may expire.
        let s = store.expire(&policy, 3, 100, None).unwrap();
        assert_eq!(s, ExpiryStats::default());
        // Floor past everything: the two oldest go.
        let s = store.expire(&policy, stream.len() as u64, 100, None).unwrap();
        assert_eq!(s.segments, 2);
        assert_eq!(s.bytes, 12);
        assert_eq!(store.start().offset, 12);
        assert_eq!(store.segments().len(), 2);
        // Idempotent: already under budget.
        let s = store.expire(&policy, stream.len() as u64, 100, None).unwrap();
        assert_eq!(s, ExpiryStats::default());
        store.verify(None).unwrap();

        // Age budget: everything sealed before t=25ms (segments 2 at
        // t=20 is > 40-25... seal times were 0,10,20,30; max_age 15ms at
        // now=40 expires t=0,10,20, but only the remaining 20,30 exist).
        let age = RetentionPolicy {
            max_age: Some(Duration::from_millis(15)),
            ..RetentionPolicy::default()
        };
        let s = store.expire(&age, u64::MAX, 40, None).unwrap();
        assert_eq!(s.segments, 1, "t=20 is 20ms old at now=40");
        assert_eq!(store.segments().len(), 1);
    }

    #[test]
    fn failed_manifest_write_preserves_old_boundary() {
        let dir = tmp("manifestfail");
        let (mut store, stream) = seed_store(&dir.join("a.d"), &["0 0 1\n", "1 0 2\n", "2 0 3\n"]);
        let policy = RetentionPolicy {
            max_segments: 1,
            ..RetentionPolicy::default()
        };
        let err = store
            .expire(&policy, stream.len() as u64, 0, Some(4))
            .unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        drop(store);
        // Old manifest intact, all segments intact, retry completes.
        let mut store = ArchiveStore::open(dir.join("a.d")).unwrap();
        assert_eq!(store.start(), ArchiveStart::default());
        assert_eq!(store.segments().len(), 3);
        let s = store.expire(&policy, stream.len() as u64, 0, None).unwrap();
        assert_eq!(s.segments, 2);
        store.verify(None).unwrap();
    }

    #[test]
    fn legacy_archive_imports_as_segment_zero() {
        let dir = tmp("legacy");
        let log = dir.join("actions.log");
        let legacy = legacy_archive_path(&log);
        fs::write(&legacy, b"0 0 1\n1 0 2\n").unwrap();
        fs::write(&log, render_sentinel(TailPosition { offset: 12, line_no: 2 })).unwrap();
        let store = ArchiveStore::open_for_log(&log, 7).unwrap();
        assert!(!legacy.exists(), "legacy file consumed");
        assert_eq!(store.segments().len(), 1);
        assert_eq!(store.end_offset(), 12);
        assert_eq!(store.segments()[0].lines, 2);
        store.verify(Some(&log)).unwrap();
        // Idempotent: opening again (no legacy file) is a no-op.
        let store = ArchiveStore::open_for_log(&log, 8).unwrap();
        assert_eq!(store.segments().len(), 1);
    }

    #[test]
    fn rebase_discards_everything_and_restore_serves_the_suffix() {
        let dir = tmp("rebase");
        let log = dir.join("actions.log");
        let (mut store, _) = seed_store(&dir.join("a.d"), &["0 0 1\n", "1 0 2\n"]);
        // A hole: the live log starts past the archive end.
        let pos = TailPosition { offset: 30, line_no: 5 };
        let discarded = store.rebase_to(pos, None).unwrap();
        assert_eq!(discarded, 12);
        assert!(store.segments().is_empty());
        assert_eq!(store.start().offset, 30);
        fs::write(&log, format!("{}5 0 9\n", render_sentinel(pos))).unwrap();
        let out = dir.join("restored.log");
        let stats = store.restore_to(&log, &out).unwrap();
        assert_eq!(stats.live_bytes, 6);
        let restored = fs::read_to_string(&out).unwrap();
        assert!(restored.starts_with("#inf2vec-log v1 base 30 lines 5\n"));
        assert!(restored.ends_with("5 0 9\n"));
    }

    #[test]
    fn corrupted_segment_payload_fails_verify() {
        let dir = tmp("corrupt");
        let (store, _) = seed_store(&dir.join("a.d"), &["0 0 1\n1 0 2\n"]);
        let seg = store.dir().join(store.segments()[0].file_name());
        let mut bytes = fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x20; // flip a payload byte, header intact
        fs::write(&seg, bytes).unwrap();
        let err = store.verify(None).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite: segment-header round-trip — render then parse is
        /// the identity for any field values.
        #[test]
        fn segment_header_round_trips(
            seq in 0u64..u64::MAX / 2,
            base_offset in 0u64..u64::MAX / 2,
            base_line in 0u64..u64::MAX / 2,
            lines in 0u64..u64::MAX / 2,
            len in 0u64..u64::MAX / 2,
            sum in any::<u64>(),
            sealed_at_ms in any::<u64>(),
        ) {
            let meta = SegmentMeta {
                seq, base_offset, base_line, lines, len, sum, sealed_at_ms,
                header_len: 0,
            };
            let header = meta.render_header();
            let parsed = SegmentMeta::parse_header(header.trim_end())
                .expect("rendered header parses");
            prop_assert_eq!(
                parsed,
                SegmentMeta { header_len: header.len() as u64, ..meta }
            );
            // A flipped header byte never parses as valid.
            let mut broken = header.trim_end().to_string().into_bytes();
            let i = (sum as usize) % broken.len();
            broken[i] ^= 1;
            if let Ok(s) = std::str::from_utf8(&broken) {
                if s != header.trim_end() {
                    prop_assert!(SegmentMeta::parse_header(s).is_none());
                }
            }
        }

        /// Satellite: the expiry crash-point matrix. Kill expiry at an
        /// arbitrary byte of the manifest write, between the manifest
        /// commit and the unlinks, or mid-unlink — then reopen. The
        /// store must always come back consistent (contiguous chain,
        /// boundary at one of the two legal positions), and re-running
        /// the same expiry must converge to the fully-expired state
        /// without double-counting reclaimed bytes.
        #[test]
        fn expiry_crash_matrix_recovers_consistently(
            n_segments in 2usize..6,
            max_segments in 1usize..3,
            crash_point in 0usize..12,
        ) {
            let dir = tmp("crashmatrix");
            let chunks: Vec<String> =
                (0..n_segments).map(|i| format!("{i} 0 {i}\n")).collect();
            let refs: Vec<&str> = chunks.iter().map(String::as_str).collect();
            let (mut store, stream) = seed_store(&dir.join("a.d"), &refs);
            let policy = RetentionPolicy { max_segments, ..RetentionPolicy::default() };
            let floor = stream.len() as u64;
            let expected_drop = n_segments.saturating_sub(max_segments);

            // Crash points 0..6 die inside the manifest write after that
            // many bytes; 6 dies before any unlink; 7.. die after
            // (point-7) unlinks.
            let result = if crash_point < 6 {
                store.expire(&policy, floor, 0, Some(crash_point))
            } else if crash_point == 6 {
                store.expire_inner(&policy, floor, 0, None, Some(ExpiryCrash::BeforeUnlink))
            } else {
                store.expire_inner(
                    &policy, floor, 0, None,
                    Some(ExpiryCrash::AfterUnlink(crash_point - 7)),
                )
            };
            // Whether the crash actually fires depends on geometry (a
            // no-op expiry never writes; AfterUnlink(n) past the last
            // unlink completes normally). Either way the recovery
            // invariants below must hold.
            if expected_drop == 0 {
                prop_assert_eq!(result.unwrap(), ExpiryStats::default());
            } else if let Ok(s) = result {
                prop_assert_eq!(s.segments as usize, expected_drop);
            }
            drop(store);

            // Recovery: reopen (runs the idempotent unlink repair), then
            // re-run the same expiry to completion.
            let mut store = ArchiveStore::open(dir.join("a.d")).unwrap();
            let boundary_moved = store.start().seq > 0;
            store.verify(None).unwrap();
            let s = store.expire(&policy, floor, 0, None).unwrap();
            let replayed = s.segments as usize;
            // Exactly-once reclamation: the crashed attempt and the
            // replay together expire the planned set, never more.
            let already = if boundary_moved { expected_drop } else { 0 };
            prop_assert_eq!(replayed, expected_drop - already);
            prop_assert_eq!(store.segments().len(), max_segments.min(n_segments));
            prop_assert_eq!(store.start().seq as usize, expected_drop);
            store.verify(None).unwrap();
            let _ = fs::remove_dir_all(&dir);
        }
    }
}
