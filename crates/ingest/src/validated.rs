//! The validated-dataset entry point: both streams, one policy, one
//! cross-checked result.

use std::io::BufRead;
use std::path::Path;

use inf2vec_diffusion::Dataset;
use inf2vec_util::error::IngestError;

use crate::actions::ingest_actions;
use crate::edges::ingest_edges;
use crate::idmap::IdMap;
use crate::policy::{IdMode, IngestConfig};
use crate::report::IngestReport;

/// A [`Dataset`] that survived policy-driven ingestion, with the full
/// account of what it took: per-stream quarantine reports and (in `Remap`
/// mode) the external-id tables.
///
/// Construction runs the graph/log cross-validation (dangling users are
/// defects during ingestion, and the final bundle still passes through
/// [`Dataset::try_new`] as a belt-and-braces gate), so holding a
/// `ValidatedDataset` means the invariants every downstream consumer
/// assumes — users inside the graph, episodes sorted and deduplicated —
/// actually hold.
#[derive(Debug, Clone)]
pub struct ValidatedDataset {
    /// The assembled, cross-validated dataset.
    pub dataset: Dataset,
    /// Edge-stream accounting.
    pub edges: IngestReport,
    /// Action-stream accounting (dangling-user defects land here).
    pub actions: IngestReport,
    /// External→dense user ids (`Remap` mode only).
    pub users: Option<IdMap>,
    /// External→dense item ids (`Remap` mode only).
    pub items: Option<IdMap>,
}

impl ValidatedDataset {
    /// Total defects across both streams.
    pub fn total_defects(&self) -> u64 {
        self.edges.total_defects() + self.actions.total_defects()
    }

    /// One JSON object: dataset shape plus both stream reports.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\"name\":");
        crate::report::push_json_string(&mut s, &self.dataset.name);
        s.push_str(&format!(
            ",\"nodes\":{},\"edges\":{},\"episodes\":{},\"actions\":{}",
            self.dataset.graph.node_count(),
            self.dataset.graph.edge_count(),
            self.dataset.log.len(),
            self.dataset.log.action_count(),
        ));
        s.push_str(",\"edges_report\":");
        s.push_str(&self.edges.to_json());
        s.push_str(",\"actions_report\":");
        s.push_str(&self.actions.to_json());
        s.push('}');
        s
    }

    /// Human-readable two-stream summary.
    pub fn summary(&self) -> String {
        format!(
            "{}\n{}\n[ingest] dataset \"{}\": {} nodes, {} edges, {} episodes, {} actions",
            self.edges.summary(),
            self.actions.summary(),
            self.dataset.name,
            self.dataset.graph.node_count(),
            self.dataset.graph.edge_count(),
            self.dataset.log.len(),
            self.dataset.log.action_count(),
        )
    }
}

/// Policy-driven loader for an edge list plus action log.
#[derive(Debug, Clone, Default)]
pub struct Ingestor {
    cfg: IngestConfig,
}

impl Ingestor {
    /// An ingestor with the given configuration.
    pub fn new(cfg: IngestConfig) -> Self {
        Self { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.cfg
    }

    /// Ingests both streams and assembles a [`ValidatedDataset`].
    ///
    /// The edge list is ingested first (it defines the id universe), then
    /// the action log is ingested and cross-validated against the graph
    /// record by record. The assembled bundle finally passes through
    /// [`Dataset::try_new`]; a failure there (impossible unless the
    /// ingest invariants are broken) maps to [`IngestError::Invalid`]
    /// rather than a panic.
    pub fn ingest<RE: BufRead, RA: BufRead>(
        &self,
        edges: RE,
        actions: RA,
        name: impl Into<String>,
    ) -> Result<ValidatedDataset, IngestError> {
        let remap = self.cfg.id_mode == IdMode::Remap;
        let mut users = remap.then(IdMap::new);
        let (graph, edges_report) = ingest_edges(edges, &self.cfg, users.as_mut())?;
        let mut items = remap.then(IdMap::new);
        let (log, actions_report) =
            ingest_actions(actions, &self.cfg, &graph, users.as_ref(), items.as_mut())?;
        let dataset = Dataset::try_new(graph, log, name).map_err(|e| IngestError::Invalid {
            message: e.to_string(),
        })?;
        Ok(ValidatedDataset {
            dataset,
            edges: edges_report,
            actions: actions_report,
            users,
            items,
        })
    }

    /// [`ingest`](Self::ingest) over files on disk, buffered.
    pub fn ingest_paths(
        &self,
        edges: &Path,
        actions: &Path,
        name: impl Into<String>,
    ) -> Result<ValidatedDataset, IngestError> {
        let e = std::io::BufReader::new(std::fs::File::open(edges)?);
        let a = std::io::BufReader::new(std::fs::File::open(actions)?);
        self.ingest(e, a, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ErrorPolicy;

    const EDGES: &[u8] = b"# nodes: 4\n0 1\n1 2\n2 3\n";
    const ACTIONS: &[u8] = b"0\t0\t1\n1\t0\t2\n2\t1\t5\n3\t1\t6\n";

    #[test]
    fn clean_ingest_round_trips_through_try_new() {
        let v = Ingestor::default()
            .ingest(EDGES, ACTIONS, "clean")
            .unwrap();
        assert_eq!(v.dataset.graph.node_count(), 4);
        assert_eq!(v.dataset.log.len(), 2);
        assert_eq!(v.total_defects(), 0);
        assert!(v.users.is_none() && v.items.is_none());
        let json = v.to_json();
        assert!(json.contains("\"nodes\":4"), "{json}");
        assert!(json.contains("\"edges_report\""), "{json}");
        assert!(v.summary().contains("2 episodes"));
    }

    #[test]
    fn dirty_ingest_under_skip_yields_same_dataset() {
        let dirty_edges = b"# nodes: 4\n0 1\njunk\n1 2\n2 3\n";
        let dirty_actions = b"0\t0\t1\n1\t0\t2\nnope nope\n2\t1\t5\n9\t9\t9\n3\t1\t6\n";
        let clean = Ingestor::default().ingest(EDGES, ACTIONS, "x").unwrap();
        let dirty = Ingestor::new(IngestConfig {
            policy: ErrorPolicy::skip(10),
            ..IngestConfig::default()
        })
        .ingest(dirty_edges.as_slice(), dirty_actions.as_slice(), "x")
        .unwrap();
        assert_eq!(clean.dataset.graph, dirty.dataset.graph);
        assert_eq!(clean.dataset.log.episodes(), dirty.dataset.log.episodes());
        assert_eq!(dirty.total_defects(), 3);
    }

    #[test]
    fn remap_mode_builds_id_tables() {
        let edges = b"1000 2000\n2000 3000\n";
        let actions = b"1000 77 1\n3000 77 2\n";
        let v = Ingestor::new(IngestConfig {
            id_mode: IdMode::Remap,
            ..IngestConfig::default()
        })
        .ingest(edges.as_slice(), actions.as_slice(), "snap")
        .unwrap();
        assert_eq!(v.dataset.graph.node_count(), 3);
        assert_eq!(v.users.as_ref().unwrap().external(0), Some(1000));
        assert_eq!(v.items.as_ref().unwrap().external(0), Some(77));
        assert_eq!(v.dataset.log.episodes()[0].len(), 2);
    }

    #[test]
    fn ingest_paths_reports_missing_file_as_io() {
        let err = Ingestor::default()
            .ingest_paths(
                Path::new("/nonexistent/edges.txt"),
                Path::new("/nonexistent/actions.txt"),
                "missing",
            )
            .unwrap_err();
        assert!(matches!(err, IngestError::Io(_)));
    }
}
