//! Defensive token parsing: every failure maps to a defect kind, never a
//! panic.

use inf2vec_util::error::DefectKind;

use crate::idmap::IdMap;
use crate::policy::IdMode;

/// Parses an id token into the dense `u32` space.
///
/// - `Preserve`: the token must be an integer `<= u32::MAX`.
/// - `Remap`: the token must be an integer `<= u64::MAX`; it is interned
///   through `map` in first-seen order.
///
/// All-digit tokens too large for the id space classify as
/// [`DefectKind::IdOverflow`]; anything else as
/// [`DefectKind::MalformedLine`].
pub(crate) fn parse_id(
    token: &str,
    mode: IdMode,
    map: Option<&mut IdMap>,
) -> Result<u32, DefectKind> {
    match token.parse::<u64>() {
        Ok(ext) => match mode {
            IdMode::Preserve => u32::try_from(ext).map_err(|_| DefectKind::IdOverflow),
            IdMode::Remap => map
                .expect("Remap mode requires an IdMap")
                .intern(ext)
                .ok_or(DefectKind::IdOverflow),
        },
        Err(_) => {
            if !token.is_empty() && token.bytes().all(|b| b.is_ascii_digit()) {
                Err(DefectKind::IdOverflow)
            } else {
                Err(DefectKind::MalformedLine)
            }
        }
    }
}

/// Looks an id token up *without* interning (action-log users must already
/// exist in the graph's id space).
pub(crate) fn lookup_id(token: &str, map: &IdMap) -> Result<u32, DefectKind> {
    match token.parse::<u64>() {
        Ok(ext) => map.get(ext).ok_or(DefectKind::DanglingNode),
        Err(_) => {
            if !token.is_empty() && token.bytes().all(|b| b.is_ascii_digit()) {
                Err(DefectKind::IdOverflow)
            } else {
                Err(DefectKind::MalformedLine)
            }
        }
    }
}

/// Outcome of parsing a timestamp token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum TimeParse {
    /// A clean integer timestamp.
    Ok(u64),
    /// Fixable under `Repair`: the clamped/truncated value plus the defect
    /// to record (`TimestampOutOfRange`).
    Repairable(u64, DefectKind),
    /// Unfixable (`NonFiniteTimestamp` or `MalformedLine`).
    Bad(DefectKind),
}

/// Parses a timestamp token. Integers pass through exactly; floats are
/// classified — NaN/Inf is [`DefectKind::NonFiniteTimestamp`], anything
/// negative, above `u64::MAX`, or fractional is
/// [`DefectKind::TimestampOutOfRange`] with a clamped repair value.
pub(crate) fn parse_time(token: &str) -> TimeParse {
    if let Ok(t) = token.parse::<u64>() {
        return TimeParse::Ok(t);
    }
    match token.parse::<f64>() {
        Ok(x) if x.is_nan() || x.is_infinite() => TimeParse::Bad(DefectKind::NonFiniteTimestamp),
        Ok(x) if x < 0.0 => TimeParse::Repairable(0, DefectKind::TimestampOutOfRange),
        Ok(x) if x >= u64::MAX as f64 => {
            TimeParse::Repairable(u64::MAX, DefectKind::TimestampOutOfRange)
        }
        Ok(x) => TimeParse::Repairable(x.trunc() as u64, DefectKind::TimestampOutOfRange),
        Err(_) => TimeParse::Bad(DefectKind::MalformedLine),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserve_parses_and_overflows() {
        assert_eq!(parse_id("42", IdMode::Preserve, None), Ok(42));
        assert_eq!(parse_id("+7", IdMode::Preserve, None), Ok(7));
        assert_eq!(
            parse_id("4294967296", IdMode::Preserve, None),
            Err(DefectKind::IdOverflow)
        );
        assert_eq!(
            parse_id("99999999999999999999999999", IdMode::Preserve, None),
            Err(DefectKind::IdOverflow)
        );
        assert_eq!(
            parse_id("x7", IdMode::Preserve, None),
            Err(DefectKind::MalformedLine)
        );
        assert_eq!(
            parse_id("", IdMode::Preserve, None),
            Err(DefectKind::MalformedLine)
        );
    }

    #[test]
    fn remap_interns_first_seen() {
        let mut m = IdMap::new();
        assert_eq!(parse_id("4000019", IdMode::Remap, Some(&mut m)), Ok(0));
        assert_eq!(parse_id("17", IdMode::Remap, Some(&mut m)), Ok(1));
        assert_eq!(parse_id("4000019", IdMode::Remap, Some(&mut m)), Ok(0));
        assert_eq!(lookup_id("17", &m), Ok(1));
        assert_eq!(lookup_id("23", &m), Err(DefectKind::DanglingNode));
    }

    #[test]
    fn remap_overflow_at_limit() {
        let mut m = IdMap::with_limit(1);
        assert_eq!(parse_id("5", IdMode::Remap, Some(&mut m)), Ok(0));
        assert_eq!(
            parse_id("6", IdMode::Remap, Some(&mut m)),
            Err(DefectKind::IdOverflow)
        );
    }

    #[test]
    fn time_classification() {
        assert_eq!(parse_time("123"), TimeParse::Ok(123));
        assert_eq!(
            parse_time("NaN"),
            TimeParse::Bad(DefectKind::NonFiniteTimestamp)
        );
        assert_eq!(
            parse_time("inf"),
            TimeParse::Bad(DefectKind::NonFiniteTimestamp)
        );
        assert_eq!(
            parse_time("-5"),
            TimeParse::Repairable(0, DefectKind::TimestampOutOfRange)
        );
        assert_eq!(
            parse_time("1.5"),
            TimeParse::Repairable(1, DefectKind::TimestampOutOfRange)
        );
        assert_eq!(
            parse_time("1e300"),
            TimeParse::Repairable(u64::MAX, DefectKind::TimestampOutOfRange)
        );
        assert_eq!(parse_time("t0"), TimeParse::Bad(DefectKind::MalformedLine));
    }
}
