//! Streaming action-log ingestion and bounded-memory episode assembly.
//!
//! The legacy path (`read_log` → `ActionLog::from_actions`) materializes
//! every raw action — duplicates included — before grouping. This parser
//! folds each record straight into a per-item, per-user "earliest
//! activation" table, so memory is bounded by the *deduplicated* output
//! (distinct `(item, user)` pairs), not by the raw log; a Digg-style dump
//! where users re-vote the same story costs nothing extra.

use std::io::BufRead;

use inf2vec_diffusion::{ActionLog, Episode, ItemId};
use inf2vec_graph::{DiGraph, NodeId};
use inf2vec_util::error::{DefectKind, IngestError};
use inf2vec_util::hash::{fx_hashmap, FxHashMap};

use crate::collect::Collector;
use crate::idmap::IdMap;
use crate::lines::LineStream;
use crate::parse::{lookup_id, parse_id, parse_time, TimeParse};
use crate::policy::{IdMode, IngestConfig};
use crate::report::IngestReport;

/// Per-user earliest activation: time plus the arrival index of the kept
/// record (the tie-breaker that reproduces `Episode::new`'s stable-sort
/// semantics exactly).
type UserTable = FxHashMap<u32, (u64, u64)>;

/// Ingests a `user item time` action log under the configured policy,
/// cross-validating every user against `graph` (dangling users are a
/// defect, not a panic).
///
/// In `Remap` mode `users` must be the map built while ingesting the edge
/// list — users are *looked up*, never interned, so a log-only user is a
/// [`DefectKind::DanglingNode`] exactly like an out-of-range dense id.
pub(crate) fn ingest_actions<R: BufRead>(
    r: R,
    cfg: &IngestConfig,
    graph: &DiGraph,
    users: Option<&IdMap>,
    items: Option<&mut IdMap>,
) -> Result<(ActionLog, IngestReport), IngestError> {
    let mut col = Collector::new("actions", cfg);
    let mut stream = LineStream::new(r);
    let mut by_item: FxHashMap<u32, UserTable> = fx_hashmap();
    let mut items = items;
    let mut seq: u64 = 0;

    while let Some((line_no, line)) = stream.next_line()? {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        col.report.records += 1;

        let mut parts = trimmed.split_whitespace();
        let fields = (parts.next(), parts.next(), parts.next(), parts.next());
        let (u_tok, i_tok, t_tok) = match fields {
            (Some(u), Some(i), Some(t), None) => (u, i, t),
            _ => {
                col.fatal(DefectKind::MalformedLine, line_no, trimmed)?;
                continue;
            }
        };

        // User: must already exist in the graph's id space.
        let user = match cfg.id_mode {
            IdMode::Preserve => parse_id(u_tok, IdMode::Preserve, None),
            IdMode::Remap => lookup_id(u_tok, users.expect("Remap mode requires the user IdMap")),
        };
        let user = match user {
            Ok(u) if (u as usize) < graph.node_count() as usize => u,
            Ok(_) => {
                col.fatal(DefectKind::DanglingNode, line_no, trimmed)?;
                continue;
            }
            Err(kind) => {
                col.fatal(kind, line_no, trimmed)?;
                continue;
            }
        };

        // Item: its own namespace, interned freely in Remap mode.
        let item = match parse_id(i_tok, cfg.id_mode, items.as_deref_mut()) {
            Ok(i) => i,
            Err(kind) => {
                col.fatal(kind, line_no, trimmed)?;
                continue;
            }
        };

        // Timestamp: integers pass, floats classify, Repair clamps.
        let (time, time_repaired) = match parse_time(t_tok) {
            TimeParse::Ok(t) => (t, false),
            TimeParse::Repairable(clamped, kind) => {
                if col.repairable(kind, line_no, trimmed)? {
                    (clamped, true)
                } else {
                    continue;
                }
            }
            TimeParse::Bad(kind) => {
                col.fatal(kind, line_no, trimmed)?;
                continue;
            }
        };

        // Fold into the earliest-activation table (Episode::new semantics:
        // keep the earliest time; on ties the first arrival wins).
        seq += 1;
        match by_item.entry(item).or_default().entry(user) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                col.normalized(DefectKind::DuplicateActivation, line_no, trimmed);
                if time < slot.get().0 {
                    slot.insert((time, seq));
                }
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert((time, seq));
                if !time_repaired {
                    col.report.records_ok += 1;
                }
            }
        }
    }

    // Assemble episodes in ascending item order; inside an episode sort by
    // (time, arrival) — bit-identical to `Episode::new` over the raw
    // record stream.
    let mut item_ids: Vec<u32> = by_item.keys().copied().collect();
    item_ids.sort_unstable();
    let episodes: Vec<Episode> = item_ids
        .into_iter()
        .map(|item| {
            let table = by_item.remove(&item).expect("key present");
            let mut acts: Vec<(u64, u64, u32)> =
                table.into_iter().map(|(u, (t, s))| (t, s, u)).collect();
            acts.sort_unstable();
            Episode::new(
                ItemId(item),
                acts.into_iter().map(|(t, _, u)| (NodeId(u), t)).collect(),
            )
        })
        .collect();

    let report = col.finish(stream.lines(), stream.bytes());
    Ok((ActionLog::from_episodes(episodes), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ErrorPolicy;
    use inf2vec_graph::GraphBuilder;

    fn graph(n: u32) -> DiGraph {
        GraphBuilder::with_nodes(n).build()
    }

    fn ingest(
        text: &[u8],
        policy: ErrorPolicy,
        n: u32,
    ) -> Result<(ActionLog, IngestReport), IngestError> {
        let cfg = IngestConfig {
            policy,
            ..IngestConfig::default()
        };
        ingest_actions(text, &cfg, &graph(n), None, None)
    }

    #[test]
    fn strict_matches_legacy_reader_on_clean_input() {
        let text = b"# actions: 4\n0\t0\t5\n1\t0\t2\n2\t1\t9\n0\t1\t1\n";
        let (log, report) = ingest(text, ErrorPolicy::Strict, 4).unwrap();
        let legacy = inf2vec_diffusion::dataset::read_log(text.as_slice()).unwrap();
        assert_eq!(log.episodes(), legacy.episodes());
        assert_eq!(report.records_ok, 4);
        assert_eq!(report.total_defects(), 0);
    }

    #[test]
    fn duplicate_activation_keeps_earliest_and_counts() {
        let text = b"0 0 30\n1 0 10\n0 0 5\n2 0 20\n";
        let (log, report) = ingest(text, ErrorPolicy::Strict, 4).unwrap();
        assert_eq!(report.count(DefectKind::DuplicateActivation), 1);
        let e = &log.episodes()[0];
        let users: Vec<u32> = e.users().map(|u| u.0).collect();
        assert_eq!(users, vec![0, 1, 2]); // user 0's earliest is t=5
        assert_eq!(e.time_of(NodeId(0)), Some(5));
    }

    #[test]
    fn strict_aborts_on_dangling_node() {
        let err = ingest(b"9 0 1\n", ErrorPolicy::Strict, 4).unwrap_err();
        assert!(
            matches!(
                err,
                IngestError::Defect {
                    kind: DefectKind::DanglingNode,
                    line: 1,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn skip_drops_dangling_and_junk() {
        let text = b"0 0 1\n9 0 2\nnot a record\n1 0 NaN\n1 0 3\n";
        let (log, report) = ingest(text, ErrorPolicy::skip(10), 4).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.episodes()[0].len(), 2);
        assert_eq!(report.count(DefectKind::DanglingNode), 1);
        assert_eq!(report.count(DefectKind::MalformedLine), 1);
        assert_eq!(report.count(DefectKind::NonFiniteTimestamp), 1);
        assert_eq!(report.quarantined, 3);
    }

    #[test]
    fn repair_clamps_timestamps_skip_drops_them() {
        let text = b"0 0 -5\n1 0 2.75\n2 0 10\n";
        let (log, report) = ingest(text, ErrorPolicy::Repair, 4).unwrap();
        let e = &log.episodes()[0];
        assert_eq!(e.time_of(NodeId(0)), Some(0)); // clamped from -5
        assert_eq!(e.time_of(NodeId(1)), Some(2)); // truncated from 2.75
        assert_eq!(report.repaired, 2);
        assert_eq!(report.count(DefectKind::TimestampOutOfRange), 2);

        let (log, report) = ingest(text, ErrorPolicy::skip(10), 4).unwrap();
        assert_eq!(log.episodes()[0].len(), 1); // only the clean record
        assert_eq!(report.quarantined, 2);
    }

    #[test]
    fn remap_users_are_looked_up_not_interned() {
        let mut users = IdMap::new();
        users.intern(4000019);
        users.intern(17);
        let cfg = IngestConfig {
            policy: ErrorPolicy::skip(10),
            id_mode: IdMode::Remap,
            ..IngestConfig::default()
        };
        let mut items = IdMap::new();
        let (log, report) = ingest_actions(
            b"4000019 900 1\n17 900 2\n555 900 3\n".as_slice(),
            &cfg,
            &graph(2),
            Some(&users),
            Some(&mut items),
        )
        .unwrap();
        assert_eq!(report.count(DefectKind::DanglingNode), 1);
        assert_eq!(log.episodes()[0].len(), 2);
        assert_eq!(items.external(0), Some(900));
        // Log-only user 555 was not interned.
        assert_eq!(users.get(555), None);
    }
}
