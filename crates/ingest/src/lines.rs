//! Byte-level line streaming with defensive decoding.
//!
//! Real crawl dumps arrive with CRLF endings, UTF-8 BOMs from Windows
//! exports, invalid UTF-8 from transport corruption, and NUL noise. The
//! stream reads raw bytes (`read_until`), strips the line terminator and a
//! leading BOM, lossy-decodes the rest, and counts bytes/lines — so the
//! parsers above it only ever see `&str` and can never panic on encoding.

use std::io::{self, BufRead};

/// Streams physical lines out of a `BufRead`, tracking line numbers and
/// byte throughput.
#[derive(Debug)]
pub(crate) struct LineStream<R> {
    r: R,
    raw: Vec<u8>,
    text: String,
    line_no: u64,
    bytes: u64,
    first: bool,
    terminated: bool,
}

impl<R: BufRead> LineStream<R> {
    pub(crate) fn new(r: R) -> Self {
        Self::with_bom_strip(r, true)
    }

    /// A stream that only strips a BOM when `strip_bom` is set — resumed
    /// tails start mid-file, where a BOM-looking prefix is real data.
    pub(crate) fn with_bom_strip(r: R, strip_bom: bool) -> Self {
        Self {
            r,
            raw: Vec::new(),
            text: String::new(),
            line_no: 0,
            bytes: 0,
            first: strip_bom,
            terminated: false,
        }
    }

    /// The next physical line (1-based number, terminator stripped), or
    /// `None` at EOF. Invalid UTF-8 is replaced, never fatal.
    pub(crate) fn next_line(&mut self) -> io::Result<Option<(u64, &str)>> {
        self.raw.clear();
        let n = self.r.read_until(b'\n', &mut self.raw)?;
        if n == 0 {
            return Ok(None);
        }
        self.bytes += n as u64;
        self.line_no += 1;
        let mut bytes: &[u8] = &self.raw;
        self.terminated = bytes.ends_with(b"\n");
        if bytes.ends_with(b"\n") {
            bytes = &bytes[..bytes.len() - 1];
        }
        if bytes.ends_with(b"\r") {
            bytes = &bytes[..bytes.len() - 1];
        }
        if self.first {
            self.first = false;
            if bytes.starts_with(b"\xef\xbb\xbf") {
                bytes = &bytes[3..];
            }
        }
        self.text.clear();
        match std::str::from_utf8(bytes) {
            Ok(s) => self.text.push_str(s),
            Err(_) => self.text.push_str(&String::from_utf8_lossy(bytes)),
        }
        Ok(Some((self.line_no, &self.text)))
    }

    /// Physical lines seen so far.
    pub(crate) fn lines(&self) -> u64 {
        self.line_no
    }

    /// Bytes consumed so far.
    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether the most recent line ended with a `\n` terminator. A tail
    /// reader uses this to tell a complete record from a partial line
    /// still being appended by the writer.
    pub(crate) fn last_terminated(&self) -> bool {
        self.terminated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(input: &[u8]) -> Vec<(u64, String)> {
        let mut s = LineStream::new(input);
        let mut out = Vec::new();
        while let Some((no, line)) = s.next_line().unwrap() {
            out.push((no, line.to_string()));
        }
        out
    }

    #[test]
    fn strips_bom_crlf_and_counts() {
        let input = b"\xef\xbb\xbf0\t1\r\n1\t2\nlast";
        let lines = collect(input);
        assert_eq!(
            lines,
            vec![
                (1, "0\t1".to_string()),
                (2, "1\t2".to_string()),
                (3, "last".to_string()),
            ]
        );
        let mut s = LineStream::new(input.as_slice());
        while s.next_line().unwrap().is_some() {}
        assert_eq!(s.bytes(), input.len() as u64);
        assert_eq!(s.lines(), 3);
    }

    #[test]
    fn bom_only_stripped_on_first_line() {
        let lines = collect(b"a\n\xef\xbb\xbfb\n");
        assert_eq!(lines[1].1, "\u{feff}b");
    }

    #[test]
    fn invalid_utf8_is_replaced_not_fatal() {
        let lines = collect(b"\xff\xfe junk\n0 1\n");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].1.contains('\u{fffd}'));
        assert_eq!(lines[1].1, "0 1");
    }

    #[test]
    fn interleaved_nuls_survive_as_text() {
        let lines = collect(b"0\x001\n");
        assert_eq!(lines[0].1, "0\u{0}1");
    }
}
