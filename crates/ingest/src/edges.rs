//! Streaming edge-list ingestion.

use std::io::BufRead;

use inf2vec_graph::{DiGraph, GraphBuilder, NodeId};
use inf2vec_util::error::{DefectKind, IngestError};
use inf2vec_util::hash::fx_hashset;

use crate::collect::Collector;
use crate::idmap::IdMap;
use crate::lines::LineStream;
use crate::parse::parse_id;
use crate::policy::{IdMode, IngestConfig};
use crate::report::IngestReport;

/// Ingests a SNAP-style edge list under the configured policy.
///
/// Comment lines are skipped; a `# nodes: N` header is honored in
/// `Preserve` mode (it declares the dense universe, so isolated nodes
/// survive) and ignored in `Remap` mode (the dense universe is defined by
/// the ids actually seen). Duplicate edges and self-loops are counted and
/// collapsed under every policy, exactly as `GraphBuilder::build` always
/// did.
pub(crate) fn ingest_edges<R: BufRead>(
    r: R,
    cfg: &IngestConfig,
    users: Option<&mut IdMap>,
) -> Result<(DiGraph, IngestReport), IngestError> {
    let mut col = Collector::new("edges", cfg);
    let mut stream = LineStream::new(r);
    let mut seen = fx_hashset::<(u32, u32)>();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut declared_nodes: u32 = 0;
    let mut users = users;

    while let Some((line_no, line)) = stream.next_line()? {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            if cfg.id_mode == IdMode::Preserve {
                if let Some(n) = rest.trim().strip_prefix("nodes:") {
                    if let Ok(n) = n.trim().parse::<u32>() {
                        declared_nodes = declared_nodes.max(n);
                    }
                }
            }
            continue;
        }
        col.report.records += 1;

        let mut parts = trimmed.split_whitespace();
        let (u_tok, v_tok) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(v), None) => (u, v),
            _ => {
                col.fatal(DefectKind::MalformedLine, line_no, trimmed)?;
                continue;
            }
        };
        let u = match parse_id(u_tok, cfg.id_mode, users.as_deref_mut()) {
            Ok(u) => u,
            Err(kind) => {
                col.fatal(kind, line_no, trimmed)?;
                continue;
            }
        };
        let v = match parse_id(v_tok, cfg.id_mode, users.as_deref_mut()) {
            Ok(v) => v,
            Err(kind) => {
                col.fatal(kind, line_no, trimmed)?;
                continue;
            }
        };
        if u == v {
            col.normalized(DefectKind::SelfLoop, line_no, trimmed);
            continue;
        }
        if !seen.insert((u, v)) {
            col.normalized(DefectKind::DuplicateEdge, line_no, trimmed);
            continue;
        }
        edges.push((u, v));
        col.report.records_ok += 1;
    }

    let mut b = GraphBuilder::with_nodes(declared_nodes);
    b.reserve_edges(edges.len());
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    let report = col.finish(stream.lines(), stream.bytes());
    Ok((b.build(), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ErrorPolicy;

    fn ingest(text: &[u8], policy: ErrorPolicy) -> Result<(DiGraph, IngestReport), IngestError> {
        let cfg = IngestConfig {
            policy,
            ..IngestConfig::default()
        };
        ingest_edges(text, &cfg, None)
    }

    #[test]
    fn strict_matches_legacy_reader_on_clean_input() {
        let text = b"# nodes: 6\n# edges: 3\n0\t1\n1\t2\n4\t0\n";
        let (g, report) = ingest(text, ErrorPolicy::Strict).unwrap();
        let legacy = inf2vec_graph::io::read_edge_list(text.as_slice()).unwrap();
        assert_eq!(g, legacy);
        assert_eq!(g.node_count(), 6);
        assert_eq!(report.records_ok, 3);
        assert_eq!(report.total_defects(), 0);
        assert_eq!(report.bytes, text.len() as u64);
    }

    #[test]
    fn strict_aborts_on_junk() {
        let err = ingest(b"0 1\njunk line\n", ErrorPolicy::Strict).unwrap_err();
        match err {
            IngestError::Defect {
                kind: DefectKind::MalformedLine,
                line: 2,
                ..
            } => {}
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn skip_quarantines_and_recovers() {
        let text = b"0 1\njunk\n1 2\n0 1\n3 3\n99999999999999999999999999 0\n2 0\n";
        let (g, report) = ingest(text, ErrorPolicy::skip(10)).unwrap();
        assert_eq!(g.edge_count(), 3); // 0->1, 1->2, 2->0; dup/self dropped
        assert_eq!(report.count(DefectKind::MalformedLine), 1);
        assert_eq!(report.count(DefectKind::DuplicateEdge), 1);
        assert_eq!(report.count(DefectKind::SelfLoop), 1);
        assert_eq!(report.count(DefectKind::IdOverflow), 1);
        assert_eq!(report.quarantined, 2);
        assert_eq!(report.normalized, 2);
        assert_eq!(report.records_ok, 3);
    }

    #[test]
    fn skip_budget_aborts() {
        let text = b"a\nb\nc\n0 1\n";
        let err = ingest(text, ErrorPolicy::skip(1)).unwrap_err();
        assert!(matches!(err, IngestError::BudgetExceeded { quarantined: 2, .. }), "{err}");
    }

    #[test]
    fn remap_interns_sparse_ids() {
        let mut users = IdMap::new();
        let cfg = IngestConfig {
            id_mode: IdMode::Remap,
            ..IngestConfig::default()
        };
        let (g, _) = ingest_edges(
            b"4000019 17\n17 31337\n".as_slice(),
            &cfg,
            Some(&mut users),
        )
        .unwrap();
        assert_eq!(g.node_count(), 3);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(2)));
        assert_eq!(users.external(2), Some(31337));
    }

    #[test]
    fn bom_and_crlf_tolerated() {
        let text = b"\xef\xbb\xbf# nodes: 3\r\n0\t1\r\n1 2\r\n";
        let (g, report) = ingest(text, ErrorPolicy::Strict).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(report.total_defects(), 0);
    }

    #[test]
    fn header_after_edges_still_grows() {
        let (g, _) = ingest(b"0 1\n# nodes: 10\n", ErrorPolicy::Strict).unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 1);
    }
}
