//! Error policies and ingestion configuration.

use inf2vec_obs::Telemetry;

/// What the loader does when a record is defective.
///
/// | policy | fatal defect | repairable defect | normalization defect |
/// |---|---|---|---|
/// | `Strict` | typed error, abort | typed error, abort | normalize + count |
/// | `Skip`   | quarantine (budgeted) | quarantine (budgeted) | normalize + count |
/// | `Repair` | quarantine (unbounded) | fix + count as repaired | normalize + count |
///
/// *Fatal* defects are those [`DefectKind::is_fatal_in_strict`] returns
/// true for; the only *repairable* one is
/// [`DefectKind::TimestampOutOfRange`] (clamped into `[0, u64::MAX]` /
/// truncated to an integer). Normalization defects (duplicate edges,
/// self-loops, duplicate activations) are collapsed under every policy,
/// exactly as `GraphBuilder::build` and `Episode::new` always did — the
/// ingest layer just counts the collapse.
///
/// [`DefectKind::is_fatal_in_strict`]: inf2vec_util::error::DefectKind::is_fatal_in_strict
/// [`DefectKind::TimestampOutOfRange`]: inf2vec_util::error::DefectKind::TimestampOutOfRange
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorPolicy {
    /// Abort on the first fatal defect with a typed error — the legacy
    /// `read_edge_list`/`read_log` behaviour.
    Strict,
    /// Quarantine defective records and keep going, aborting once the
    /// budget is exhausted.
    Skip {
        /// Maximum quarantined records before aborting.
        max_errors: u64,
        /// Maximum quarantined/seen ratio in `[0, 1]`, checked once at
        /// least [`RATIO_MIN_RECORDS`] records have been seen (so a bad
        /// first line cannot abort a billion-line load).
        max_error_ratio: f64,
    },
    /// Best-effort fixes (clamp out-of-range timestamps, drop what cannot
    /// be fixed) with no error budget.
    Repair,
}

/// Records to see before [`ErrorPolicy::Skip`]'s ratio bound is enforced.
pub const RATIO_MIN_RECORDS: u64 = 64;

impl ErrorPolicy {
    /// A `Skip` policy bounded only by an absolute error count.
    pub fn skip(max_errors: u64) -> Self {
        ErrorPolicy::Skip {
            max_errors,
            max_error_ratio: 1.0,
        }
    }

    /// Stable lowercase name used in reports and telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorPolicy::Strict => "strict",
            ErrorPolicy::Skip { .. } => "skip",
            ErrorPolicy::Repair => "repair",
        }
    }
}

impl std::str::FromStr for ErrorPolicy {
    type Err = String;

    /// Parses the CLI spellings `strict`, `skip`, `repair`. `skip` gets an
    /// effectively unbounded budget; tighten it with
    /// [`ErrorPolicy::skip`] / the `--max-errors` flag.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "strict" => Ok(ErrorPolicy::Strict),
            "skip" => Ok(ErrorPolicy::skip(u64::MAX)),
            "repair" => Ok(ErrorPolicy::Repair),
            other => Err(format!(
                "unknown error policy {other:?} (expected strict, skip, or repair)"
            )),
        }
    }
}

/// How node/item id tokens map into the dense `u32` index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdMode {
    /// Ids are already dense `0..n` indices (anything our own
    /// `write_edge_list`/`write_log` produced): parse as `u32`, larger
    /// values are [`IdOverflow`](inf2vec_util::error::DefectKind::IdOverflow).
    Preserve,
    /// Ids are sparse external identifiers (SNAP crawls): parse as `u64`
    /// and intern through an [`IdMap`](crate::IdMap) in first-seen order.
    Remap,
}

/// Everything the [`Ingestor`](crate::Ingestor) needs to know.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Defect handling policy.
    pub policy: ErrorPolicy,
    /// Id-space interpretation.
    pub id_mode: IdMode,
    /// Offending-line samples kept per defect kind (and mirrored as
    /// `record_quarantined` events).
    pub max_samples_per_defect: usize,
    /// Metrics/event destination.
    pub telemetry: Telemetry,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            policy: ErrorPolicy::Strict,
            id_mode: IdMode::Preserve,
            max_samples_per_defect: 8,
            telemetry: Telemetry::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_cli_spellings() {
        assert_eq!("strict".parse::<ErrorPolicy>().unwrap(), ErrorPolicy::Strict);
        assert_eq!("repair".parse::<ErrorPolicy>().unwrap(), ErrorPolicy::Repair);
        assert!(matches!(
            "skip".parse::<ErrorPolicy>().unwrap(),
            ErrorPolicy::Skip { max_errors: u64::MAX, .. }
        ));
        assert!("lenient".parse::<ErrorPolicy>().is_err());
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [ErrorPolicy::Strict, ErrorPolicy::skip(3), ErrorPolicy::Repair] {
            assert_eq!(p.name().parse::<ErrorPolicy>().unwrap().name(), p.name());
        }
    }
}
