//! Dataset observations (§III-A): Table I statistics, the source/target
//! frequency distributions of Figures 1–2, and the active-friend CDF of
//! Figure 3.

use inf2vec_graph::{DiGraph, NodeId};
use inf2vec_util::hash::fx_hashmap;
use inf2vec_util::FxHashMap;

use crate::action::Episode;
use crate::dataset::Dataset;
use crate::pairs::pair_role_counts;

/// Table I row: dataset-level counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    /// Number of users (graph nodes).
    pub users: u32,
    /// Number of directed edges.
    pub edges: usize,
    /// Number of items with at least one action.
    pub items: usize,
    /// Total number of actions.
    pub actions: usize,
}

/// Computes Table I statistics.
pub fn dataset_stats(dataset: &Dataset) -> DatasetStats {
    DatasetStats {
        users: dataset.graph.node_count(),
        edges: dataset.graph.edge_count(),
        items: dataset.log.len(),
        actions: dataset.log.action_count(),
    }
}

/// Frequency-of-frequency histogram: for per-user counts, returns sorted
/// `(count, number of users with that count)` pairs — the quantity plotted
/// in Figures 1 and 2.
pub fn frequency_histogram(counts: &FxHashMap<u32, u64>) -> Vec<(u64, u64)> {
    let mut hist = fx_hashmap::<u64, u64>();
    for &c in counts.values() {
        *hist.entry(c).or_insert(0) += 1;
    }
    let mut out: Vec<(u64, u64)> = hist.into_iter().collect();
    out.sort_unstable();
    out
}

/// The source- and target-frequency histograms over a set of episodes
/// (Figures 1–2) plus the total pair count.
#[derive(Debug, Clone)]
pub struct PairDistributions {
    /// `(times a user was a source, #users)` sorted ascending.
    pub source_hist: Vec<(u64, u64)>,
    /// `(times a user was a target, #users)` sorted ascending.
    pub target_hist: Vec<(u64, u64)>,
    /// Total influence pairs.
    pub total_pairs: u64,
}

/// Computes both pair-role distributions in one pass.
pub fn pair_distributions<'a, I: IntoIterator<Item = &'a Episode>>(
    graph: &DiGraph,
    episodes: I,
) -> PairDistributions {
    let roles = pair_role_counts(graph, episodes);
    PairDistributions {
        source_hist: frequency_histogram(&roles.source),
        target_hist: frequency_histogram(&roles.target),
        total_pairs: roles.total,
    }
}

/// Maximum-likelihood power-law exponent for a tail sample (Clauset et al.
/// continuous approximation): `α = 1 + n / Σ ln(x_i / (xmin - 0.5))`.
///
/// Applied to a frequency histogram, this estimates the slope the paper
/// eyeballs in Figures 1–2. The continuous approximation is biased low for
/// discrete data with small `xmin` (at `xmin = 1` the bias can reach ~0.5);
/// use `xmin >= 5` when quoting exponents. Returns `None` when fewer than
/// two observations lie in the tail.
pub fn power_law_alpha(hist: &[(u64, u64)], xmin: u64) -> Option<f64> {
    let mut n = 0u64;
    let mut sum_ln = 0.0f64;
    for &(x, cnt) in hist {
        if x >= xmin {
            n += cnt;
            sum_ln += cnt as f64 * (x as f64 / (xmin as f64 - 0.5)).ln();
        }
    }
    if n < 2 || sum_ln <= 0.0 {
        None
    } else {
        Some(1.0 + n as f64 / sum_ln)
    }
}

/// Figure 3: distribution of the number of friends already active when a
/// user adopts.
#[derive(Debug, Clone)]
pub struct ActiveFriendCdf {
    /// `hist[x]` = number of adoptions with exactly `x` previously-active
    /// in-neighbors (truncated at the largest observed `x`).
    pub hist: Vec<u64>,
    /// Total adoption events.
    pub total: u64,
}

impl ActiveFriendCdf {
    /// CDF value at `x`: fraction of adoptions with at most `x` active
    /// friends.
    pub fn cdf(&self, x: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let cum: u64 = self.hist.iter().take(x + 1).sum();
        cum as f64 / self.total as f64
    }

    /// The `(x, cdf(x))` series for plotting.
    pub fn series(&self) -> Vec<(f64, f64)> {
        (0..self.hist.len())
            .map(|x| (x as f64, self.cdf(x)))
            .collect()
    }
}

/// Computes the active-friend histogram over episodes: for each adoption
/// `(v, t)`, counts v's in-neighbors that adopted the same item strictly
/// before `t`.
pub fn active_friend_cdf<'a, I: IntoIterator<Item = &'a Episode>>(
    graph: &DiGraph,
    episodes: I,
) -> ActiveFriendCdf {
    let mut hist: Vec<u64> = Vec::new();
    let mut total = 0u64;
    for e in episodes {
        let times: FxHashMap<u32, u64> =
            e.activations().iter().map(|&(u, t)| (u.0, t)).collect();
        for &(v, tv) in e.activations() {
            let mut x = 0usize;
            for &u in graph.in_neighbors(v) {
                if times.get(&u).is_some_and(|&tu| tu < tv) {
                    x += 1;
                }
            }
            if x >= hist.len() {
                hist.resize(x + 1, 0);
            }
            hist[x] += 1;
            total += 1;
        }
    }
    ActiveFriendCdf { hist, total }
}

/// Convenience: the in-neighbors of `v` active strictly before time `tv`
/// within an episode, in *their* activation order — the `S_v` sets used by
/// the activation-prediction task and Eq. 7/8.
pub fn active_parents(
    graph: &DiGraph,
    episode_times: &FxHashMap<u32, u64>,
    v: NodeId,
    tv: u64,
) -> Vec<(NodeId, u64)> {
    let mut out: Vec<(NodeId, u64)> = graph
        .in_neighbors(v)
        .iter()
        .filter_map(|&u| {
            episode_times
                .get(&u)
                .filter(|&&tu| tu < tv)
                .map(|&tu| (NodeId(u), tu))
        })
        .collect();
    out.sort_by_key(|&(_, t)| t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionLog, ItemId};
    use inf2vec_graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn sample() -> Dataset {
        // 0 -> 1 -> 2, 0 -> 2
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(n(0), n(1));
        b.add_edge(n(1), n(2));
        b.add_edge(n(0), n(2));
        let episodes = vec![
            Episode::new(ItemId(0), vec![(n(0), 0), (n(1), 1), (n(2), 2)]),
            Episode::new(ItemId(1), vec![(n(2), 0), (n(0), 1)]),
        ];
        Dataset::new(b.build(), ActionLog::from_episodes(episodes), "sample")
    }

    #[test]
    fn table1_counts() {
        let s = dataset_stats(&sample());
        assert_eq!(
            s,
            DatasetStats {
                users: 3,
                edges: 3,
                items: 2,
                actions: 5
            }
        );
    }

    #[test]
    fn pair_distributions_counts() {
        let d = sample();
        let dist = pair_distributions(&d.graph, d.log.episodes());
        // Episode 0 pairs: (0->1), (1->2), (0->2). Episode 1: none (no edge
        // 2->0 in graph... wait, 0 adopts after 2 but the edge is 0->2).
        assert_eq!(dist.total_pairs, 3);
        // Source counts: user0 twice, user1 once -> hist [(1,1),(2,1)].
        assert_eq!(dist.source_hist, vec![(1, 1), (2, 1)]);
        // Target counts: user1 once, user2 twice.
        assert_eq!(dist.target_hist, vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn alpha_estimate_on_synthetic_power_law() {
        // Build a histogram from an exact Zipf tail: count(x) ∝ x^-2.5.
        let hist: Vec<(u64, u64)> = (1..=500u64)
            .map(|x| (x, ((1e8 * (x as f64).powf(-2.5)).round() as u64).max(1)))
            .collect();
        // xmin = 5: the continuous approximation is accurate there (at
        // xmin = 1 it is biased low by ~0.5 for discrete data).
        let alpha = power_law_alpha(&hist, 5).expect("defined");
        assert!((alpha - 2.5).abs() < 0.1, "alpha = {alpha}");
    }

    #[test]
    fn alpha_undefined_for_tiny_samples() {
        assert!(power_law_alpha(&[], 1).is_none());
        assert!(power_law_alpha(&[(1, 1)], 1).is_none());
        // All mass at xmin => sum_ln small but positive... actually ln(1/0.5)>0.
        assert!(power_law_alpha(&[(1, 100)], 1).is_some());
    }

    #[test]
    fn cdf_matches_hand_count() {
        let d = sample();
        let cdf = active_friend_cdf(&d.graph, d.log.episodes());
        // Adoptions: e0: u0 (0 active friends), u1 (1: u0), u2 (2: u0,u1);
        // e1: u2 (0), u0 (0).
        assert_eq!(cdf.total, 5);
        assert_eq!(cdf.hist, vec![3, 1, 1]);
        assert!((cdf.cdf(0) - 0.6).abs() < 1e-12);
        assert!((cdf.cdf(1) - 0.8).abs() < 1e-12);
        assert!((cdf.cdf(2) - 1.0).abs() < 1e-12);
        assert!((cdf.cdf(99) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_empty() {
        let g = GraphBuilder::with_nodes(1).build();
        let cdf = active_friend_cdf(&g, std::iter::empty());
        assert_eq!(cdf.total, 0);
        assert_eq!(cdf.cdf(0), 0.0);
        assert!(cdf.series().is_empty());
    }

    #[test]
    fn active_parents_ordered_by_time() {
        let d = sample();
        let e = &d.log.episodes()[0];
        let times: FxHashMap<u32, u64> =
            e.activations().iter().map(|&(u, t)| (u.0, t)).collect();
        let parents = active_parents(&d.graph, &times, n(2), 2);
        let ids: Vec<u32> = parents.iter().map(|&(u, _)| u.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
