//! Synthetic citation network for the Table VI case study.
//!
//! The paper's case study uses DBLP data-engineering papers: "if a paper
//! cites a reference, the authors of the reference influence the authors of
//! the paper", yielding 138K author-to-author influence relationships over
//! 4,259 authors. Relationships are split 80/20; an embedding model (trained
//! on first-order pairs only, Eq. 4) and the conventional ST model (scored
//! by Monte-Carlo IC) each predict the top-10 researchers who will cite a
//! test author.
//!
//! This generator reproduces the two properties the comparison hinges on:
//! *sparsity* (most author pairs have 0–2 observed citations) and *hub
//! authors* (productivity and citation counts are heavy-tailed), arranged
//! inside research communities so latent structure exists for embeddings to
//! recover.

use inf2vec_graph::{DiGraph, GraphBuilder, NodeId};
use inf2vec_util::rng::{split_seed, Xoshiro256pp};
use inf2vec_util::AliasTable;

/// Parameters for citation-network generation.
#[derive(Debug, Clone)]
pub struct CitationConfig {
    /// Number of authors.
    pub n_authors: u32,
    /// Number of papers to generate.
    pub n_papers: u32,
    /// Number of research communities.
    pub n_communities: u32,
    /// References per paper (expected).
    pub refs_per_paper: f64,
    /// Probability a reference stays within the citing paper's community.
    pub community_affinity: f64,
    /// Zipf exponent for author productivity (larger = flatter).
    pub productivity_exponent: f64,
}

impl CitationConfig {
    /// Default sized roughly like the paper's filtered DBLP slice
    /// (4,345 papers / 4,259 authors → here scaled to run in seconds).
    pub fn dblp_like() -> Self {
        Self {
            n_authors: 1200,
            n_papers: 2500,
            n_communities: 12,
            refs_per_paper: 12.0,
            community_affinity: 0.85,
            productivity_exponent: 1.1,
        }
    }

    /// Small preset for tests.
    pub fn tiny() -> Self {
        Self {
            n_authors: 120,
            n_papers: 300,
            n_communities: 4,
            refs_per_paper: 6.0,
            community_affinity: 0.85,
            productivity_exponent: 1.1,
        }
    }
}

/// A list of `(cited author, citing author)` relationships.
pub type Relationships = Vec<(NodeId, NodeId)>;

/// A generated citation dataset.
#[derive(Debug, Clone)]
pub struct CitationData {
    /// Influence relationships `(cited author → citing author)`, with
    /// multiplicity (one entry per citation event).
    pub relationships: Relationships,
    /// Number of authors.
    pub n_authors: u32,
    /// Community of each author.
    pub communities: Vec<u32>,
}

impl CitationData {
    /// Splits relationships into train/test by the given training fraction.
    pub fn split(&self, train_frac: f64, seed: u64) -> (Relationships, Relationships) {
        assert!((0.0..1.0).contains(&train_frac) && train_frac > 0.0);
        let mut idx: Vec<usize> = (0..self.relationships.len()).collect();
        let mut rng = Xoshiro256pp::new(seed);
        rng.shuffle(&mut idx);
        let cut = ((idx.len() as f64) * train_frac).round() as usize;
        let pick = |slice: &[usize]| slice.iter().map(|&i| self.relationships[i]).collect();
        (pick(&idx[..cut]), pick(&idx[cut..]))
    }

    /// Builds the influence graph (edge `u → v` when v cited u at least
    /// once in `relationships`) for Monte-Carlo scoring.
    pub fn influence_graph(&self, relationships: &[(NodeId, NodeId)]) -> DiGraph {
        let mut b = GraphBuilder::with_nodes(self.n_authors);
        b.reserve_edges(relationships.len());
        for &(u, v) in relationships {
            b.add_edge(u, v);
        }
        b.build()
    }
}

/// Generates a citation dataset. Deterministic per `(config, seed)`.
pub fn generate(config: &CitationConfig, seed: u64) -> CitationData {
    let n = config.n_authors;
    assert!(n >= 10, "need at least 10 authors");
    let mut rng = Xoshiro256pp::new(split_seed(seed, 0xD4));

    // Communities and Zipfian productivity.
    let communities: Vec<u32> = (0..n)
        .map(|_| rng.below(config.n_communities as u64) as u32)
        .collect();
    let mut by_community: Vec<Vec<u32>> = vec![Vec::new(); config.n_communities as usize];
    for (a, &c) in communities.iter().enumerate() {
        by_community[c as usize].push(a as u32);
    }
    let productivity: Vec<f64> = (0..n)
        .map(|a| ((a + 1) as f64).powf(-config.productivity_exponent))
        .collect();

    // Per-community productivity-weighted author samplers.
    let community_tables: Vec<Option<AliasTable>> = by_community
        .iter()
        .map(|members| {
            if members.is_empty() {
                None
            } else {
                let w: Vec<f64> = members.iter().map(|&a| productivity[a as usize]).collect();
                Some(AliasTable::new(&w))
            }
        })
        .collect();
    let global_table = AliasTable::new(&productivity);

    // Papers: each has one author (multi-author papers add noise without
    // changing the comparison; the paper's pipeline also reduces to
    // author-to-author pairs). Each paper cites earlier papers' authors —
    // approximated by citing authors directly, weighted by productivity ×
    // accumulated citation count (preferential attachment in citations).
    let mut cited_count: Vec<f64> = vec![1.0; n as usize];
    let mut relationships = Vec::with_capacity(
        (config.n_papers as f64 * config.refs_per_paper) as usize,
    );
    for _ in 0..config.n_papers {
        let community = rng.below(config.n_communities as u64) as usize;
        let citing = match &community_tables[community] {
            Some(t) => by_community[community][t.sample(&mut rng)],
            None => global_table.sample(&mut rng) as u32,
        };
        let nrefs = poisson_at_least_one(config.refs_per_paper, &mut rng);
        for _ in 0..nrefs {
            // Choose the cited author: mostly in-community, preferential by
            // productivity + citations-so-far.
            let cited = if rng.chance(config.community_affinity)
                && by_community[community].len() > 1
            {
                // Rejection-sample by current citation weight inside the
                // community.
                let members = &by_community[community];
                let mut best = members[rng.index(members.len())];
                for _ in 0..3 {
                    let cand = members[rng.index(members.len())];
                    if cited_count[cand as usize] > cited_count[best as usize] {
                        best = cand;
                    }
                }
                best
            } else {
                global_table.sample(&mut rng) as u32
            };
            if cited == citing {
                continue;
            }
            cited_count[cited as usize] += 1.0;
            relationships.push((NodeId(cited), NodeId(citing)));
        }
    }

    CitationData {
        relationships,
        n_authors: n,
        communities,
    }
}

fn poisson_at_least_one(lambda: f64, rng: &mut Xoshiro256pp) -> u64 {
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.next_f64();
        if p <= l {
            return k.max(1);
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_volume() {
        let c = CitationConfig::tiny();
        let d = generate(&c, 1);
        let expected = c.n_papers as f64 * c.refs_per_paper;
        assert!(
            (d.relationships.len() as f64) > 0.5 * expected,
            "only {} relationships",
            d.relationships.len()
        );
        assert_eq!(d.communities.len(), c.n_authors as usize);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = CitationConfig::tiny();
        assert_eq!(generate(&c, 3).relationships, generate(&c, 3).relationships);
        assert_ne!(generate(&c, 3).relationships, generate(&c, 4).relationships);
    }

    #[test]
    fn split_partitions() {
        let d = generate(&CitationConfig::tiny(), 2);
        let (train, test) = d.split(0.8, 7);
        assert_eq!(train.len() + test.len(), d.relationships.len());
        assert!(!test.is_empty());
        let ratio = train.len() as f64 / d.relationships.len() as f64;
        assert!((ratio - 0.8).abs() < 0.01);
    }

    #[test]
    fn influence_graph_covers_relationships() {
        let d = generate(&CitationConfig::tiny(), 2);
        let g = d.influence_graph(&d.relationships);
        assert_eq!(g.node_count(), d.n_authors);
        for &(u, v) in d.relationships.iter().take(100) {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn citations_heavy_tailed() {
        let d = generate(&CitationConfig::tiny(), 5);
        let mut counts = vec![0u64; d.n_authors as usize];
        for &(u, _) in &d.relationships {
            counts[u.index()] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = counts.iter().take(12).sum();
        let total: u64 = counts.iter().sum();
        // Top-10% of authors should hold a large share of citations.
        assert!(
            top10 as f64 > 0.3 * total as f64,
            "top 12 authors hold only {top10}/{total}"
        );
    }

    #[test]
    fn no_self_citation_relationships() {
        let d = generate(&CitationConfig::tiny(), 6);
        assert!(d.relationships.iter().all(|&(u, v)| u != v));
    }
}
