//! Per-episode influence propagation networks (Definition 3).
//!
//! For episode `D_i`, the propagation network `G_i = (V_i, E_i)` keeps the
//! adopting users and exactly the social edges that form influence pairs
//! (`(u, v) ∈ E` with `t_u < t_v`). The time constraint makes `G_i` a DAG,
//! and the activation order is a topological order. Inf2vec's local
//! influence context is a restart walk over this structure (§IV-A).

use inf2vec_graph::walk::WalkGraph;
use inf2vec_graph::{DiGraph, NodeId};
use inf2vec_util::hash::fx_hashmap_with_capacity;
use inf2vec_util::FxHashMap;

use crate::action::{Episode, ItemId};

/// A propagation network with dense local node ids in activation order.
#[derive(Debug, Clone)]
pub struct PropagationNetwork {
    /// The item whose diffusion this network records.
    pub item: ItemId,
    /// `local -> global` ids; index order = activation (topological) order.
    nodes: Vec<NodeId>,
    /// Local out-adjacency: `adj[u] = children of u`, each in activation
    /// order (a child always has a larger local id than its parent).
    adj: Vec<Vec<u32>>,
    /// Local in-adjacency: `parents[v]` = local ids of v's influencers.
    parents: Vec<Vec<u32>>,
    /// Total number of influence-pair edges.
    edge_count: usize,
}

impl PropagationNetwork {
    /// Builds the propagation network of `episode` over `graph`.
    ///
    /// Runs in `O(|D| + Σ_v min(d_in(v), |D|))` like pair extraction.
    pub fn build(graph: &DiGraph, episode: &Episode) -> Self {
        let acts = episode.activations();
        let mut local: FxHashMap<u32, u32> = fx_hashmap_with_capacity(acts.len());
        let mut nodes = Vec::with_capacity(acts.len());
        for (i, &(u, _)) in acts.iter().enumerate() {
            local.insert(u.0, i as u32);
            nodes.push(u);
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); acts.len()];
        let mut parents: Vec<Vec<u32>> = vec![Vec::new(); acts.len()];
        let mut edge_count = 0usize;
        for (vi, &(v, tv)) in acts.iter().enumerate() {
            // Activations beyond the graph's node space (users that joined
            // after the graph was built) still occupy propagation-network
            // slots — they participate in co-activation (global) contexts —
            // but contribute no graph edges.
            if v.0 >= graph.node_count() {
                continue;
            }
            for &u in graph.in_neighbors(v) {
                if let Some(&ui) = local.get(&u) {
                    // Strict time order; Episode sorts stably by time, so an
                    // earlier index with equal time does NOT qualify.
                    let tu = acts[ui as usize].1;
                    if tu < tv {
                        adj[ui as usize].push(vi as u32);
                        parents[vi].push(ui);
                        edge_count += 1;
                    }
                }
            }
        }
        Self {
            item: episode.item,
            nodes,
            adj,
            parents,
            edge_count,
        }
    }

    /// Builds the networks of many episodes, timing the batch and
    /// reporting totals through `telemetry`: the build duration lands in
    /// the `inf2vec_propnet_build_seconds` histogram, episode/edge totals
    /// in counters, and one `"propnet"` event summarizes the batch. With a
    /// disabled handle this is exactly a `build` loop.
    pub fn build_all<'a>(
        graph: &DiGraph,
        episodes: impl IntoIterator<Item = &'a Episode>,
        telemetry: &inf2vec_obs::Telemetry,
    ) -> Vec<Self> {
        let span = telemetry.span("inf2vec_propnet_build");
        let nets: Vec<Self> = episodes
            .into_iter()
            .map(|e| Self::build(graph, e))
            .collect();
        let secs = span.finish();
        if telemetry.enabled() {
            let nodes: u64 = nets.iter().map(|n| n.len() as u64).sum();
            let edges: u64 = nets.iter().map(|n| n.edge_count() as u64).sum();
            telemetry.count("inf2vec_propnet_episodes_total", nets.len() as u64);
            telemetry.count("inf2vec_influence_pairs_total", edges);
            telemetry.emit(
                inf2vec_obs::Event::new("propnet")
                    .u64("episodes", nets.len() as u64)
                    .u64("nodes", nodes)
                    .u64("edges", edges)
                    .f64("seconds", secs),
            );
        }
        nets
    }

    /// Number of nodes (= episode adopters).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the episode had no adopters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of influence-pair edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Global id of local node `i`.
    #[inline]
    pub fn global(&self, i: u32) -> NodeId {
        self.nodes[i as usize]
    }

    /// All global node ids in activation (topological) order.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Children (influenced users) of local node `i`.
    #[inline]
    pub fn children(&self, i: u32) -> &[u32] {
        &self.adj[i as usize]
    }

    /// Parents (influencers) of local node `i`.
    #[inline]
    pub fn parents(&self, i: u32) -> &[u32] {
        &self.parents[i as usize]
    }

    /// Iterator over edges as local `(parent, child)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u as u32, v)))
    }
}

impl WalkGraph for PropagationNetwork {
    #[inline]
    fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::episode_pairs;
    use inf2vec_graph::GraphBuilder;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn build_all_matches_individual_builds_and_reports() {
        let (g, e) = figure5();
        let t = inf2vec_obs::Telemetry::with_registry();
        let nets = PropagationNetwork::build_all(&g, std::iter::once(&e), &t);
        assert_eq!(nets.len(), 1);
        let solo = PropagationNetwork::build(&g, &e);
        assert_eq!(nets[0].edge_count(), solo.edge_count());
        let snap = t.snapshot();
        assert!(snap.get("inf2vec_propnet_build_seconds").is_some());
        assert!(snap.get("inf2vec_influence_pairs_total").is_some());
    }

    fn figure5() -> (DiGraph, Episode) {
        let mut b = GraphBuilder::with_nodes(6);
        for (u, v) in [(4, 5), (2, 3), (4, 1), (3, 1), (5, 2)] {
            b.add_edge(n(u), n(v));
        }
        let e = Episode::new(
            ItemId(0),
            vec![(n(4), 0), (n(2), 1), (n(3), 2), (n(5), 3), (n(1), 4)],
        );
        (b.build(), e)
    }

    #[test]
    fn matches_pair_extraction() {
        let (g, e) = figure5();
        let net = PropagationNetwork::build(&g, &e);
        assert_eq!(net.len(), 5);
        assert_eq!(net.edge_count(), 4);
        let mut got: Vec<(u32, u32)> = net
            .edges()
            .map(|(u, v)| (net.global(u).0, net.global(v).0))
            .collect();
        got.sort_unstable();
        let mut expect: Vec<(u32, u32)> =
            episode_pairs(&g, &e).into_iter().map(|(a, b)| (a.0, b.0)).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn activations_beyond_the_graph_are_edgeless_members() {
        // Users 7 and 9 joined after the 6-node graph was built: they hold
        // propnet slots (so co-activation contexts can reach them) but
        // contribute no influence edges, and the build must not panic.
        let (g, _) = figure5();
        let e = Episode::new(
            ItemId(1),
            vec![(n(4), 0), (n(7), 1), (n(2), 2), (n(9), 3)],
        );
        let net = PropagationNetwork::build(&g, &e);
        assert_eq!(net.len(), 4);
        for (u, v) in net.edges() {
            assert!(net.global(u).0 < g.node_count());
            assert!(net.global(v).0 < g.node_count());
        }
        let i7 = (0..net.len() as u32)
            .find(|&i| net.global(i).0 == 7)
            .unwrap();
        assert!(net.parents(i7).is_empty());
    }

    #[test]
    fn activation_order_is_topological() {
        let (g, e) = figure5();
        let net = PropagationNetwork::build(&g, &e);
        for (u, v) in net.edges() {
            assert!(u < v, "edge {u}->{v} violates topological order");
        }
    }

    #[test]
    fn parents_mirror_children() {
        let (g, e) = figure5();
        let net = PropagationNetwork::build(&g, &e);
        for (u, v) in net.edges() {
            assert!(net.parents(v).contains(&u));
        }
        let parent_sum: usize = (0..net.len() as u32).map(|v| net.parents(v).len()).sum();
        assert_eq!(parent_sum, net.edge_count());
    }

    #[test]
    fn empty_episode_ok() {
        let g = GraphBuilder::with_nodes(3).build();
        let net = PropagationNetwork::build(&g, &Episode::new(ItemId(0), vec![]));
        assert!(net.is_empty());
        assert_eq!(net.edge_count(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Propagation networks are sub-DAGs of the social graph whose edges
        /// are exactly the influence pairs, and the local order is
        /// topological (acyclicity by construction).
        #[test]
        fn proptest_definition3(
            raw_edges in prop::collection::vec((0u32..15, 0u32..15), 0..80),
            raw_acts in prop::collection::vec((0u32..15, 0u64..30), 0..30),
        ) {
            let mut b = GraphBuilder::with_nodes(15);
            for &(u, v) in &raw_edges {
                b.add_edge(n(u), n(v));
            }
            let g = b.build();
            let e = Episode::new(ItemId(0), raw_acts.iter().map(|&(u, t)| (n(u), t)).collect());
            let net = PropagationNetwork::build(&g, &e);

            // V_i ⊂ V and E_i ⊂ E.
            for &u in net.nodes() {
                prop_assert!(u.0 < g.node_count());
            }
            for (lu, lv) in net.edges() {
                prop_assert!(lu < lv, "topological order violated");
                prop_assert!(g.has_edge(net.global(lu), net.global(lv)));
            }

            // Edge set equals the influence pairs.
            let mut got: Vec<(u32, u32)> = net
                .edges()
                .map(|(u, v)| (net.global(u).0, net.global(v).0))
                .collect();
            got.sort_unstable();
            let mut expect: Vec<(u32, u32)> =
                episode_pairs(&g, &e).into_iter().map(|(a, b)| (a.0, b.0)).collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}
