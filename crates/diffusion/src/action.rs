//! Actions, diffusion episodes, and the action log.

use inf2vec_graph::NodeId;
use inf2vec_util::hash::fx_hashmap;

/// An item (story, photo, paper, …) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The raw index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// One record of the action log: user `user` adopted item `item` at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Action {
    /// Acting user.
    pub user: NodeId,
    /// Adopted item.
    pub item: ItemId,
    /// Adoption timestamp. Only the order matters; ties are broken by the
    /// record order within an episode.
    pub time: u64,
}

/// A diffusion episode `D_i`: the chronological adoptions of one item.
///
/// Invariants (enforced by [`Episode::new`]): activations are sorted by
/// time (stable) and each user appears at most once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Episode {
    /// The item this episode diffuses.
    pub item: ItemId,
    activations: Vec<(NodeId, u64)>,
}

impl Episode {
    /// Builds an episode, sorting by time and keeping each user's *first*
    /// adoption (later duplicates are dropped — re-votes carry no extra
    /// influence signal under the paper's model).
    ///
    /// Duplicate-activation semantics, precisely: for a user appearing more
    /// than once, the record with the **earliest timestamp** wins; among
    /// records tied on that earliest timestamp, the one **first in the
    /// input** wins (the sort is stable, so input order is the tiebreak).
    /// Any ingestion path that claims byte-identical output with this
    /// constructor (see `inf2vec-ingest`) must reproduce both rules.
    pub fn new(item: ItemId, mut activations: Vec<(NodeId, u64)>) -> Self {
        activations.sort_by_key(|&(_, t)| t);
        let mut seen = inf2vec_util::hash::fx_hashset_with_capacity(activations.len());
        activations.retain(|&(u, _)| seen.insert(u));
        Self { item, activations }
    }

    /// The activations in chronological order.
    #[inline]
    pub fn activations(&self) -> &[(NodeId, u64)] {
        &self.activations
    }

    /// Number of adopting users.
    #[inline]
    pub fn len(&self) -> usize {
        self.activations.len()
    }

    /// True when nobody adopted the item.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.activations.is_empty()
    }

    /// Iterator over adopting users in chronological order.
    pub fn users(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.activations.iter().map(|&(u, _)| u)
    }

    /// The adoption time of `u`, if `u` adopted.
    pub fn time_of(&self, u: NodeId) -> Option<u64> {
        self.activations
            .iter()
            .find(|&&(x, _)| x == u)
            .map(|&(_, t)| t)
    }
}

/// The full action log: one episode per item.
#[derive(Debug, Clone, Default)]
pub struct ActionLog {
    episodes: Vec<Episode>,
}

impl ActionLog {
    /// Groups raw actions into per-item episodes. Items with no actions are
    /// absent; episodes appear in ascending item order.
    pub fn from_actions(actions: &[Action]) -> Self {
        let mut by_item = fx_hashmap::<ItemId, Vec<(NodeId, u64)>>();
        for a in actions {
            by_item.entry(a.item).or_default().push((a.user, a.time));
        }
        let mut items: Vec<ItemId> = by_item.keys().copied().collect();
        items.sort_unstable();
        let episodes = items
            .into_iter()
            .map(|item| Episode::new(item, by_item.remove(&item).expect("key present")))
            .collect();
        Self { episodes }
    }

    /// Wraps pre-built episodes.
    pub fn from_episodes(episodes: Vec<Episode>) -> Self {
        Self { episodes }
    }

    /// All episodes.
    #[inline]
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Number of episodes (= items with at least one action).
    #[inline]
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// True when there are no episodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// Total number of actions across episodes.
    pub fn action_count(&self) -> usize {
        self.episodes.iter().map(Episode::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn episode_sorts_and_dedups() {
        let e = Episode::new(
            ItemId(0),
            vec![(n(3), 30), (n(1), 10), (n(3), 5), (n(2), 20)],
        );
        // User 3's first adoption is at t=5, so it leads.
        let users: Vec<u32> = e.users().map(|u| u.0).collect();
        assert_eq!(users, vec![3, 1, 2]);
        assert_eq!(e.time_of(n(3)), Some(5));
        assert_eq!(e.time_of(n(9)), None);
    }

    #[test]
    fn duplicate_activation_keeps_earliest_then_input_order() {
        // User 1 re-votes at t=40 and t=10: earliest (10) wins.
        // User 2 has two records both at t=20: the first in the input
        // ("a"-position, arriving before the other) wins via stable sort.
        // We can't distinguish identical (u, t) pairs directly, so prove
        // the tie rule through ordering against a distinct neighbor: with
        // ties, the neighbor that came first in the input sorts first.
        let e = Episode::new(
            ItemId(0),
            vec![(n(1), 40), (n(2), 20), (n(3), 20), (n(1), 10), (n(2), 20)],
        );
        assert_eq!(e.time_of(n(1)), Some(10));
        assert_eq!(e.time_of(n(2)), Some(20));
        let users: Vec<u32> = e.users().map(|u| u.0).collect();
        // t=10 first; then the t=20 tie resolves to input order: 2 before 3.
        assert_eq!(users, vec![1, 2, 3]);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn log_groups_by_item() {
        let actions = vec![
            Action { user: n(0), item: ItemId(1), time: 5 },
            Action { user: n(1), item: ItemId(0), time: 1 },
            Action { user: n(2), item: ItemId(1), time: 2 },
        ];
        let log = ActionLog::from_actions(&actions);
        assert_eq!(log.len(), 2);
        assert_eq!(log.episodes()[0].item, ItemId(0));
        assert_eq!(log.episodes()[1].item, ItemId(1));
        assert_eq!(log.action_count(), 3);
        let users: Vec<u32> = log.episodes()[1].users().map(|u| u.0).collect();
        assert_eq!(users, vec![2, 0]);
    }

    #[test]
    fn empty_log() {
        let log = ActionLog::from_actions(&[]);
        assert!(log.is_empty());
        assert_eq!(log.action_count(), 0);
    }

    proptest! {
        /// Episode invariants: chronological order, unique users, and
        /// the user set equals the distinct users of the input.
        #[test]
        fn proptest_episode_invariants(raw in prop::collection::vec((0u32..30, 0u64..100), 0..80)) {
            let e = Episode::new(ItemId(0), raw.iter().map(|&(u, t)| (n(u), t)).collect());
            let acts = e.activations();
            prop_assert!(acts.windows(2).all(|w| w[0].1 <= w[1].1));
            let users: std::collections::BTreeSet<u32> = e.users().map(|u| u.0).collect();
            prop_assert_eq!(users.len(), acts.len());
            let expect: std::collections::BTreeSet<u32> = raw.iter().map(|&(u, _)| u).collect();
            prop_assert_eq!(users, expect);
        }
    }
}
