//! The graph + action-log bundle and its train/tune/test split.

use std::io::{BufRead, Write};

use inf2vec_graph::{DiGraph, NodeId};
use inf2vec_util::error::{ConfigError, DataError};
use inf2vec_util::rng::Xoshiro256pp;

use crate::action::{ActionLog, Episode, ItemId};

/// A social network together with its action log.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The social graph; edge `(u, v)` means u can influence v.
    pub graph: DiGraph,
    /// The action log, one episode per item.
    pub log: ActionLog,
    /// Human-readable dataset name ("digg-like", …) for reports.
    pub name: String,
}

/// Episode indices for an 80/10/10-style split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSplit {
    /// Training episode indices.
    pub train: Vec<usize>,
    /// Tuning (validation) episode indices.
    pub tune: Vec<usize>,
    /// Test episode indices.
    pub test: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if any episode references a user outside the graph; use
    /// [`try_new`](Self::try_new) when the inputs are untrusted.
    pub fn new(graph: DiGraph, log: ActionLog, name: impl Into<String>) -> Self {
        Self::try_new(graph, log, name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a dataset, reporting a [`DataError`] if any episode
    /// references a user outside the graph.
    pub fn try_new(
        graph: DiGraph,
        log: ActionLog,
        name: impl Into<String>,
    ) -> Result<Self, DataError> {
        for e in log.episodes() {
            for u in e.users() {
                if u.0 >= graph.node_count() {
                    return Err(DataError::Invalid {
                        message: format!(
                            "episode {} references user {u} outside the graph",
                            e.item
                        ),
                    });
                }
            }
        }
        Ok(Self {
            graph,
            log,
            name: name.into(),
        })
    }

    /// Randomly splits episodes into train/tune/test by the given fractions
    /// (the paper uses 80%/10%/10%). The remainder after `train + tune`
    /// becomes test.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train`, `0 <= tune`, `train + tune < 1`; use
    /// [`try_split`](Self::try_split) when the fractions are untrusted.
    pub fn split(&self, train: f64, tune: f64, seed: u64) -> DatasetSplit {
        self.try_split(train, tune, seed)
            .unwrap_or_else(|e| panic!("bad split fractions: {e}"))
    }

    /// Fallible variant of [`split`](Self::split): rejects fractions outside
    /// `0 < train`, `0 <= tune`, `train + tune < 1` (NaN included).
    pub fn try_split(
        &self,
        train: f64,
        tune: f64,
        seed: u64,
    ) -> Result<DatasetSplit, ConfigError> {
        if !(train > 0.0 && train.is_finite()) {
            return Err(ConfigError::new("train", "train fraction must be in (0, 1)"));
        }
        if !(tune >= 0.0 && tune.is_finite()) {
            return Err(ConfigError::new("tune", "tune fraction must be in [0, 1)"));
        }
        if train + tune >= 1.0 {
            return Err(ConfigError::new("tune", "train + tune must leave room for test"));
        }
        let n = self.log.len();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = Xoshiro256pp::new(seed);
        rng.shuffle(&mut idx);
        let n_train = ((n as f64) * train).round() as usize;
        let n_tune = ((n as f64) * tune).round() as usize;
        let n_train = n_train.min(n);
        let n_tune = n_tune.min(n - n_train);
        Ok(DatasetSplit {
            train: idx[..n_train].to_vec(),
            tune: idx[n_train..n_train + n_tune].to_vec(),
            test: idx[n_train + n_tune..].to_vec(),
        })
    }

    /// The episodes selected by `indices`.
    pub fn episodes_at<'a>(&'a self, indices: &'a [usize]) -> impl Iterator<Item = &'a Episode> {
        indices.iter().map(move |&i| &self.log.episodes()[i])
    }

    /// Writes the action log as `user<TAB>item<TAB>time` lines.
    pub fn write_log<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "# actions: {}", self.log.action_count())?;
        for e in self.log.episodes() {
            for &(u, t) in e.activations() {
                writeln!(w, "{}\t{}\t{}", u.0, e.item.0, t)?;
            }
        }
        Ok(())
    }
}

/// Errors raised while parsing an action-log stream.
#[derive(Debug)]
pub enum LogIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is not `user item time`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Offending content.
        content: String,
    },
}

impl std::fmt::Display for LogIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogIoError::Io(e) => write!(f, "I/O error: {e}"),
            LogIoError::Malformed { line, content } => {
                write!(f, "malformed action log at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for LogIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogIoError::Io(e) => Some(e),
            LogIoError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for LogIoError {
    fn from(e: std::io::Error) -> Self {
        LogIoError::Io(e)
    }
}

/// Parses an action log written by [`Dataset::write_log`].
pub fn read_log<R: BufRead>(r: R) -> Result<ActionLog, LogIoError> {
    let mut actions = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        // `trim` already eats CR (CRLF endings) and stray whitespace; a
        // UTF-8 BOM on the first line is the other Windows-export artifact.
        let line = if idx == 0 {
            line.trim_start_matches('\u{feff}')
        } else {
            line.as_str()
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let fields = (parts.next(), parts.next(), parts.next(), parts.next());
        let (u, i, t) = match fields {
            (Some(u), Some(i), Some(t), None) => (u, i, t),
            _ => {
                return Err(LogIoError::Malformed {
                    line: idx + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        let mal = || LogIoError::Malformed {
            line: idx + 1,
            content: trimmed.to_string(),
        };
        actions.push(crate::action::Action {
            user: NodeId(u.parse().map_err(|_| mal())?),
            item: ItemId(i.parse().map_err(|_| mal())?),
            time: t.parse().map_err(|_| mal())?,
        });
    }
    Ok(ActionLog::from_actions(&actions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use inf2vec_graph::GraphBuilder;

    fn tiny() -> Dataset {
        let mut b = GraphBuilder::with_nodes(4);
        b.add_edge(NodeId(0), NodeId(1));
        let actions: Vec<Action> = (0..20)
            .map(|i| Action {
                user: NodeId(i % 4),
                item: ItemId(i / 2),
                time: i as u64,
            })
            .collect();
        Dataset::new(b.build(), ActionLog::from_actions(&actions), "tiny")
    }

    #[test]
    fn split_partitions_episodes() {
        let d = tiny();
        let s = d.split(0.8, 0.1, 7);
        let total = s.train.len() + s.tune.len() + s.test.len();
        assert_eq!(total, d.log.len());
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.tune)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..d.log.len()).collect::<Vec<_>>());
        assert!(!s.test.is_empty());
    }

    #[test]
    fn split_deterministic_per_seed() {
        let d = tiny();
        assert_eq!(d.split(0.8, 0.1, 1), d.split(0.8, 0.1, 1));
        assert_ne!(d.split(0.8, 0.1, 1), d.split(0.8, 0.1, 2));
    }

    #[test]
    #[should_panic(expected = "bad split fractions")]
    fn split_rejects_bad_fractions() {
        let d = tiny();
        let _ = d.split(0.9, 0.2, 1);
    }

    #[test]
    #[should_panic(expected = "outside the graph")]
    fn dataset_rejects_foreign_users() {
        let g = GraphBuilder::with_nodes(2).build();
        let log = ActionLog::from_actions(&[Action {
            user: NodeId(5),
            item: ItemId(0),
            time: 0,
        }]);
        let _ = Dataset::new(g, log, "bad");
    }

    #[test]
    fn log_io_round_trip() {
        let d = tiny();
        let mut buf = Vec::new();
        d.write_log(&mut buf).unwrap();
        let log2 = read_log(buf.as_slice()).unwrap();
        assert_eq!(log2.len(), d.log.len());
        assert_eq!(log2.action_count(), d.log.action_count());
        for (a, b) in d.log.episodes().iter().zip(log2.episodes()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn try_new_reports_foreign_users() {
        let g = GraphBuilder::with_nodes(2).build();
        let log = ActionLog::from_actions(&[Action {
            user: NodeId(5),
            item: ItemId(0),
            time: 0,
        }]);
        let err = Dataset::try_new(g, log, "bad").unwrap_err();
        assert!(err.to_string().contains("outside the graph"), "{err}");
    }

    #[test]
    fn try_split_rejects_nan_and_degenerate_fractions() {
        let d = tiny();
        for (train, tune) in [
            (0.0, 0.1),
            (-0.5, 0.1),
            (f64::NAN, 0.1),
            (0.5, f64::NAN),
            (0.5, -0.1),
            (0.9, 0.2),
            (1.0, 0.0),
        ] {
            assert!(
                d.try_split(train, tune, 1).is_err(),
                "accepted train={train} tune={tune}"
            );
        }
        assert!(d.try_split(0.8, 0.1, 1).is_ok());
    }

    #[test]
    fn log_io_rejects_garbage() {
        for bad in ["1 2", "1 2 3 4", "a 2 3", "1 b 3", "1 2 c"] {
            assert!(read_log(bad.as_bytes()).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn log_io_error_source_exposes_io() {
        use std::error::Error;
        let io = LogIoError::from(std::io::Error::other("boom"));
        assert!(io.source().is_some(), "Io variant must chain its cause");
        assert_eq!(io.source().unwrap().to_string(), "boom");
        let mal = LogIoError::Malformed {
            line: 3,
            content: "x".into(),
        };
        assert!(mal.source().is_none());
    }

    #[test]
    fn log_io_tolerates_crlf_bom_and_trailing_whitespace() {
        let text = "\u{feff}# actions: 3\r\n0\t0\t1  \r\n 1 0 2\t\r\n\r\n2\t1\t5\r\n";
        let log = read_log(text.as_bytes()).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.action_count(), 3);
    }

    #[test]
    fn log_io_bom_only_stripped_on_first_line() {
        // A BOM mid-file is real corruption, not an export artifact.
        let err = read_log("0 0 1\n\u{feff}1 0 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, LogIoError::Malformed { line: 2, .. }));
    }

    proptest::proptest! {
        /// `Dataset::write_log` → `read_log` reproduces the episodes
        /// exactly for any action set (duplicates already collapsed by
        /// `ActionLog::from_actions` before writing).
        #[test]
        fn proptest_log_round_trip(
            raw in proptest::prop::collection::vec((0u32..8, 0u32..6, 0u64..50), 0..120),
        ) {
            let actions: Vec<Action> = raw
                .iter()
                .map(|&(u, i, t)| Action { user: NodeId(u), item: ItemId(i), time: t })
                .collect();
            let log = ActionLog::from_actions(&actions);
            let d = Dataset::new(GraphBuilder::with_nodes(8).build(), log, "rt");
            let mut buf = Vec::new();
            d.write_log(&mut buf).unwrap();
            let log2 = read_log(buf.as_slice()).unwrap();
            proptest::prop_assert_eq!(d.log.episodes(), log2.episodes());
        }
    }
}
