//! Influence maximization: greedy seed selection with CELF lazy
//! evaluation (Kempe–Kleinberg–Tardos 2003; Leskovec et al. 2007).
//!
//! The paper motivates influence learning with viral marketing \[1\]: find
//! the `k` seeds maximizing expected IC spread. This module closes the
//! loop — learned edge probabilities (from any of the workspace's models,
//! via [`crate::EdgeProbs`]) plug straight into the classic greedy
//! algorithm, whose `1 - 1/e` guarantee rests on the submodularity of
//! expected spread.
//!
//! CELF exploits that same submodularity: a node's marginal gain can only
//! shrink as the seed set grows, so stale gains are upper bounds and most
//! re-evaluations can be skipped (10–700× fewer simulations in practice).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use inf2vec_graph::{DiGraph, NodeId};
use inf2vec_util::rng::{split_seed, Xoshiro256pp};

use crate::ic::{simulate, EdgeProbs};

/// Configuration for greedy influence maximization.
#[derive(Debug, Clone)]
pub struct ImConfig {
    /// Seeds to select.
    pub k: usize,
    /// Monte-Carlo simulations per spread estimate.
    pub simulations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImConfig {
    fn default() -> Self {
        Self {
            k: 10,
            simulations: 200,
            seed: 0,
        }
    }
}

/// One selected seed and its estimated marginal gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedChoice {
    /// The chosen node.
    pub node: NodeId,
    /// Estimated marginal spread contributed by this node.
    pub marginal_gain: f64,
}

/// The greedy/CELF result.
#[derive(Debug, Clone)]
pub struct ImResult {
    /// Seeds in selection order with their marginal gains.
    pub seeds: Vec<SeedChoice>,
    /// Estimated total expected spread of the full seed set (seeds
    /// included).
    pub expected_spread: f64,
    /// Spread evaluations performed (CELF's saving shows here: far fewer
    /// than `k · n`).
    pub evaluations: usize,
}

impl ImResult {
    /// The seed nodes in selection order.
    pub fn seed_nodes(&self) -> Vec<NodeId> {
        self.seeds.iter().map(|s| s.node).collect()
    }
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    gain: f64,
    node: u32,
    /// Selection round in which `gain` was computed.
    round: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on gain, ties by smaller node id for determinism.
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Mean spread (|activated| + |seeds|) over `simulations` cascades.
fn estimate_spread(
    graph: &DiGraph,
    probs: &EdgeProbs,
    seeds: &[NodeId],
    simulations: usize,
    rng: &mut Xoshiro256pp,
) -> f64 {
    let mut total = seeds.len() * simulations;
    for _ in 0..simulations {
        total += simulate(graph, probs, seeds, rng).len();
    }
    total as f64 / simulations as f64
}

/// Greedy influence maximization with CELF lazy evaluation.
///
/// Deterministic per `(graph, probs, config)`; runs in
/// `O(evaluations · simulations · spread)`.
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds the node count, or `simulations` is 0.
pub fn celf_greedy(graph: &DiGraph, probs: &EdgeProbs, config: &ImConfig) -> ImResult {
    assert!(config.k > 0, "k must be positive");
    assert!(
        config.k <= graph.node_count() as usize,
        "k exceeds node count"
    );
    assert!(config.simulations > 0, "need at least one simulation");

    let mut rng = Xoshiro256pp::new(split_seed(config.seed, 0x1B));
    let mut evaluations = 0usize;

    // Round 0: evaluate every node's solo spread once.
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(graph.node_count() as usize);
    for u in graph.nodes() {
        let gain = estimate_spread(graph, probs, &[u], config.simulations, &mut rng);
        evaluations += 1;
        heap.push(HeapEntry {
            gain,
            node: u.0,
            round: 0,
        });
    }

    let mut seeds: Vec<NodeId> = Vec::with_capacity(config.k);
    let mut choices: Vec<SeedChoice> = Vec::with_capacity(config.k);
    let mut current_spread = 0.0f64;

    for _ in 0..config.k {
        loop {
            let top = heap.pop().expect("heap never empties before k seeds");
            // `round` records how many seeds were selected when the gain
            // was computed; it is exact iff nothing was added since.
            if top.round as usize == seeds.len() {
                seeds.push(NodeId(top.node));
                current_spread += top.gain;
                choices.push(SeedChoice {
                    node: NodeId(top.node),
                    marginal_gain: top.gain,
                });
                break;
            }
            // Stale: re-evaluate the marginal gain against the current set.
            seeds.push(NodeId(top.node));
            let with = estimate_spread(graph, probs, &seeds, config.simulations, &mut rng);
            seeds.pop();
            evaluations += 1;
            heap.push(HeapEntry {
                gain: (with - current_spread).max(0.0),
                node: top.node,
                round: seeds.len() as u32,
            });
        }
    }

    // Final unbiased estimate of the full set's spread.
    let expected_spread =
        estimate_spread(graph, probs, &seeds, config.simulations, &mut rng);
    evaluations += 1;

    ImResult {
        seeds: choices,
        expected_spread,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inf2vec_graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Two disjoint deterministic chains, one longer: greedy must take the
    /// long chain's head first, then the short one's.
    #[test]
    fn picks_chain_heads_in_order() {
        let mut b = GraphBuilder::with_nodes(9);
        for i in 0..4u32 {
            b.add_edge(n(i), n(i + 1)); // chain 0..4 (head 0, spread 5)
        }
        for i in 5..8u32 {
            b.add_edge(n(i), n(i + 1)); // chain 5..8 (head 5, spread 4)
        }
        let g = b.build();
        let probs = EdgeProbs::uniform(&g, 1.0);
        let result = celf_greedy(
            &g,
            &probs,
            &ImConfig {
                k: 2,
                simulations: 20,
                seed: 1,
            },
        );
        assert_eq!(result.seed_nodes(), vec![n(0), n(5)]);
        assert!((result.expected_spread - 9.0).abs() < 1e-9);
        // First gains: 5 then 4.
        assert!((result.seeds[0].marginal_gain - 5.0).abs() < 1e-9);
        assert!((result.seeds[1].marginal_gain - 4.0).abs() < 1e-9);
    }

    /// Overlapping influence: once the hub is chosen, its neighbor adds
    /// almost nothing; greedy must diversify.
    #[test]
    fn diversifies_under_overlap() {
        // Star 0 -> {1..6} with p = 1, plus 7 -> 8 disjoint.
        let mut b = GraphBuilder::with_nodes(9);
        for v in 1..7u32 {
            b.add_edge(n(0), n(v));
        }
        b.add_edge(n(7), n(8));
        let g = b.build();
        let probs = EdgeProbs::uniform(&g, 1.0);
        let result = celf_greedy(
            &g,
            &probs,
            &ImConfig {
                k: 2,
                simulations: 20,
                seed: 2,
            },
        );
        assert_eq!(result.seed_nodes(), vec![n(0), n(7)]);
    }

    #[test]
    fn celf_skips_most_evaluations() {
        // A larger random-ish graph: CELF should evaluate far fewer than
        // n * k spreads.
        let mut rng = Xoshiro256pp::new(3);
        let g = inf2vec_graph::gen::erdos_renyi(120, 500, &mut rng);
        let probs = EdgeProbs::uniform(&g, 0.1);
        let k = 5;
        let result = celf_greedy(
            &g,
            &probs,
            &ImConfig {
                k,
                simulations: 30,
                seed: 4,
            },
        );
        assert_eq!(result.seeds.len(), k);
        let naive = 120 * k;
        assert!(
            result.evaluations < naive / 2,
            "evaluations {} not far below naive {naive}",
            result.evaluations
        );
        // Marginal gains must be non-increasing (submodularity, up to MC
        // noise tolerance).
        for w in result.seeds.windows(2) {
            assert!(
                w[1].marginal_gain <= w[0].marginal_gain + 1.0,
                "gains increased: {w:?}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng = Xoshiro256pp::new(5);
        let g = inf2vec_graph::gen::erdos_renyi(60, 240, &mut rng);
        let probs = EdgeProbs::weighted_cascade(&g);
        let cfg = ImConfig {
            k: 3,
            simulations: 25,
            seed: 9,
        };
        let a = celf_greedy(&g, &probs, &cfg);
        let b = celf_greedy(&g, &probs, &cfg);
        assert_eq!(a.seed_nodes(), b.seed_nodes());
        assert_eq!(a.expected_spread, b.expected_spread);
    }

    #[test]
    #[should_panic(expected = "k exceeds node count")]
    fn rejects_oversized_k() {
        let g = GraphBuilder::with_nodes(3).build();
        let probs = EdgeProbs::uniform(&g, 0.5);
        let _ = celf_greedy(
            &g,
            &probs,
            &ImConfig {
                k: 10,
                ..ImConfig::default()
            },
        );
    }
}
