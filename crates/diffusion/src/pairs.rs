//! Social influence pair extraction (Definition 1).
//!
//! A pair `(u → v)` exists for episode `D_i` when both users adopted item
//! `i`, the social edge `(u, v)` exists, and `u` adopted strictly before
//! `v`. These pairs are the paper's raw influence observations: Figures 1–2
//! plot their source/target frequency distributions, Emb-IC and the Table VI
//! case study train on them directly, and the propagation networks of
//! Definition 3 are assembled from them.

use inf2vec_graph::{DiGraph, NodeId};
use inf2vec_util::hash::{fx_hashmap, fx_hashmap_with_capacity};
use inf2vec_util::FxHashMap;

use crate::action::Episode;

/// Extracts the influence pairs of one episode, in target-activation order.
///
/// Cost is `Σ_v min(d_in(v), |D|)` using a hash of the episode's adoption
/// times, which beats scanning the episode per user for hub-heavy graphs.
pub fn episode_pairs(graph: &DiGraph, episode: &Episode) -> Vec<(NodeId, NodeId)> {
    let times: FxHashMap<u32, u64> = episode
        .activations()
        .iter()
        .map(|&(u, t)| (u.0, t))
        .collect();
    let mut out = Vec::new();
    for &(v, tv) in episode.activations() {
        for &u in graph.in_neighbors(v) {
            if let Some(&tu) = times.get(&u) {
                if tu < tv {
                    out.push((NodeId(u), v));
                }
            }
        }
    }
    out
}

/// Counts `(source, target) -> frequency` over many episodes.
pub fn pair_frequencies<'a, I: IntoIterator<Item = &'a Episode>>(
    graph: &DiGraph,
    episodes: I,
) -> FxHashMap<(u32, u32), u32> {
    let mut counts = fx_hashmap::<(u32, u32), u32>();
    for e in episodes {
        for (u, v) in episode_pairs(graph, e) {
            *counts.entry((u.0, v.0)).or_insert(0) += 1;
        }
    }
    counts
}

/// Per-user counts of appearing as pair source / target (Figures 1–2).
#[derive(Debug, Clone, Default)]
pub struct PairRoleCounts {
    /// `user -> times it appears as the influencing side`.
    pub source: FxHashMap<u32, u64>,
    /// `user -> times it appears as the influenced side`.
    pub target: FxHashMap<u32, u64>,
    /// Total pair count.
    pub total: u64,
}

/// Tallies source/target roles over episodes.
pub fn pair_role_counts<'a, I: IntoIterator<Item = &'a Episode>>(
    graph: &DiGraph,
    episodes: I,
) -> PairRoleCounts {
    let mut counts = PairRoleCounts {
        source: fx_hashmap_with_capacity(graph.node_count() as usize / 4),
        target: fx_hashmap_with_capacity(graph.node_count() as usize / 4),
        total: 0,
    };
    for e in episodes {
        for (u, v) in episode_pairs(graph, e) {
            *counts.source.entry(u.0).or_insert(0) += 1;
            *counts.target.entry(v.0).or_insert(0) += 1;
            counts.total += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ItemId;
    use inf2vec_graph::GraphBuilder;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Figure 5's example: edges of the social graph and an episode, checked
    /// against the pairs the paper derives.
    #[test]
    fn figure5_example() {
        // Social network: u4->u5, u2->u3, u4->u1, u3->u1 (as needed for the
        // four pairs), plus an edge u5->u2 that must NOT produce a pair
        // because u2 acted before u5.
        let mut b = GraphBuilder::with_nodes(6);
        for (u, v) in [(4, 5), (2, 3), (4, 1), (3, 1), (5, 2)] {
            b.add_edge(n(u), n(v));
        }
        let g = b.build();
        // Episode order: u4, u2, u3, u5, u1.
        let e = Episode::new(
            ItemId(0),
            vec![(n(4), 0), (n(2), 1), (n(3), 2), (n(5), 3), (n(1), 4)],
        );
        let mut pairs: Vec<(u32, u32)> =
            episode_pairs(&g, &e).into_iter().map(|(a, b)| (a.0, b.0)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(2, 3), (3, 1), (4, 1), (4, 5)]);
    }

    #[test]
    fn equal_timestamps_produce_no_pair() {
        let mut b = GraphBuilder::with_nodes(2);
        b.add_edge(n(0), n(1));
        let g = b.build();
        let e = Episode::new(ItemId(0), vec![(n(0), 5), (n(1), 5)]);
        assert!(episode_pairs(&g, &e).is_empty());
    }

    #[test]
    fn non_adopting_friends_ignored() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(n(0), n(1));
        b.add_edge(n(2), n(1));
        let g = b.build();
        // User 2 never adopts.
        let e = Episode::new(ItemId(0), vec![(n(0), 0), (n(1), 1)]);
        let pairs = episode_pairs(&g, &e);
        assert_eq!(pairs, vec![(n(0), n(1))]);
    }

    #[test]
    fn frequencies_accumulate_across_episodes() {
        let mut b = GraphBuilder::with_nodes(2);
        b.add_edge(n(0), n(1));
        let g = b.build();
        let episodes: Vec<Episode> = (0..3)
            .map(|i| Episode::new(ItemId(i), vec![(n(0), 0), (n(1), 1)]))
            .collect();
        let freq = pair_frequencies(&g, &episodes);
        assert_eq!(freq[&(0, 1)], 3);
        let roles = pair_role_counts(&g, &episodes);
        assert_eq!(roles.source[&0], 3);
        assert_eq!(roles.target[&1], 3);
        assert_eq!(roles.total, 3);
        assert!(!roles.source.contains_key(&1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Pair extraction agrees with the O(|D|^2) brute force definition.
        #[test]
        fn proptest_matches_bruteforce(
            raw_edges in prop::collection::vec((0u32..12, 0u32..12), 0..60),
            raw_acts in prop::collection::vec((0u32..12, 0u64..40), 0..24),
        ) {
            let mut b = GraphBuilder::with_nodes(12);
            for &(u, v) in &raw_edges {
                b.add_edge(n(u), n(v));
            }
            let g = b.build();
            let e = Episode::new(ItemId(0), raw_acts.iter().map(|&(u, t)| (n(u), t)).collect());

            let mut got: Vec<(u32, u32)> =
                episode_pairs(&g, &e).into_iter().map(|(a, b)| (a.0, b.0)).collect();
            got.sort_unstable();

            let acts = e.activations();
            let mut expect = Vec::new();
            for &(u, tu) in acts {
                for &(v, tv) in acts {
                    if tu < tv && g.has_edge(u, v) {
                        expect.push((u.0, v.0));
                    }
                }
            }
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}
