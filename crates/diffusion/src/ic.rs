//! Independent Cascade model: per-edge probabilities and simulation.
//!
//! The IC model underlies four of the paper's baselines (DE, ST, EM,
//! Emb-IC). [`EdgeProbs`] stores one probability per directed edge, laid out
//! parallel to the graph's flat CSR out-edge array so lookups are O(log d)
//! and iteration over a node's out-edges is contiguous. [`simulate`] runs
//! one cascade; [`monte_carlo`] estimates per-node activation probabilities
//! from repeated simulation, which is how IC-based methods are scored on the
//! diffusion-prediction task (§V-B2, 5,000 runs in the paper).

use inf2vec_graph::{DiGraph, NodeId};
use inf2vec_util::rng::Xoshiro256pp;

/// Per-edge IC probabilities, parallel to the graph's CSR out-edge array.
#[derive(Debug, Clone)]
pub struct EdgeProbs {
    probs: Vec<f32>,
}

impl EdgeProbs {
    /// All edges share probability `p`.
    pub fn uniform(graph: &DiGraph, p: f32) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Self {
            probs: vec![p; graph.edge_count()],
        }
    }

    /// The weighted-cascade assignment `P_uv = 1 / indegree(v)` (the DE
    /// baseline and the classic Kempe et al. benchmark setting).
    pub fn weighted_cascade(graph: &DiGraph) -> Self {
        Self::from_fn(graph, |_, v| 1.0 / graph.in_degree(v).max(1) as f32)
    }

    /// Computes each edge's probability from `(source, target)`.
    pub fn from_fn<F: FnMut(NodeId, NodeId) -> f32>(graph: &DiGraph, mut f: F) -> Self {
        let mut probs = vec![0.0f32; graph.edge_count()];
        for u in graph.nodes() {
            let range = graph.out_edge_range(u);
            for (slot, &v) in range.clone().zip(graph.out_neighbors(u)) {
                let p = f(u, NodeId(v));
                debug_assert!((0.0..=1.0).contains(&p), "P_{u}{v} = {p} out of range");
                probs[slot] = p.clamp(0.0, 1.0);
            }
        }
        Self { probs }
    }

    /// Wraps a raw probability vector (must match the edge count).
    pub fn from_vec(graph: &DiGraph, probs: Vec<f32>) -> Self {
        assert_eq!(probs.len(), graph.edge_count(), "length mismatch");
        Self { probs }
    }

    /// Probability of edge `u -> v`, or 0 when the edge does not exist.
    #[inline]
    pub fn get(&self, graph: &DiGraph, u: NodeId, v: NodeId) -> f32 {
        graph
            .edge_index(u, v)
            .map_or(0.0, |i| self.probs[i])
    }

    /// Probability at flat edge slot `i` (see [`DiGraph::edge_index`]).
    #[inline]
    pub fn at(&self, i: usize) -> f32 {
        self.probs[i]
    }

    /// Mutable access to flat slot `i` (used by learners' M-steps).
    #[inline]
    pub fn at_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.probs[i]
    }

    /// The raw flat probability array.
    pub fn as_slice(&self) -> &[f32] {
        &self.probs
    }
}

/// Runs one IC cascade from `seeds`; returns the newly activated nodes (the
/// seeds excluded) in activation order.
///
/// Each node, on the round after it activates, gets a single chance to
/// activate each currently-inactive out-neighbor with the edge probability.
pub fn simulate(
    graph: &DiGraph,
    probs: &EdgeProbs,
    seeds: &[NodeId],
    rng: &mut Xoshiro256pp,
) -> Vec<NodeId> {
    let mut active = vec![false; graph.node_count() as usize];
    let mut frontier: Vec<u32> = Vec::with_capacity(seeds.len());
    for &s in seeds {
        if !active[s.index()] {
            active[s.index()] = true;
            frontier.push(s.0);
        }
    }
    let mut activated = Vec::new();
    let mut next: Vec<u32> = Vec::new();
    while !frontier.is_empty() {
        next.clear();
        for &u in &frontier {
            let range = graph.out_edge_range(NodeId(u));
            for (slot, &v) in range.zip(graph.out_neighbors(NodeId(u))) {
                if !active[v as usize] && rng.next_f32() < probs.at(slot) {
                    active[v as usize] = true;
                    next.push(v);
                    activated.push(NodeId(v));
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    activated
}

/// Estimates each node's activation probability from `runs` simulated
/// cascades. Seeds report probability 1. Runs in `O(runs · spread)`.
pub fn monte_carlo(
    graph: &DiGraph,
    probs: &EdgeProbs,
    seeds: &[NodeId],
    runs: usize,
    rng: &mut Xoshiro256pp,
) -> Vec<f64> {
    assert!(runs > 0, "need at least one run");
    let mut counts = vec![0u32; graph.node_count() as usize];
    for &s in seeds {
        counts[s.index()] = runs as u32;
    }
    for _ in 0..runs {
        for v in simulate(graph, probs, seeds, rng) {
            counts[v.index()] += 1;
        }
    }
    counts
        .into_iter()
        .map(|c| c as f64 / runs as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use inf2vec_graph::GraphBuilder;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn path(k: u32) -> DiGraph {
        let mut b = GraphBuilder::new();
        for i in 0..k - 1 {
            b.add_edge(n(i), n(i + 1));
        }
        b.build()
    }

    #[test]
    fn certain_edges_cascade_fully() {
        let g = path(5);
        let p = EdgeProbs::uniform(&g, 1.0);
        let mut rng = Xoshiro256pp::new(1);
        let got = simulate(&g, &p, &[n(0)], &mut rng);
        assert_eq!(got, vec![n(1), n(2), n(3), n(4)]);
    }

    #[test]
    fn zero_edges_never_cascade() {
        let g = path(5);
        let p = EdgeProbs::uniform(&g, 0.0);
        let mut rng = Xoshiro256pp::new(1);
        assert!(simulate(&g, &p, &[n(0)], &mut rng).is_empty());
    }

    #[test]
    fn weighted_cascade_matches_indegree() {
        let mut b = GraphBuilder::new();
        b.add_edge(n(0), n(2));
        b.add_edge(n(1), n(2));
        b.add_edge(n(0), n(1));
        let g = b.build();
        let p = EdgeProbs::weighted_cascade(&g);
        assert!((p.get(&g, n(0), n(2)) - 0.5).abs() < 1e-6);
        assert!((p.get(&g, n(0), n(1)) - 1.0).abs() < 1e-6);
        assert_eq!(p.get(&g, n(2), n(0)), 0.0);
    }

    #[test]
    fn monte_carlo_matches_analytic_path() {
        // On a 3-node path with p = 0.5, P(node1) = 0.5, P(node2) = 0.25.
        let g = path(3);
        let p = EdgeProbs::uniform(&g, 0.5);
        let mut rng = Xoshiro256pp::new(42);
        let probs = monte_carlo(&g, &p, &[n(0)], 40_000, &mut rng);
        assert_eq!(probs[0], 1.0);
        assert!((probs[1] - 0.5).abs() < 0.01, "got {}", probs[1]);
        assert!((probs[2] - 0.25).abs() < 0.01, "got {}", probs[2]);
    }

    #[test]
    fn duplicate_seeds_counted_once() {
        let g = path(3);
        let p = EdgeProbs::uniform(&g, 1.0);
        let mut rng = Xoshiro256pp::new(2);
        let got = simulate(&g, &p, &[n(0), n(0)], &mut rng);
        assert_eq!(got, vec![n(1), n(2)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_checks_len() {
        let g = path(3);
        let _ = EdgeProbs::from_vec(&g, vec![0.5]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Higher probabilities never shrink expected spread (coupling
        /// argument approximated statistically).
        #[test]
        fn proptest_monotone_in_p(seed in any::<u64>()) {
            let g = path(6);
            let spread = |p: f32, seed: u64| {
                let probs = EdgeProbs::uniform(&g, p);
                let mut rng = Xoshiro256pp::new(seed);
                let mc = monte_carlo(&g, &probs, &[n(0)], 2000, &mut rng);
                mc.iter().sum::<f64>()
            };
            prop_assert!(spread(0.8, seed) >= spread(0.2, seed) - 0.2);
        }

        /// Activated sets never include seeds and only contain reachable
        /// nodes.
        #[test]
        fn proptest_activation_sane(seed in any::<u64>(), p in 0.0f32..1.0) {
            let g = path(6);
            let probs = EdgeProbs::uniform(&g, p);
            let mut rng = Xoshiro256pp::new(seed);
            let got = simulate(&g, &probs, &[n(2)], &mut rng);
            for v in &got {
                prop_assert!(v.0 > 2, "node {v} not downstream of seed");
            }
            // No duplicates.
            let set: std::collections::BTreeSet<u32> = got.iter().map(|v| v.0).collect();
            prop_assert_eq!(set.len(), got.len());
        }
    }
}
