#![warn(missing_docs)]

//! Diffusion substrate: action logs, episodes, influence propagation.
//!
//! The paper's input is a social graph plus an *action log* `A = {D_i}`:
//! each item `i` has a diffusion episode `D_i = {(u, t_u^i)}`, the users who
//! adopted it in chronological order. This crate implements everything the
//! paper derives from that input:
//!
//! - [`action`]: actions, episodes, and the action log.
//! - [`dataset`]: a graph + episodes bundle with train/tune/test splitting
//!   and text I/O.
//! - [`pairs`]: social influence pair extraction (Definition 1).
//! - [`propnet`]: per-episode influence propagation networks (Definition 3)
//!   — the DAGs Inf2vec random-walks over.
//! - [`stats`]: the data observations of §III-A (Table I, Figures 1–3).
//! - [`ic`] / [`lt`]: Independent Cascade and Linear Threshold simulators,
//!   used both to *generate* synthetic cascades and to score IC-based
//!   baselines by Monte-Carlo simulation.
//! - [`im`]: greedy/CELF influence maximization over learned edge
//!   probabilities — the viral-marketing application the paper's
//!   introduction motivates.
//! - [`synth`]: synthetic Digg-like / Flickr-like dataset generation (see
//!   DESIGN.md §2 for the substitution argument).
//! - [`citation`]: the synthetic citation network for the Table VI case
//!   study.

pub mod action;
pub mod citation;
pub mod dataset;
pub mod ic;
pub mod im;
pub mod lt;
pub mod pairs;
pub mod propnet;
pub mod stats;
pub mod synth;

pub use action::{Action, ActionLog, Episode, ItemId};
pub use dataset::{Dataset, DatasetSplit};
pub use ic::EdgeProbs;
pub use propnet::PropagationNetwork;
