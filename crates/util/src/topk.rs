//! Bounded top-K collection.
//!
//! [`TopK`] keeps the `k` items with the largest scores seen so far using a
//! min-heap, in O(log k) per insertion. Ties are broken by insertion order
//! (earlier wins), which keeps rankings deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy)]
struct Entry<T> {
    score: f64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Entry<T> {
    /// Min-heap key: smallest score first; among equal scores the *latest*
    /// insertion is evicted first so earlier items win ties.
    fn cmp_key(&self) -> (f64, std::cmp::Reverse<u64>) {
        (self.score, std::cmp::Reverse(self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        let (s1, q1) = self.cmp_key();
        let (s2, q2) = other.cmp_key();
        // Reverse everything: BinaryHeap is a max-heap, we need a min-heap.
        s2.partial_cmp(&s1)
            .unwrap_or(Ordering::Equal)
            .then_with(|| q2.cmp(&q1))
    }
}

/// Collects the top `k` items by score.
#[derive(Debug, Clone)]
pub struct TopK<T> {
    k: usize,
    seq: u64,
    heap: BinaryHeap<Entry<T>>,
}

impl<T> TopK<T> {
    /// Creates a collector for the `k` best-scoring items.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            seq: 0,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers an item. NaN scores are ignored.
    pub fn push(&mut self, score: f64, item: T) {
        if score.is_nan() {
            return;
        }
        let entry = Entry {
            score,
            seq: self.seq,
            item,
        };
        self.seq += 1;
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(min) = self.heap.peek() {
            if entry.cmp_key() > min.cmp_key() {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// Number of items currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no item has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the collector and returns `(score, item)` pairs sorted by
    /// descending score (ties: insertion order).
    pub fn into_sorted(self) -> Vec<(f64, T)> {
        let mut entries: Vec<Entry<T>> = self.heap.into_vec();
        entries.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.seq.cmp(&b.seq))
        });
        entries.into_iter().map(|e| (e.score, e.item)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_largest() {
        let mut t = TopK::new(3);
        for (s, i) in [(1.0, 'a'), (5.0, 'b'), (3.0, 'c'), (4.0, 'd'), (0.5, 'e')] {
            t.push(s, i);
        }
        let got: Vec<char> = t.into_sorted().into_iter().map(|(_, i)| i).collect();
        assert_eq!(got, vec!['b', 'd', 'c']);
    }

    #[test]
    fn fewer_than_k_items() {
        let mut t = TopK::new(10);
        t.push(2.0, "x");
        t.push(1.0, "y");
        let got = t.into_sorted();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1, "x");
    }

    #[test]
    fn ties_resolved_by_insertion_order() {
        let mut t = TopK::new(2);
        t.push(1.0, 0);
        t.push(1.0, 1);
        t.push(1.0, 2);
        let got: Vec<i32> = t.into_sorted().into_iter().map(|(_, i)| i).collect();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn nan_ignored() {
        let mut t = TopK::new(2);
        t.push(f64::NAN, 'n');
        t.push(1.0, 'a');
        let got = t.into_sorted();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 'a');
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = TopK::<u8>::new(0);
    }

    proptest! {
        /// TopK agrees with full sort-then-truncate.
        #[test]
        fn proptest_matches_sort(scores in prop::collection::vec(-1e6f64..1e6, 0..200), k in 1usize..20) {
            let mut t = TopK::new(k);
            for (i, &s) in scores.iter().enumerate() {
                t.push(s, i);
            }
            let got: Vec<f64> = t.into_sorted().into_iter().map(|(s, _)| s).collect();

            let mut expect = scores.clone();
            expect.sort_by(|a, b| b.partial_cmp(a).unwrap());
            expect.truncate(k);
            prop_assert_eq!(got, expect);
        }
    }
}
