//! Terminal plots for figure reproduction.
//!
//! The paper's figures (power-law frequency distributions, CDFs, sensitivity
//! curves, t-SNE maps) are reproduced by the `repro` harness as plain-text
//! plots plus machine-readable CSV series; this module renders the former.

/// Renders an XY scatter/line plot on a character grid.
///
/// `series` is a list of `(label, points)`; each series gets its own glyph.
/// Returns a multi-line string including axis ranges and a legend.
pub fn xy_plot(
    title: &str,
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
    log_x: bool,
    log_y: bool,
) -> String {
    const GLYPHS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '&'];
    let width = width.max(10);
    let height = height.max(5);

    let tx = |x: f64| if log_x { x.max(1e-12).log10() } else { x };
    let ty = |y: f64| if log_y { y.max(1e-12).log10() } else { y };

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (_, pts) in series {
        for &(x, y) in *pts {
            if x.is_finite() && y.is_finite() {
                xs.push(tx(x));
                ys.push(ty(y));
            }
        }
    }
    if xs.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (xmin, xmax) = min_max(&xs);
    let (ymin, ymax) = min_max(&ys);
    let xspan = (xmax - xmin).max(1e-12);
    let yspan = (ymax - ymin).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in *pts {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let cx = (((tx(x) - xmin) / xspan) * (width - 1) as f64).round() as usize;
            let cy = (((ty(y) - ymin) / yspan) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let axis = |v: f64, log: bool| {
        let v = if log { 10f64.powf(v) } else { v };
        fmt_compact(v)
    };
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{:>9} |", axis(ymax, log_y))
        } else if i == height - 1 {
            format!("{:>9} |", axis(ymin, log_y))
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10}{}\n", " ", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10}{:<Wl$}{:>Wr$}\n",
        " ",
        axis(xmin, log_x),
        axis(xmax, log_x),
        Wl = width / 2,
        Wr = width - width / 2,
    ));
    for (si, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], label));
    }
    out
}

/// Renders a horizontal bar chart of `(label, value)` pairs.
pub fn bar_chart(title: &str, bars: &[(String, f64)], width: usize) -> String {
    let width = width.max(10);
    let max = bars
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1e-12);
    let label_w = bars.iter().map(|(l, _)| l.chars().count()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, v) in bars {
        let n = ((v / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "{label:<label_w$} | {} {v:.4}\n",
            "#".repeat(n.min(width)),
        ));
    }
    out
}

/// Formats a float compactly: integers without decimals, small magnitudes
/// with 3 significant digits, large/small magnitudes in scientific notation.
fn fmt_compact(v: f64) -> String {
    let a = v.abs();
    if v == 0.0 {
        "0".to_string()
    } else if !(1e-3..1e6).contains(&a) {
        format!("{v:.2e}")
    } else if (v - v.round()).abs() < 1e-9 && a < 1e6 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.3}")
    }
}

fn min_max(xs: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

/// Serializes `(x, y)` series to CSV with a header: `x,label1,label2,...`.
/// Series may have different x grids; missing cells are left empty.
pub fn series_csv(series: &[(&str, &[(f64, f64)])]) -> String {
    use std::collections::BTreeMap;
    let mut by_x: BTreeMap<u64, Vec<Option<f64>>> = BTreeMap::new();
    for (i, (_, pts)) in series.iter().enumerate() {
        for &(x, y) in *pts {
            let key = x.to_bits();
            let row = by_x.entry(key).or_insert_with(|| vec![None; series.len()]);
            row[i] = Some(y);
        }
    }
    let mut out = String::from("x");
    for (label, _) in series {
        out.push(',');
        out.push_str(label);
    }
    out.push('\n');
    for (xbits, row) in by_x {
        out.push_str(&format!("{}", f64::from_bits(xbits)));
        for cell in row {
            out.push(',');
            if let Some(y) = cell {
                out.push_str(&format!("{y}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_contains_points_and_legend() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i * i) as f64)).collect();
        let s = xy_plot("test", &[("squares", &pts)], 40, 10, false, false);
        assert!(s.contains("test"));
        assert!(s.contains('*'));
        assert!(s.contains("squares"));
    }

    #[test]
    fn log_plot_handles_zero() {
        let pts = [(0.0, 0.0), (10.0, 100.0)];
        let s = xy_plot("log", &[("s", &pts)], 30, 8, true, true);
        assert!(s.contains('*'));
    }

    #[test]
    fn empty_series_no_panic() {
        let s = xy_plot("empty", &[("none", &[])], 30, 8, false, false);
        assert!(s.contains("no data"));
    }

    #[test]
    fn bar_chart_scales() {
        let bars = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let s = bar_chart("bars", &bars, 20);
        let a_len = s.lines().nth(1).unwrap().matches('#').count();
        let b_len = s.lines().nth(2).unwrap().matches('#').count();
        assert_eq!(b_len, 20);
        assert_eq!(a_len, 10);
    }

    #[test]
    fn csv_round_trip_shape() {
        let s1 = [(1.0, 2.0), (2.0, 3.0)];
        let s2 = [(1.0, 5.0)];
        let csv = series_csv(&[("a", &s1), ("b", &s2)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("1,2,5"));
        assert!(lines[2].starts_with("2,3,"));
    }
}
