//! Time as a capability: the [`Clock`] abstraction.
//!
//! Retry backoff, circuit-breaker cool-downs, and request deadlines are
//! all "wait until T" logic. Testing them against the real clock forces
//! sleeps into the test suite and turns timing assertions into races.
//! Every time-dependent component therefore reads time through a
//! [`Clock`]: production code uses [`SystemClock`] (monotonic, backed by
//! `Instant`), tests use [`ManualClock`] and advance time explicitly —
//! a "sleep" under a manual clock is an atomic add, so a backoff schedule
//! of minutes executes in microseconds and is deterministic down to the
//! nanosecond.
//!
//! Time is represented as a [`Duration`] since the clock's own epoch.
//! Only differences between readings of the *same* clock are meaningful.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A monotonic time source plus the ability to wait.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Monotonic time since this clock's epoch.
    fn now(&self) -> Duration;

    /// Blocks (or simulates blocking) for `d`.
    fn sleep(&self, d: Duration);
}

/// A cheaply cloneable clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// The process-wide monotonic epoch: fixed at first use so every
/// [`SystemClock`] reading is comparable with every other.
fn system_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// The real clock: `Instant`-backed readings, `thread::sleep` waits.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        system_epoch().elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A shared handle to the system clock.
pub fn system_clock() -> SharedClock {
    static CLOCK: OnceLock<SharedClock> = OnceLock::new();
    Arc::clone(CLOCK.get_or_init(|| Arc::new(SystemClock)))
}

/// A test clock that only moves when told to (or when slept on).
///
/// `sleep` advances the clock by the requested duration instead of
/// blocking, so code under test that waits out a backoff completes
/// immediately while still observing the correct elapsed time.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock at its epoch (t = 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared handle to a fresh manual clock plus a second handle for
    /// the test to advance it through.
    pub fn shared() -> (SharedClock, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (Arc::clone(&clock) as SharedClock, clock)
    }

    /// Moves time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_only_on_demand() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(250));
        assert_eq!(c.now(), Duration::from_millis(250));
        // Sleeping advances instead of blocking.
        c.sleep(Duration::from_secs(3600));
        assert_eq!(c.now(), Duration::from_millis(250) + Duration::from_secs(3600));
    }

    #[test]
    fn shared_handles_observe_the_same_time() {
        let (clock, handle) = ManualClock::shared();
        handle.advance(Duration::from_secs(5));
        assert_eq!(clock.now(), Duration::from_secs(5));
    }
}
