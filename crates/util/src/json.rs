//! Minimal JSON support shared by the workspace's hand-rolled JSON
//! writers and the network front-end's request parser.
//!
//! Several subsystems emit JSON without a serialization dependency: the
//! ingest quarantine report (`inf2vec-ingest`), the serving layer's chaos
//! reconciliation report (`inf2vec-serve`), and assorted bench artifacts.
//! They all need exactly one hard part — correct string escaping — so it
//! lives here once instead of being re-rolled (and re-bugged) per crate.
//! (`inf2vec-obs` keeps a private copy by design: that crate is
//! deliberately zero-dependency so it can be lifted out wholesale.)
//!
//! The reading side ([`Json::parse`]) exists for the serving front-end,
//! which accepts request bodies from the network: it must turn *any*
//! byte sequence into either a value or a typed [`JsonError`], never a
//! panic, with recursion depth bounded so a `[[[[…` bomb cannot blow the
//! stack. Numbers are carried as `f64` (ids in this workspace are `u32`,
//! far inside the 2^53 exact-integer range).

use std::fmt::Write as _;

/// Appends the JSON escape of `s` (no surrounding quotes) to `out`.
///
/// Escapes the two mandatory characters (`"`, `\`), the common control
/// characters by short form (`\n`, `\r`, `\t`), and every other control
/// character as `\u00XX`. Everything else — including non-ASCII — passes
/// through verbatim, which is valid JSON (UTF-8 wire encoding).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends `s` as a complete JSON string literal (quotes included) to `out`.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Returns `s` as a complete JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_string(&mut out, s);
    out
}

/// Maximum nesting depth [`Json::parse`] accepts before rejecting the
/// document as a bomb.
pub const MAX_JSON_DEPTH: usize = 32;

/// A parsed JSON value.
///
/// Object members keep their document order in a `Vec` (the workspace
/// never needs hash-map lookup on more than a handful of keys, and a
/// `Vec` keeps this allocation-light and deterministic).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers are exact up to 2^53.
    Num(f64),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

/// Why a document was rejected; `offset` is the byte position (into the
/// UTF-8 text) where parsing gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the rejection point.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error. Depth is bounded by [`MAX_JSON_DEPTH`]; the input's size
    /// must be bounded by the caller (the HTTP layer caps body bytes).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative number with no
    /// fractional part (within the `f64`-exact range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9e15 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Member `key` of an object (first occurrence), if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_JSON_DEPTH}")));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null", Json::Null),
            Some(b't') => self.eat("true", Json::Bool(true)),
            Some(b'f') => self.eat("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            self.pos -= 1;
                            return Err(self.err(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let unit = self.hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by
        // an escaped low surrogate; lone surrogates are rejected.
        if (0xd800..0xdc00).contains(&unit) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xdc00..0xe000).contains(&low) {
                    let c = 0x10000 + ((unit as u32 - 0xd800) << 10) + (low as u32 - 0xdc00);
                    return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xdc00..0xe000).contains(&unit) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(unit as u32).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u16::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("\\u needs 4 hex digits"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected digits in exponent"));
            }
        }
        // The grammar above admits only what f64::from_str accepts, and
        // overflow parses to ±inf — reject that rather than serve it.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        let x: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        if !x.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(json_string("hello"), "\"hello\"");
        assert_eq!(json_string(""), "\"\"");
        assert_eq!(json_string("π é 日本"), "\"π é 日本\"");
    }

    #[test]
    fn mandatory_escapes() {
        assert_eq!(json_string("a\"b"), r#""a\"b""#);
        assert_eq!(json_string("a\\b"), r#""a\\b""#);
        assert_eq!(json_string("a\nb\tc\rd"), r#""a\nb\tc\rd""#);
    }

    #[test]
    fn control_characters_use_u_escapes() {
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_string("\u{1f}"), "\"\\u001f\"");
        // 0x20 (space) and above are literal.
        assert_eq!(json_string(" ~"), "\" ~\"");
    }

    #[test]
    fn push_appends_in_place() {
        let mut s = String::from("{\"k\":");
        push_json_string(&mut s, "v\n");
        s.push('}');
        assert_eq!(s, "{\"k\":\"v\\n\"}");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parse_request_shape() {
        let doc = r#"{"u": 3, "candidates": [1, 2, 9], "top_n": 2,
                      "deadline_ms": 50, "allow_degraded": false}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("u").and_then(Json::as_u64), Some(3));
        let cands: Vec<u64> = v
            .get("candidates")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|c| c.as_u64().unwrap())
            .collect();
        assert_eq!(cands, [1, 2, 9]);
        assert_eq!(v.get("top_n").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("allow_degraded").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_decodes_escapes_round_trip() {
        for original in ["a\"b\\c\n", "π é 日本", "\u{1}\u{1f}", "𝄞 clef"] {
            let doc = json_string(original);
            assert_eq!(
                Json::parse(&doc).unwrap(),
                Json::Str(original.to_string()),
                "round-trip of {original:?}"
            );
        }
        // Escapes the writer never produces still decode.
        assert_eq!(Json::parse(r#""\u00e9\/\b\f""#).unwrap(), Json::Str("é/\u{8}\u{c}".into()));
        assert_eq!(Json::parse(r#""\ud834\udd1e""#).unwrap(), Json::Str("𝄞".into()));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "", "   ", "{", "[", "\"", "{\"a\"}", "{\"a\":}", "[1,]", "{,}",
            "nul", "tru", "01x", "-", "1.", "1e", "1e+", "\"\\q\"",
            "\"\\u12\"", "\"\\ud800\"", "\"\\udc00 low first\"", "1 2",
            "{\"a\":1,}", "[1 2]", "+1", "NaN", "inf", "1e999",
            "\"raw \u{0} ctl\"",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_JSON_DEPTH), "]".repeat(MAX_JSON_DEPTH));
        assert!(Json::parse(&deep_ok).is_ok());
        let bomb = "[".repeat(100_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn parse_u64_rejects_fractional_and_negative() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("3.0").unwrap().as_u64(), Some(3));
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn parse_preserves_object_order_and_duplicate_first_wins() {
        let v = Json::parse(r#"{"b":1,"a":2,"b":3}"#).unwrap();
        match &v {
            Json::Obj(members) => {
                assert_eq!(members.len(), 3);
                assert_eq!(members[0].0, "b");
            }
            other => panic!("expected object, got {other:?}"),
        }
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(1), "first occurrence wins");
    }
}
