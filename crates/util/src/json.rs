//! Minimal JSON string escaping shared by the workspace's hand-rolled
//! JSON writers.
//!
//! Several subsystems emit JSON without a serialization dependency: the
//! ingest quarantine report (`inf2vec-ingest`), the serving layer's chaos
//! reconciliation report (`inf2vec-serve`), and assorted bench artifacts.
//! They all need exactly one hard part — correct string escaping — so it
//! lives here once instead of being re-rolled (and re-bugged) per crate.
//! (`inf2vec-obs` keeps a private copy by design: that crate is
//! deliberately zero-dependency so it can be lifted out wholesale.)

use std::fmt::Write as _;

/// Appends the JSON escape of `s` (no surrounding quotes) to `out`.
///
/// Escapes the two mandatory characters (`"`, `\`), the common control
/// characters by short form (`\n`, `\r`, `\t`), and every other control
/// character as `\u00XX`. Everything else — including non-ASCII — passes
/// through verbatim, which is valid JSON (UTF-8 wire encoding).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends `s` as a complete JSON string literal (quotes included) to `out`.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Returns `s` as a complete JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_string(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(json_string("hello"), "\"hello\"");
        assert_eq!(json_string(""), "\"\"");
        assert_eq!(json_string("π é 日本"), "\"π é 日本\"");
    }

    #[test]
    fn mandatory_escapes() {
        assert_eq!(json_string("a\"b"), r#""a\"b""#);
        assert_eq!(json_string("a\\b"), r#""a\\b""#);
        assert_eq!(json_string("a\nb\tc\rd"), r#""a\nb\tc\rd""#);
    }

    #[test]
    fn control_characters_use_u_escapes() {
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_string("\u{1f}"), "\"\\u001f\"");
        // 0x20 (space) and above are literal.
        assert_eq!(json_string(" ~"), "\" ~\"");
    }

    #[test]
    fn push_appends_in_place() {
        let mut s = String::from("{\"k\":");
        push_json_string(&mut s, "v\n");
        s.push('}');
        assert_eq!(s, "{\"k\":\"v\\n\"}");
    }
}
