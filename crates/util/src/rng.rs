//! Deterministic random number generation.
//!
//! Every randomized component in the workspace (graph generators, cascade
//! simulators, walk samplers, SGD trainers, evaluation splits) takes an
//! explicit `u64` seed so that any experiment can be reproduced exactly.
//!
//! Two generators are provided:
//!
//! - [`SplitMix64`]: a tiny, statistically solid generator used to *derive*
//!   independent seeds for sub-components ("streams") from a single master
//!   seed. Deriving, rather than reusing, seeds keeps component streams
//!   decorrelated even when components consume different amounts of
//!   randomness.
//! - [`Xoshiro256pp`]: xoshiro256++, the workhorse generator. It implements
//!   [`rand::RngCore`] and [`rand::SeedableRng`] so the whole `rand` API
//!   (`gen_range`, `shuffle`, distributions) is available on top of it.
//!
//! Both are implemented here rather than pulled from `rand`'s optional
//! features so the exact bit streams are pinned by this repository and cannot
//! change under us with a dependency upgrade.

use rand::{RngCore, SeedableRng};

/// SplitMix64 (Steele, Lea, Flood 2014). Used for seed derivation.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derives an independent stream seed from `(master, stream)`.
///
/// All workspace components that need their own generator should call this
/// with a distinct `stream` tag rather than reusing the master seed directly.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64::new(master ^ stream.wrapping_mul(0xa076_1d64_78bd_642f));
    // Burn one output so that (master, 0) != master's raw first output.
    sm.next_u64();
    sm.next_u64()
}

/// xoshiro256++ 1.0 (Blackman & Vigna). 256-bit state, 64-bit output,
/// period 2^256 - 1, passes BigCrush.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from a 64-bit seed, expanding the state with
    /// SplitMix64 as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state is invalid (fixed point); SplitMix64 cannot emit
        // four zeros in a row for any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Self { s }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the high 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` using the high 24 bits.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.step() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection
    /// method; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        // Lemire 2018: unbiased bounded generation without division in the
        // common case.
        let mut x = self.step();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.step();
                m = (x as u128).wrapping_mul(bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, len)`; `len` must be nonzero.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a nonempty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

impl RngCore for Xoshiro256pp {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.step().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.step().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256pp {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Direct import beats the glob imports (both super::* and proptest's
    // prelude re-export an RngCore), disambiguating method calls.
    use rand::RngCore;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism across constructions.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn split_seed_streams_differ() {
        let a = split_seed(42, 0);
        let b = split_seed(42, 1);
        let c = split_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, split_seed(42, 0));
    }

    #[test]
    fn xoshiro_deterministic() {
        let mut a = Xoshiro256pp::new(7);
        let mut b = Xoshiro256pp::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::new(99);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Xoshiro256pp::new(5);
        let n = 10u64;
        let mut counts = [0u32; 10];
        let trials = 100_000;
        for _ in 0..trials {
            counts[rng.below(n) as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for &c in &counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.1,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::new(11);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = Xoshiro256pp::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    proptest! {
        #[test]
        fn below_always_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
            let mut rng = Xoshiro256pp::new(seed);
            for _ in 0..32 {
                prop_assert!(rng.below(bound) < bound);
            }
        }

        #[test]
        fn chance_extremes(seed in any::<u64>()) {
            let mut rng = Xoshiro256pp::new(seed);
            prop_assert!(!rng.chance(0.0));
            prop_assert!(rng.chance(1.0));
        }
    }
}
