//! Summary statistics and significance testing for multi-run experiments.
//!
//! The paper reports each latent-representation result as the mean over 10
//! runs with a standard deviation, and claims significance at p < 0.05. We
//! reproduce both: [`RunningStats`]/[`Summary`] for mean ± σ, and
//! [`welch_t_test`] for the two-sample unequal-variance t-test, with the
//! Student-t CDF evaluated through the regularized incomplete beta function.

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stdev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Snapshot as an immutable [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            stdev: self.stdev(),
        }
    }
}

/// Immutable summary of a sample: count, mean, standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stdev: f64,
}

impl Summary {
    /// Summarizes a slice of observations.
    pub fn of(xs: &[f64]) -> Self {
        let mut s = RunningStats::new();
        for &x in xs {
            s.push(x);
        }
        s.summary()
    }
}

/// Result of a Welch two-sample t-test.
#[derive(Debug, Clone, Copy)]
pub struct WelchTest {
    /// The t statistic (positive when sample a's mean exceeds sample b's).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
}

/// Welch's unequal-variance t-test between two samples.
///
/// Returns `None` when either sample has fewer than two observations or when
/// both variances are zero (the statistic is undefined; with identical
/// constant samples there is nothing to test).
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<WelchTest> {
    let sa = Summary::of(a);
    let sb = Summary::of(b);
    if sa.n < 2 || sb.n < 2 {
        return None;
    }
    let va = sa.stdev * sa.stdev / sa.n as f64;
    let vb = sb.stdev * sb.stdev / sb.n as f64;
    let se2 = va + vb;
    if se2 == 0.0 {
        return None;
    }
    let t = (sa.mean - sb.mean) / se2.sqrt();
    let df = se2 * se2
        / (va * va / (sa.n as f64 - 1.0) + vb * vb / (sb.n as f64 - 1.0));
    let p = 2.0 * student_t_sf(t.abs(), df);
    Some(WelchTest {
        t,
        df,
        p_two_sided: p.clamp(0.0, 1.0),
    })
}

/// Survival function of the Student-t distribution: `P(T > t)` for `t >= 0`.
fn student_t_sf(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    // P(T > t) = I_{df/(df+t^2)}(df/2, 1/2) / 2 for t >= 0.
    let x = df / (df + t * t);
    0.5 * regularized_incomplete_beta(0.5 * df, 0.5, x)
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction of Numerical Recipes (Lentz's method).
fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn running_stats_basics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Population σ is 2; sample stdev = sqrt(32/7).
        assert!((s.stdev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.1), (5.0, 1.0, 0.9)] {
            let lhs = regularized_incomplete_beta(a, b, x);
            let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn student_t_reference_values() {
        // With df=10, P(T > 1.812) ≈ 0.05 (standard t-table value).
        let p = student_t_sf(1.812, 10.0);
        assert!((p - 0.05).abs() < 0.002, "got {p}");
        // With df=1 (Cauchy), P(T > 1) = 0.25.
        let p = student_t_sf(1.0, 1.0);
        assert!((p - 0.25).abs() < 1e-6, "got {p}");
    }

    #[test]
    fn welch_detects_clear_separation() {
        let a = [10.0, 10.1, 9.9, 10.05, 9.95];
        let b = [5.0, 5.2, 4.8, 5.1, 4.9];
        let test = welch_t_test(&a, &b).expect("test defined");
        assert!(test.t > 0.0);
        assert!(test.p_two_sided < 0.001, "p = {}", test.p_two_sided);
    }

    #[test]
    fn welch_overlapping_samples_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.5, 2.5, 2.9, 4.1, 4.6];
        let test = welch_t_test(&a, &b).expect("test defined");
        assert!(test.p_two_sided > 0.5, "p = {}", test.p_two_sided);
    }

    #[test]
    fn welch_degenerate_cases() {
        assert!(welch_t_test(&[1.0], &[2.0, 3.0]).is_none());
        assert!(welch_t_test(&[1.0, 1.0], &[1.0, 1.0]).is_none());
    }

    proptest! {
        /// p-values are probabilities and symmetric in sample order.
        #[test]
        fn proptest_p_value_bounds(
            a in prop::collection::vec(-10.0f64..10.0, 3..12),
            b in prop::collection::vec(-10.0f64..10.0, 3..12),
        ) {
            if let Some(t1) = welch_t_test(&a, &b) {
                prop_assert!((0.0..=1.0).contains(&t1.p_two_sided));
                let t2 = welch_t_test(&b, &a).unwrap();
                prop_assert!((t1.p_two_sided - t2.p_two_sided).abs() < 1e-9);
                prop_assert!((t1.t + t2.t).abs() < 1e-9);
            }
        }

        /// Incomplete beta is within [0,1] and monotone in x.
        #[test]
        fn proptest_beta_monotone(a in 0.2f64..20.0, b in 0.2f64..20.0, x in 0.0f64..1.0, d in 0.0f64..0.5) {
            let lo = regularized_incomplete_beta(a, b, x);
            let hi = regularized_incomplete_beta(a, b, (x + d).min(1.0));
            prop_assert!((0.0..=1.0).contains(&lo));
            prop_assert!(hi >= lo - 1e-9);
        }
    }
}
