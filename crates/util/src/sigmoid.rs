//! Precomputed sigmoid lookup table.
//!
//! Skip-gram training evaluates `σ(x) = 1 / (1 + e^{-x})` for every positive
//! and negative sample; following the original word2vec implementation we
//! precompute the function on a uniform grid over `[-MAX_X, MAX_X]` and clamp
//! outside it, where the gradient is negligible anyway.

/// Sigmoid of `x`, computed exactly.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A lookup table for the logistic sigmoid on `[-max_x, max_x]`.
#[derive(Debug, Clone)]
pub struct SigmoidTable {
    table: Vec<f32>,
    max_x: f32,
    scale: f32,
}

impl SigmoidTable {
    /// word2vec defaults: 6.0 clamp, 1000 bins.
    pub const DEFAULT_MAX_X: f32 = 6.0;
    /// Default number of bins.
    pub const DEFAULT_BINS: usize = 1024;

    /// Builds a table with `bins` samples over `[-max_x, max_x]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2` or `max_x <= 0`.
    pub fn new(max_x: f32, bins: usize) -> Self {
        assert!(bins >= 2, "need at least two bins");
        assert!(max_x > 0.0, "max_x must be positive");
        let table: Vec<f32> = (0..bins)
            .map(|i| {
                let x = -max_x + 2.0 * max_x * (i as f32 + 0.5) / bins as f32;
                sigmoid(x)
            })
            .collect();
        Self {
            table,
            max_x,
            scale: bins as f32 / (2.0 * max_x),
        }
    }

    /// Looks up `σ(x)`, clamping to 0/1 outside `[-max_x, max_x]`.
    ///
    /// The maximum absolute error with the default parameters is below 3e-3,
    /// which is well inside SGD noise.
    #[inline]
    pub fn get(&self, x: f32) -> f32 {
        if x <= -self.max_x {
            return 0.0;
        }
        if x >= self.max_x {
            return 1.0;
        }
        let idx = ((x + self.max_x) * self.scale) as usize;
        // Guard the upper boundary against float rounding.
        self.table[idx.min(self.table.len() - 1)]
    }
}

impl Default for SigmoidTable {
    fn default() -> Self {
        Self::new(Self::DEFAULT_MAX_X, Self::DEFAULT_BINS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_sigmoid_midpoint() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
    }

    #[test]
    fn table_close_to_exact() {
        let t = SigmoidTable::default();
        let mut max_err: f32 = 0.0;
        let mut x = -8.0f32;
        while x <= 8.0 {
            max_err = max_err.max((t.get(x) - sigmoid(x)).abs());
            x += 0.003;
        }
        assert!(max_err < 3e-3, "max error {max_err} too large");
    }

    #[test]
    fn clamps_outside_range() {
        let t = SigmoidTable::default();
        assert_eq!(t.get(100.0), 1.0);
        assert_eq!(t.get(-100.0), 0.0);
        assert_eq!(t.get(f32::INFINITY), 1.0);
        assert_eq!(t.get(f32::NEG_INFINITY), 0.0);
    }

    #[test]
    #[should_panic(expected = "two bins")]
    fn rejects_tiny_table() {
        let _ = SigmoidTable::new(6.0, 1);
    }

    proptest! {
        /// The table output is always in [0, 1] and monotone on the grid.
        #[test]
        fn proptest_bounds(x in -50.0f32..50.0) {
            let t = SigmoidTable::default();
            let y = t.get(x);
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn proptest_monotone(a in -6.0f32..6.0, d in 0.1f32..3.0) {
            let t = SigmoidTable::default();
            prop_assert!(t.get(a + d) >= t.get(a) - 1e-6);
        }
    }
}
