//! Fault-injection `Write`/`Read` adapters and fixture manglers for
//! robustness tests.
//!
//! These wrappers let tests simulate the disk failures the persistence
//! layer must survive — truncation (power loss mid-write), bit corruption
//! (bad sectors, partial flushes), and hard I/O errors (full disk, yanked
//! mount) — without touching a real device. The read side mirrors them for
//! the ingestion layer: [`CorruptingReader`] rots bytes in flight, and
//! [`mangle_lines`] turns a clean text fixture into the kind of dirty
//! SNAP-style crawl dump real ingestion must survive (junk lines, bit
//! flips, truncated lines, shuffled fields, CRLF, BOM, interleaved NULs).
//! They live in the library (not `#[cfg(test)]`) so integration tests and
//! downstream crates can reuse them, but nothing on a production code path
//! constructs one.

use std::io::{self, Read, Write};

use crate::rng::Xoshiro256pp;

/// Writes through to the inner writer until `limit` bytes have passed,
/// then silently discards the rest — the on-disk image of a crash that
/// happened mid-write without an atomic rename protecting it.
#[derive(Debug)]
pub struct TruncatingWriter<W> {
    inner: W,
    remaining: usize,
}

impl<W: Write> TruncatingWriter<W> {
    /// Passes through at most `limit` bytes to `inner`.
    pub fn new(inner: W, limit: usize) -> Self {
        Self {
            inner,
            remaining: limit,
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for TruncatingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let pass = buf.len().min(self.remaining);
        if pass > 0 {
            let written = self.inner.write(&buf[..pass])?;
            self.remaining -= written;
            // Report the whole buffer as written so the producer keeps
            // going, exactly like a kernel that buffered but never flushed.
            if written == pass {
                return Ok(buf.len());
            }
            return Ok(written);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Writes through until `fail_after` bytes have passed, then returns a
/// hard `io::Error` on every subsequent write — a disk that filled up.
#[derive(Debug)]
pub struct FailingWriter<W> {
    inner: W,
    remaining: usize,
}

impl<W: Write> FailingWriter<W> {
    /// Accepts `fail_after` bytes, then errors forever.
    pub fn new(inner: W, fail_after: usize) -> Self {
        Self {
            inner,
            remaining: fail_after,
        }
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected write failure"));
        }
        let pass = buf.len().min(self.remaining);
        let written = self.inner.write(&buf[..pass])?;
        self.remaining -= written;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Deterministically flips one bit roughly every `period` bytes — silent
/// corruption a loader must detect rather than deserialize into garbage
/// parameters.
#[derive(Debug)]
pub struct CorruptingWriter<W> {
    inner: W,
    period: usize,
    written: usize,
}

impl<W: Write> CorruptingWriter<W> {
    /// Flips the low bit of every `period`-th byte (period ≥ 1).
    pub fn new(inner: W, period: usize) -> Self {
        Self {
            inner,
            period: period.max(1),
            written: 0,
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for CorruptingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut owned = buf.to_vec();
        for (i, byte) in owned.iter_mut().enumerate() {
            if (self.written + i + 1).is_multiple_of(self.period) {
                *byte ^= 1;
            }
        }
        let written = self.inner.write(&owned)?;
        self.written += written;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Deterministically flips one bit roughly every `period` bytes *read* —
/// the mirror of [`CorruptingWriter`] for loaders: the on-disk file is
/// clean, but what the parser sees has rotted in flight.
#[derive(Debug)]
pub struct CorruptingReader<R> {
    inner: R,
    period: usize,
    seen: usize,
}

impl<R: Read> CorruptingReader<R> {
    /// Flips the low bit of every `period`-th byte read (period ≥ 1).
    pub fn new(inner: R, period: usize) -> Self {
        Self {
            inner,
            period: period.max(1),
            seen: 0,
        }
    }
}

impl<R: Read> Read for CorruptingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        for (i, byte) in buf[..n].iter_mut().enumerate() {
            if (self.seen + i + 1).is_multiple_of(self.period) {
                *byte ^= 1;
            }
        }
        self.seen += n;
        Ok(n)
    }
}

/// How [`mangle_lines`] is allowed to damage a fixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MangleMode {
    /// Only *insert* whole junk lines between the clean ones; every clean
    /// line survives byte-for-byte. A `Skip`-policy loader must therefore
    /// recover a dataset bit-identical to the clean fixture's.
    InjectJunk,
    /// Additionally damage clean lines in place: bit flips, mid-line
    /// truncation, field shuffling, CRLF endings, a leading BOM,
    /// interleaved NULs. Recovery is best-effort; the only guarantee a
    /// loader owes is "no panic, defects accounted for".
    CorruptInPlace,
}

/// The junk-line repertoire shared by both modes: everything a crawler dump
/// can contain between valid records.
fn junk_line(rng: &mut Xoshiro256pp) -> Vec<u8> {
    match rng.below(8) {
        0 => b"garbage line that is not a record".to_vec(),
        1 => b"12 34 56 78 99".to_vec(),               // too many fields
        2 => b"42".to_vec(),                           // too few fields
        3 => b"\x00\x00\x00\x00".to_vec(),             // NUL noise
        4 => b"7 not_a_number".to_vec(),               // non-numeric field
        5 => b"\xff\xfe\xba\xad\xf0\x0d".to_vec(),     // invalid UTF-8
        6 => b"99999999999999999999999999 3".to_vec(), // id overflow
        7 => {
            // A pathologically long line (buffer-handling stress).
            let mut v = Vec::with_capacity(512);
            while v.len() < 512 {
                v.extend_from_slice(b"xyzzy ");
            }
            v
        }
        _ => unreachable!(),
    }
}

/// Deterministically mangles a line-oriented text fixture.
///
/// With probability `rate` per clean line a junk line is inserted before
/// it; in [`MangleMode::CorruptInPlace`] the clean line itself is also
/// damaged with probability `rate`. The output always begins with a UTF-8
/// BOM in `CorruptInPlace` mode (a classic Windows-exported-crawl artifact)
/// and a final junk line is appended in both modes, so a positive `rate`
/// yields at least one defect. Deterministic per `(input, seed, mode,
/// rate)`.
pub fn mangle_lines(input: &[u8], seed: u64, mode: MangleMode, rate: f64) -> Vec<u8> {
    let mut rng = Xoshiro256pp::new(seed);
    let mut out = Vec::with_capacity(input.len() + input.len() / 4 + 64);
    if mode == MangleMode::CorruptInPlace {
        out.extend_from_slice(b"\xef\xbb\xbf");
    }
    for line in input.split(|&b| b == b'\n') {
        if line.is_empty() {
            continue;
        }
        if rng.chance(rate) {
            out.extend_from_slice(&junk_line(&mut rng));
            out.push(b'\n');
        }
        let mut owned = line.to_vec();
        if mode == MangleMode::CorruptInPlace && rng.chance(rate) {
            match rng.below(5) {
                0 => {
                    // Flip one bit somewhere in the line.
                    let i = rng.index(owned.len());
                    owned[i] ^= 1 << rng.below(8);
                }
                1 => {
                    // Truncate mid-line.
                    owned.truncate(rng.index(owned.len()));
                }
                2 => {
                    // Shuffle whitespace-separated fields.
                    let mut fields: Vec<&[u8]> =
                        owned.split(|&b| b == b' ' || b == b'\t').collect();
                    rng.shuffle(&mut fields);
                    owned = fields.join(&b'\t');
                }
                3 => {
                    // Interleave a NUL byte.
                    owned.insert(rng.index(owned.len() + 1), 0);
                }
                4 => {
                    // CRLF line ending.
                    owned.push(b'\r');
                }
                _ => unreachable!(),
            }
        }
        out.extend_from_slice(&owned);
        out.push(b'\n');
    }
    if rate > 0.0 {
        out.extend_from_slice(&junk_line(&mut rng));
        out.push(b'\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncating_cuts_at_limit() {
        let mut w = TruncatingWriter::new(Vec::new(), 5);
        w.write_all(b"hello world").unwrap();
        w.write_all(b"more").unwrap();
        assert_eq!(w.into_inner(), b"hello");
    }

    #[test]
    fn failing_errors_after_budget() {
        let mut w = FailingWriter::new(Vec::new(), 3);
        assert!(w.write_all(b"abc").is_ok());
        assert!(w.write_all(b"d").is_err());
    }

    #[test]
    fn corrupting_flips_bits_deterministically() {
        let mut w = CorruptingWriter::new(Vec::new(), 4);
        w.write_all(&[0u8; 8]).unwrap();
        assert_eq!(w.inner, vec![0, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn corrupting_reader_mirrors_writer() {
        let clean = [0u8; 8];
        let mut rotted = Vec::new();
        CorruptingReader::new(clean.as_slice(), 4)
            .read_to_end(&mut rotted)
            .unwrap();
        assert_eq!(rotted, vec![0, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn inject_junk_preserves_clean_lines() {
        let clean = b"0\t1\n1\t2\n4\t0\n";
        let dirty = mangle_lines(clean, 7, MangleMode::InjectJunk, 0.5);
        assert_ne!(dirty, clean.to_vec());
        // Every clean line survives byte-for-byte, in order.
        let clean_lines: Vec<&[u8]> =
            clean.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();
        let mut it = dirty.split(|&b| b == b'\n');
        for want in &clean_lines {
            assert!(
                it.any(|l| l == *want),
                "clean line {want:?} lost from {dirty:?}"
            );
        }
    }

    #[test]
    fn mangle_is_deterministic_per_seed() {
        let clean = b"0 1\n1 2\n2 3\n3 4\n";
        let a = mangle_lines(clean, 3, MangleMode::CorruptInPlace, 0.8);
        let b = mangle_lines(clean, 3, MangleMode::CorruptInPlace, 0.8);
        let c = mangle_lines(clean, 4, MangleMode::CorruptInPlace, 0.8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn corrupt_in_place_starts_with_bom_and_adds_junk() {
        let clean = b"0 1\n";
        let dirty = mangle_lines(clean, 1, MangleMode::CorruptInPlace, 1.0);
        assert!(dirty.starts_with(b"\xef\xbb\xbf"));
        assert!(dirty.len() > clean.len());
    }

    #[test]
    fn zero_rate_inject_junk_is_identity_modulo_trailing_newline() {
        let clean = b"0 1\n1 2\n";
        let out = mangle_lines(clean, 9, MangleMode::InjectJunk, 0.0);
        assert_eq!(out, clean.to_vec());
    }
}
