//! Fault-injection `Write` adapters for robustness tests.
//!
//! These wrappers let tests simulate the disk failures the persistence
//! layer must survive — truncation (power loss mid-write), bit corruption
//! (bad sectors, partial flushes), and hard I/O errors (full disk, yanked
//! mount) — without touching a real device. They live in the library (not
//! `#[cfg(test)]`) so integration tests and downstream crates can reuse
//! them, but nothing on a production code path constructs one.

use std::io::{self, Write};

/// Writes through to the inner writer until `limit` bytes have passed,
/// then silently discards the rest — the on-disk image of a crash that
/// happened mid-write without an atomic rename protecting it.
#[derive(Debug)]
pub struct TruncatingWriter<W> {
    inner: W,
    remaining: usize,
}

impl<W: Write> TruncatingWriter<W> {
    /// Passes through at most `limit` bytes to `inner`.
    pub fn new(inner: W, limit: usize) -> Self {
        Self {
            inner,
            remaining: limit,
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for TruncatingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let pass = buf.len().min(self.remaining);
        if pass > 0 {
            let written = self.inner.write(&buf[..pass])?;
            self.remaining -= written;
            // Report the whole buffer as written so the producer keeps
            // going, exactly like a kernel that buffered but never flushed.
            if written == pass {
                return Ok(buf.len());
            }
            return Ok(written);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Writes through until `fail_after` bytes have passed, then returns a
/// hard `io::Error` on every subsequent write — a disk that filled up.
#[derive(Debug)]
pub struct FailingWriter<W> {
    inner: W,
    remaining: usize,
}

impl<W: Write> FailingWriter<W> {
    /// Accepts `fail_after` bytes, then errors forever.
    pub fn new(inner: W, fail_after: usize) -> Self {
        Self {
            inner,
            remaining: fail_after,
        }
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected write failure"));
        }
        let pass = buf.len().min(self.remaining);
        let written = self.inner.write(&buf[..pass])?;
        self.remaining -= written;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Deterministically flips one bit roughly every `period` bytes — silent
/// corruption a loader must detect rather than deserialize into garbage
/// parameters.
#[derive(Debug)]
pub struct CorruptingWriter<W> {
    inner: W,
    period: usize,
    written: usize,
}

impl<W: Write> CorruptingWriter<W> {
    /// Flips the low bit of every `period`-th byte (period ≥ 1).
    pub fn new(inner: W, period: usize) -> Self {
        Self {
            inner,
            period: period.max(1),
            written: 0,
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for CorruptingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut owned = buf.to_vec();
        for (i, byte) in owned.iter_mut().enumerate() {
            if (self.written + i + 1).is_multiple_of(self.period) {
                *byte ^= 1;
            }
        }
        let written = self.inner.write(&owned)?;
        self.written += written;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncating_cuts_at_limit() {
        let mut w = TruncatingWriter::new(Vec::new(), 5);
        w.write_all(b"hello world").unwrap();
        w.write_all(b"more").unwrap();
        assert_eq!(w.into_inner(), b"hello");
    }

    #[test]
    fn failing_errors_after_budget() {
        let mut w = FailingWriter::new(Vec::new(), 3);
        assert!(w.write_all(b"abc").is_ok());
        assert!(w.write_all(b"d").is_err());
    }

    #[test]
    fn corrupting_flips_bits_deterministically() {
        let mut w = CorruptingWriter::new(Vec::new(), 4);
        w.write_all(&[0u8; 8]).unwrap();
        assert_eq!(w.inner, vec![0, 0, 0, 1, 0, 0, 0, 1]);
    }
}
