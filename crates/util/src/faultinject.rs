//! Fault-injection `Write`/`Read` adapters and fixture manglers for
//! robustness tests.
//!
//! These wrappers let tests simulate the disk failures the persistence
//! layer must survive — truncation (power loss mid-write), bit corruption
//! (bad sectors, partial flushes), and hard I/O errors (full disk, yanked
//! mount) — without touching a real device. The read side mirrors them for
//! the ingestion layer: [`CorruptingReader`] rots bytes in flight, and
//! [`mangle_lines`] turns a clean text fixture into the kind of dirty
//! SNAP-style crawl dump real ingestion must survive (junk lines, bit
//! flips, truncated lines, shuffled fields, CRLF, BOM, interleaved NULs).
//! For the serving layer, [`SlowReader`], [`FlakyReader`], and
//! [`TruncatingReader`] simulate slow, dying, and truncated snapshot
//! streams, and a [`FaultSchedule`] scripts a deterministic sequence of
//! [`SnapshotFault`]s for chaos runs — one fault consumed per load attempt.
//! They live in the library (not `#[cfg(test)]`) so integration tests and
//! downstream crates can reuse them, but nothing on a production code path
//! constructs one.

use std::io::{self, Read, Write};

use crate::rng::Xoshiro256pp;

/// Writes through to the inner writer until `limit` bytes have passed,
/// then silently discards the rest — the on-disk image of a crash that
/// happened mid-write without an atomic rename protecting it.
#[derive(Debug)]
pub struct TruncatingWriter<W> {
    inner: W,
    remaining: usize,
}

impl<W: Write> TruncatingWriter<W> {
    /// Passes through at most `limit` bytes to `inner`.
    pub fn new(inner: W, limit: usize) -> Self {
        Self {
            inner,
            remaining: limit,
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for TruncatingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let pass = buf.len().min(self.remaining);
        if pass > 0 {
            let written = self.inner.write(&buf[..pass])?;
            self.remaining -= written;
            // Report the whole buffer as written so the producer keeps
            // going, exactly like a kernel that buffered but never flushed.
            if written == pass {
                return Ok(buf.len());
            }
            return Ok(written);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Writes through until `fail_after` bytes have passed, then returns a
/// hard `io::Error` on every subsequent write — a disk that filled up.
#[derive(Debug)]
pub struct FailingWriter<W> {
    inner: W,
    remaining: usize,
}

impl<W: Write> FailingWriter<W> {
    /// Accepts `fail_after` bytes, then errors forever.
    pub fn new(inner: W, fail_after: usize) -> Self {
        Self {
            inner,
            remaining: fail_after,
        }
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected write failure"));
        }
        let pass = buf.len().min(self.remaining);
        let written = self.inner.write(&buf[..pass])?;
        self.remaining -= written;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Deterministically flips one bit roughly every `period` bytes — silent
/// corruption a loader must detect rather than deserialize into garbage
/// parameters.
#[derive(Debug)]
pub struct CorruptingWriter<W> {
    inner: W,
    period: usize,
    written: usize,
}

impl<W: Write> CorruptingWriter<W> {
    /// Flips the low bit of every `period`-th byte (period ≥ 1).
    pub fn new(inner: W, period: usize) -> Self {
        Self {
            inner,
            period: period.max(1),
            written: 0,
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for CorruptingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut owned = buf.to_vec();
        for (i, byte) in owned.iter_mut().enumerate() {
            if (self.written + i + 1).is_multiple_of(self.period) {
                *byte ^= 1;
            }
        }
        let written = self.inner.write(&owned)?;
        self.written += written;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Deterministically flips one bit roughly every `period` bytes *read* —
/// the mirror of [`CorruptingWriter`] for loaders: the on-disk file is
/// clean, but what the parser sees has rotted in flight.
#[derive(Debug)]
pub struct CorruptingReader<R> {
    inner: R,
    period: usize,
    seen: usize,
}

impl<R: Read> CorruptingReader<R> {
    /// Flips the low bit of every `period`-th byte read (period ≥ 1).
    pub fn new(inner: R, period: usize) -> Self {
        Self {
            inner,
            period: period.max(1),
            seen: 0,
        }
    }
}

impl<R: Read> Read for CorruptingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        for (i, byte) in buf[..n].iter_mut().enumerate() {
            if (self.seen + i + 1).is_multiple_of(self.period) {
                *byte ^= 1;
            }
        }
        self.seen += n;
        Ok(n)
    }
}

/// Reports end-of-file after `limit` bytes even though the inner reader has
/// more — the read-side image of a truncated snapshot file (power loss
/// mid-write with no atomic rename protecting it).
#[derive(Debug)]
pub struct TruncatingReader<R> {
    inner: R,
    remaining: usize,
}

impl<R: Read> TruncatingReader<R> {
    /// Yields at most `limit` bytes, then EOF.
    pub fn new(inner: R, limit: usize) -> Self {
        Self {
            inner,
            remaining: limit,
        }
    }
}

impl<R: Read> Read for TruncatingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Ok(0);
        }
        let cap = buf.len().min(self.remaining);
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n;
        Ok(n)
    }
}

/// Reads through until `fail_after` bytes have passed, then returns a hard
/// `io::Error` on every subsequent read — a yanked mount or a dying disk
/// encountered mid-load.
#[derive(Debug)]
pub struct FlakyReader<R> {
    inner: R,
    remaining: usize,
}

impl<R: Read> FlakyReader<R> {
    /// Delivers `fail_after` bytes, then errors forever.
    pub fn new(inner: R, fail_after: usize) -> Self {
        Self {
            inner,
            remaining: fail_after,
        }
    }
}

impl<R: Read> Read for FlakyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other("injected read failure"));
        }
        let cap = buf.len().min(self.remaining);
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n;
        Ok(n)
    }
}

/// Caps each read at `chunk` bytes and sleeps `delay` before every chunk —
/// an overloaded NFS volume or cold object store. Total injected latency is
/// `ceil(len / chunk) * delay`, so tests can bound it precisely.
#[derive(Debug)]
pub struct SlowReader<R> {
    inner: R,
    delay: std::time::Duration,
    chunk: usize,
}

impl<R: Read> SlowReader<R> {
    /// Sleeps `delay` before each at-most-`chunk`-byte read (chunk ≥ 1).
    pub fn new(inner: R, delay: std::time::Duration, chunk: usize) -> Self {
        Self {
            inner,
            delay,
            chunk: chunk.max(1),
        }
    }
}

impl<R: Read> Read for SlowReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        std::thread::sleep(self.delay);
        let cap = buf.len().min(self.chunk);
        self.inner.read(&mut buf[..cap])
    }
}

/// One scripted fault applied to a snapshot read, consumed from a
/// [`FaultSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFault {
    /// Read cleanly.
    Clean,
    /// Sleep `delay_ms` before every `chunk`-byte read ([`SlowReader`]).
    Slow {
        /// Milliseconds of sleep injected per chunk.
        delay_ms: u64,
        /// Bytes delivered per read.
        chunk: usize,
    },
    /// Hard I/O error after `fail_after` bytes ([`FlakyReader`]).
    Flaky {
        /// Bytes delivered before the injected error.
        fail_after: usize,
    },
    /// Bit-flip every `period`-th byte ([`CorruptingReader`]).
    Corrupt {
        /// Corruption period in bytes.
        period: usize,
    },
    /// EOF after `limit` bytes ([`TruncatingReader`]).
    Truncate {
        /// Bytes delivered before the premature EOF.
        limit: usize,
    },
}

impl SnapshotFault {
    /// Wraps `inner` in the reader this fault describes.
    pub fn wrap<R: Read>(self, inner: R) -> FaultReader<R> {
        match self {
            SnapshotFault::Clean => FaultReader::Clean(inner),
            SnapshotFault::Slow { delay_ms, chunk } => FaultReader::Slow(SlowReader::new(
                inner,
                std::time::Duration::from_millis(delay_ms),
                chunk,
            )),
            SnapshotFault::Flaky { fail_after } => {
                FaultReader::Flaky(FlakyReader::new(inner, fail_after))
            }
            SnapshotFault::Corrupt { period } => {
                FaultReader::Corrupt(CorruptingReader::new(inner, period))
            }
            SnapshotFault::Truncate { limit } => {
                FaultReader::Truncate(TruncatingReader::new(inner, limit))
            }
        }
    }

    /// Whether a loader fed through this fault is expected to fail (or at
    /// least to reject the payload). `Slow` is the exception: it must
    /// succeed, just late.
    pub fn expect_load_failure(self) -> bool {
        matches!(
            self,
            SnapshotFault::Flaky { .. }
                | SnapshotFault::Corrupt { .. }
                | SnapshotFault::Truncate { .. }
        )
    }
}

/// The concrete reader for one [`SnapshotFault`] (a closed enum instead of
/// a `Box<dyn Read>` so no allocation or vtable sits on the load path).
#[derive(Debug)]
pub enum FaultReader<R> {
    /// Pass-through.
    Clean(R),
    /// Delayed reads.
    Slow(SlowReader<R>),
    /// Hard error mid-stream.
    Flaky(FlakyReader<R>),
    /// Bit rot in flight.
    Corrupt(CorruptingReader<R>),
    /// Premature EOF.
    Truncate(TruncatingReader<R>),
}

impl<R: Read> Read for FaultReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            FaultReader::Clean(r) => r.read(buf),
            FaultReader::Slow(r) => r.read(buf),
            FaultReader::Flaky(r) => r.read(buf),
            FaultReader::Corrupt(r) => r.read(buf),
            FaultReader::Truncate(r) => r.read(buf),
        }
    }
}

/// A scripted sequence of snapshot faults, consumed one per load attempt.
///
/// The chaos harness builds one schedule up front, then every snapshot
/// (re)load takes the next step; once the script is exhausted every further
/// load is [`SnapshotFault::Clean`]. Thread-safe: steps are handed out by
/// an atomic cursor, so concurrent loaders each get a distinct step.
#[derive(Debug)]
pub struct FaultSchedule {
    steps: Vec<SnapshotFault>,
    cursor: std::sync::atomic::AtomicUsize,
}

impl FaultSchedule {
    /// A schedule that plays `steps` in order, then stays clean.
    pub fn new(steps: Vec<SnapshotFault>) -> Self {
        Self {
            steps,
            cursor: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Takes the next scripted fault (clean once exhausted).
    pub fn next_fault(&self) -> SnapshotFault {
        let i = self
            .cursor
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.steps.get(i).copied().unwrap_or(SnapshotFault::Clean)
    }

    /// How many steps have been consumed so far.
    pub fn consumed(&self) -> usize {
        self.cursor
            .load(std::sync::atomic::Ordering::Relaxed)
            .min(self.steps.len())
    }

    /// Total scripted steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The scripted steps.
    pub fn steps(&self) -> &[SnapshotFault] {
        &self.steps
    }
}

/// How [`mangle_lines`] is allowed to damage a fixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MangleMode {
    /// Only *insert* whole junk lines between the clean ones; every clean
    /// line survives byte-for-byte. A `Skip`-policy loader must therefore
    /// recover a dataset bit-identical to the clean fixture's.
    InjectJunk,
    /// Additionally damage clean lines in place: bit flips, mid-line
    /// truncation, field shuffling, CRLF endings, a leading BOM,
    /// interleaved NULs. Recovery is best-effort; the only guarantee a
    /// loader owes is "no panic, defects accounted for".
    CorruptInPlace,
}

/// The junk-line repertoire shared by both modes: everything a crawler dump
/// can contain between valid records.
fn junk_line(rng: &mut Xoshiro256pp) -> Vec<u8> {
    match rng.below(8) {
        0 => b"garbage line that is not a record".to_vec(),
        1 => b"12 34 56 78 99".to_vec(),               // too many fields
        2 => b"42".to_vec(),                           // too few fields
        3 => b"\x00\x00\x00\x00".to_vec(),             // NUL noise
        4 => b"7 not_a_number".to_vec(),               // non-numeric field
        5 => b"\xff\xfe\xba\xad\xf0\x0d".to_vec(),     // invalid UTF-8
        6 => b"99999999999999999999999999 3".to_vec(), // id overflow
        7 => {
            // A pathologically long line (buffer-handling stress).
            let mut v = Vec::with_capacity(512);
            while v.len() < 512 {
                v.extend_from_slice(b"xyzzy ");
            }
            v
        }
        _ => unreachable!(),
    }
}

/// Deterministically mangles a line-oriented text fixture.
///
/// With probability `rate` per clean line a junk line is inserted before
/// it; in [`MangleMode::CorruptInPlace`] the clean line itself is also
/// damaged with probability `rate`. The output always begins with a UTF-8
/// BOM in `CorruptInPlace` mode (a classic Windows-exported-crawl artifact)
/// and a final junk line is appended in both modes, so a positive `rate`
/// yields at least one defect. Deterministic per `(input, seed, mode,
/// rate)`.
pub fn mangle_lines(input: &[u8], seed: u64, mode: MangleMode, rate: f64) -> Vec<u8> {
    let mut rng = Xoshiro256pp::new(seed);
    let mut out = Vec::with_capacity(input.len() + input.len() / 4 + 64);
    if mode == MangleMode::CorruptInPlace {
        out.extend_from_slice(b"\xef\xbb\xbf");
    }
    for line in input.split(|&b| b == b'\n') {
        if line.is_empty() {
            continue;
        }
        if rng.chance(rate) {
            out.extend_from_slice(&junk_line(&mut rng));
            out.push(b'\n');
        }
        let mut owned = line.to_vec();
        if mode == MangleMode::CorruptInPlace && rng.chance(rate) {
            match rng.below(5) {
                0 => {
                    // Flip one bit somewhere in the line.
                    let i = rng.index(owned.len());
                    owned[i] ^= 1 << rng.below(8);
                }
                1 => {
                    // Truncate mid-line.
                    owned.truncate(rng.index(owned.len()));
                }
                2 => {
                    // Shuffle whitespace-separated fields.
                    let mut fields: Vec<&[u8]> =
                        owned.split(|&b| b == b' ' || b == b'\t').collect();
                    rng.shuffle(&mut fields);
                    owned = fields.join(&b'\t');
                }
                3 => {
                    // Interleave a NUL byte.
                    owned.insert(rng.index(owned.len() + 1), 0);
                }
                4 => {
                    // CRLF line ending.
                    owned.push(b'\r');
                }
                _ => unreachable!(),
            }
        }
        out.extend_from_slice(&owned);
        out.push(b'\n');
    }
    if rate > 0.0 {
        out.extend_from_slice(&junk_line(&mut rng));
        out.push(b'\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncating_cuts_at_limit() {
        let mut w = TruncatingWriter::new(Vec::new(), 5);
        w.write_all(b"hello world").unwrap();
        w.write_all(b"more").unwrap();
        assert_eq!(w.into_inner(), b"hello");
    }

    #[test]
    fn failing_errors_after_budget() {
        let mut w = FailingWriter::new(Vec::new(), 3);
        assert!(w.write_all(b"abc").is_ok());
        assert!(w.write_all(b"d").is_err());
    }

    #[test]
    fn corrupting_flips_bits_deterministically() {
        let mut w = CorruptingWriter::new(Vec::new(), 4);
        w.write_all(&[0u8; 8]).unwrap();
        assert_eq!(w.inner, vec![0, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn corrupting_reader_mirrors_writer() {
        let clean = [0u8; 8];
        let mut rotted = Vec::new();
        CorruptingReader::new(clean.as_slice(), 4)
            .read_to_end(&mut rotted)
            .unwrap();
        assert_eq!(rotted, vec![0, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn truncating_reader_reports_early_eof() {
        let mut out = Vec::new();
        TruncatingReader::new(&b"hello world"[..], 5)
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, b"hello");
    }

    #[test]
    fn flaky_reader_errors_after_budget() {
        let mut r = FlakyReader::new(&b"abcdef"[..], 4);
        let mut buf = [0u8; 3];
        assert_eq!(r.read(&mut buf).unwrap(), 3);
        assert_eq!(r.read(&mut buf).unwrap(), 1);
        assert!(r.read(&mut buf).is_err());
    }

    #[test]
    fn slow_reader_chunks_and_delivers_everything() {
        let start = std::time::Instant::now();
        let mut out = Vec::new();
        SlowReader::new(&b"0123456789"[..], std::time::Duration::from_millis(2), 3)
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, b"0123456789");
        // 10 bytes at 3/chunk = 4 data reads (+1 EOF read), ≥ 8ms injected.
        assert!(start.elapsed() >= std::time::Duration::from_millis(8));
    }

    #[test]
    fn fault_schedule_plays_in_order_then_stays_clean() {
        let sched = FaultSchedule::new(vec![
            SnapshotFault::Corrupt { period: 7 },
            SnapshotFault::Clean,
            SnapshotFault::Flaky { fail_after: 2 },
        ]);
        assert_eq!(sched.len(), 3);
        assert_eq!(sched.next_fault(), SnapshotFault::Corrupt { period: 7 });
        assert_eq!(sched.next_fault(), SnapshotFault::Clean);
        assert_eq!(sched.next_fault(), SnapshotFault::Flaky { fail_after: 2 });
        assert_eq!(sched.next_fault(), SnapshotFault::Clean);
        assert_eq!(sched.next_fault(), SnapshotFault::Clean);
        assert_eq!(sched.consumed(), 3);
    }

    #[test]
    fn snapshot_fault_wrap_dispatches() {
        let data = b"0 1\n1 0\n";
        let mut clean = Vec::new();
        SnapshotFault::Clean
            .wrap(&data[..])
            .read_to_end(&mut clean)
            .unwrap();
        assert_eq!(clean, data);
        assert!(!SnapshotFault::Clean.expect_load_failure());
        assert!(!SnapshotFault::Slow { delay_ms: 1, chunk: 8 }.expect_load_failure());

        let mut rotted = Vec::new();
        SnapshotFault::Corrupt { period: 3 }
            .wrap(&data[..])
            .read_to_end(&mut rotted)
            .unwrap();
        assert_ne!(rotted, data);
        assert!(SnapshotFault::Corrupt { period: 3 }.expect_load_failure());

        let mut short = Vec::new();
        SnapshotFault::Truncate { limit: 4 }
            .wrap(&data[..])
            .read_to_end(&mut short)
            .unwrap();
        assert_eq!(short, &data[..4]);

        let mut sink = Vec::new();
        assert!(SnapshotFault::Flaky { fail_after: 1 }
            .wrap(&data[..])
            .read_to_end(&mut sink)
            .is_err());
    }

    #[test]
    fn inject_junk_preserves_clean_lines() {
        let clean = b"0\t1\n1\t2\n4\t0\n";
        let dirty = mangle_lines(clean, 7, MangleMode::InjectJunk, 0.5);
        assert_ne!(dirty, clean.to_vec());
        // Every clean line survives byte-for-byte, in order.
        let clean_lines: Vec<&[u8]> =
            clean.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();
        let mut it = dirty.split(|&b| b == b'\n');
        for want in &clean_lines {
            assert!(
                it.any(|l| l == *want),
                "clean line {want:?} lost from {dirty:?}"
            );
        }
    }

    #[test]
    fn mangle_is_deterministic_per_seed() {
        let clean = b"0 1\n1 2\n2 3\n3 4\n";
        let a = mangle_lines(clean, 3, MangleMode::CorruptInPlace, 0.8);
        let b = mangle_lines(clean, 3, MangleMode::CorruptInPlace, 0.8);
        let c = mangle_lines(clean, 4, MangleMode::CorruptInPlace, 0.8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn corrupt_in_place_starts_with_bom_and_adds_junk() {
        let clean = b"0 1\n";
        let dirty = mangle_lines(clean, 1, MangleMode::CorruptInPlace, 1.0);
        assert!(dirty.starts_with(b"\xef\xbb\xbf"));
        assert!(dirty.len() > clean.len());
    }

    #[test]
    fn zero_rate_inject_junk_is_identity_modulo_trailing_newline() {
        let clean = b"0 1\n1 2\n";
        let out = mangle_lines(clean, 9, MangleMode::InjectJunk, 0.0);
        assert_eq!(out, clean.to_vec());
    }
}
