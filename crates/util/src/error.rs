//! The workspace-wide typed error hierarchy.
//!
//! Long-running influence-embedding pipelines need failure semantics, not
//! process aborts: a NaN gradient, a panicking Hogwild worker, or a
//! truncated model file must surface as a value the caller can match on,
//! checkpoint around, and recover from. Every fallible entry point in the
//! workspace returns (a variant of) [`Inf2vecError`]; the legacy panicking
//! wrappers (`train`, `validate_or_panic`, …) are thin shims over the
//! `try_*` APIs kept for bench/example compatibility.
//!
//! What intentionally still panics: internal invariants that cannot be
//! reached from bad *input* — index arithmetic inside CSR graphs, the
//! Hogwild row-borrow contract, alias-table construction over validated
//! weights. Those are bugs, not operational failures, and are documented
//! case by case (DESIGN.md §6).

use std::fmt;

/// An invalid hyper-parameter or option value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field, e.g. `"alpha"`.
    pub field: &'static str,
    /// Human-readable constraint violation.
    pub message: String,
}

impl ConfigError {
    /// Creates a config error for `field`.
    pub fn new(field: &'static str, message: impl Into<String>) -> Self {
        Self {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// A failure during (or right around) SGD training.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The loss went non-finite or blew up and the divergence guard ran out
    /// of recovery budget (or was disabled).
    Diverged {
        /// 0-based epoch whose loss diverged.
        epoch: usize,
        /// The diverged mean loss (may be NaN/Inf).
        loss: f64,
        /// Recovery attempts performed before giving up.
        recoveries: usize,
    },
    /// A Hogwild worker thread panicked. The surviving workers completed
    /// their shards, so the store holds a usable partial epoch; callers
    /// with checkpointing enabled can roll back and resume.
    WorkerPanic {
        /// 0-based epoch during which the worker died.
        epoch: usize,
        /// The panicking worker's shard index (it owned pairs
        /// `shard, shard + n_shards, shard + 2·n_shards, …` of the epoch).
        shard: usize,
        /// Total shards (= worker threads) in the epoch.
        n_shards: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// A parameter matrix contains NaN/Inf where finite values are
    /// required (e.g. when snapshotting a model to disk).
    NonFinite {
        /// What was being produced or consumed.
        what: &'static str,
    },
    /// Model/config/checkpoint dimensions disagree.
    ShapeMismatch {
        /// What disagreed, e.g. `"config K disagrees with the model"`.
        what: &'static str,
        /// The expected extent.
        expected: usize,
        /// The extent found.
        found: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged {
                epoch,
                loss,
                recoveries,
            } => write!(
                f,
                "training diverged at epoch {epoch} (loss {loss}) after {recoveries} recovery attempts"
            ),
            TrainError::WorkerPanic {
                epoch,
                shard,
                n_shards,
                message,
            } => write!(
                f,
                "hogwild worker panicked at epoch {epoch}, shard {shard}/{n_shards}: {message}"
            ),
            TrainError::NonFinite { what } => {
                write!(f, "non-finite values in {what}")
            }
            TrainError::ShapeMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what} (expected {expected}, found {found})"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Malformed or unusable input data (model files, edge lists, action logs,
/// checkpoints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A line that does not parse under the expected format.
    Malformed {
        /// 1-based line number (0 when unknown).
        line: usize,
        /// A description or the offending content.
        content: String,
    },
    /// The stream ended before the declared payload.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// A numeric field is NaN/Inf where finite values are required.
    NonFinite {
        /// What was being read.
        what: &'static str,
        /// 1-based line number (0 when unknown).
        line: usize,
    },
    /// Anything else wrong with the payload (bad header, foreign user ids,
    /// impossible counts).
    Invalid {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Malformed { line, content } => {
                write!(f, "malformed data at line {line}: {content:?}")
            }
            DataError::Truncated { what } => write!(f, "truncated {what}"),
            DataError::NonFinite { what, line } => {
                write!(f, "non-finite value in {what} at line {line}")
            }
            DataError::Invalid { message } => write!(f, "invalid data: {message}"),
        }
    }
}

impl std::error::Error for DataError {}

/// The defect taxonomy for streaming ingestion (`inf2vec-ingest`).
///
/// Every record a parser quarantines, repairs, or aborts on is classified
/// under exactly one of these kinds; the `IngestReport` keys its counters
/// and samples by it. Kinds split into two severities:
///
/// - **fatal-in-strict** (`is_fatal_in_strict` = true): the record cannot
///   be used as written — `Strict` ingestion aborts, `Skip` quarantines,
///   `Repair` quarantines unless a documented fix exists.
/// - **normalization** defects (`DuplicateEdge`, `SelfLoop`,
///   `DuplicateActivation`): the legacy pipeline already collapses these
///   silently (`GraphBuilder::build`, `Episode::new`), so every policy
///   normalizes them; ingestion merely makes the collapse *observable* by
///   counting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DefectKind {
    /// A line that does not parse under the expected field layout
    /// (wrong field count, non-numeric ids, embedded NUL/garbage bytes).
    MalformedLine,
    /// An action references a user absent from the social graph.
    DanglingNode,
    /// An edge already ingested appears again.
    DuplicateEdge,
    /// An edge `u -> u`.
    SelfLoop,
    /// A user activates the same item more than once (re-vote).
    DuplicateActivation,
    /// A timestamp field that parses as a float but is NaN/Inf.
    NonFiniteTimestamp,
    /// A timestamp outside `[0, u64::MAX]` or with a fractional part
    /// (repairable by clamping/truncation).
    TimestampOutOfRange,
    /// A node id too large for the configured id space.
    IdOverflow,
}

impl DefectKind {
    /// All kinds, in taxonomy order (stable report/exposition order).
    pub const ALL: [DefectKind; 8] = [
        DefectKind::MalformedLine,
        DefectKind::DanglingNode,
        DefectKind::DuplicateEdge,
        DefectKind::SelfLoop,
        DefectKind::DuplicateActivation,
        DefectKind::NonFiniteTimestamp,
        DefectKind::TimestampOutOfRange,
        DefectKind::IdOverflow,
    ];

    /// Stable snake_case name used in reports, metrics labels, and events.
    pub fn name(self) -> &'static str {
        match self {
            DefectKind::MalformedLine => "malformed_line",
            DefectKind::DanglingNode => "dangling_node",
            DefectKind::DuplicateEdge => "duplicate_edge",
            DefectKind::SelfLoop => "self_loop",
            DefectKind::DuplicateActivation => "duplicate_activation",
            DefectKind::NonFiniteTimestamp => "non_finite_timestamp",
            DefectKind::TimestampOutOfRange => "timestamp_out_of_range",
            DefectKind::IdOverflow => "id_overflow",
        }
    }

    /// Whether `Strict` ingestion aborts on this defect. Normalization
    /// defects (duplicates, self-loops) are counted but never fatal —
    /// that matches the legacy `GraphBuilder`/`Episode::new` semantics.
    pub fn is_fatal_in_strict(self) -> bool {
        !matches!(
            self,
            DefectKind::DuplicateEdge | DefectKind::SelfLoop | DefectKind::DuplicateActivation
        )
    }
}

impl fmt::Display for DefectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A failure of streaming ingestion (`inf2vec-ingest`).
#[derive(Debug)]
pub enum IngestError {
    /// Underlying I/O failure while reading the stream.
    Io(std::io::Error),
    /// `Strict` policy hit a fatal defect.
    Defect {
        /// The defect class.
        kind: DefectKind,
        /// 1-based line number in the source stream (0 when unknown).
        line: u64,
        /// The offending content (truncated sample).
        content: String,
    },
    /// `Skip` policy exhausted its error budget.
    BudgetExceeded {
        /// Records quarantined so far.
        quarantined: u64,
        /// Records seen so far (good + quarantined).
        records: u64,
        /// The absolute quarantine cap that was exceeded (if that was
        /// the bound that tripped).
        max_errors: u64,
        /// The error-ratio cap in `[0, 1]`.
        max_error_ratio: f64,
    },
    /// The assembled dataset failed final cross-validation.
    Invalid {
        /// Human-readable description.
        message: String,
    },
    /// The tailed log shrank below the committed offset without a valid
    /// rotation sentinel — the tail would otherwise silently read nothing
    /// forever. The stream cannot be resumed from this position.
    LogTruncated {
        /// The committed logical offset the caller asked to resume from.
        committed: u64,
        /// The logical length the file actually holds.
        len: u64,
    },
    /// The log was compacted (rotated) past the committed offset: the
    /// prefix this resume point needs no longer exists in the live file.
    LogRotated {
        /// The committed logical offset the caller asked to resume from.
        committed: u64,
        /// The logical base offset of the live (compacted) file.
        base: u64,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest I/O error: {e}"),
            IngestError::Defect {
                kind,
                line,
                content,
            } => write!(f, "ingest defect {kind} at line {line}: {content:?}"),
            IngestError::BudgetExceeded {
                quarantined,
                records,
                max_errors,
                max_error_ratio,
            } => write!(
                f,
                "ingest error budget exceeded: {quarantined} of {records} records quarantined \
                 (max_errors {max_errors}, max_error_ratio {max_error_ratio})"
            ),
            IngestError::Invalid { message } => {
                write!(f, "ingested dataset invalid: {message}")
            }
            IngestError::LogTruncated { committed, len } => write!(
                f,
                "action log truncated: committed offset {committed} is past the \
                 log's logical length {len} and no rotation sentinel explains it"
            ),
            IngestError::LogRotated { committed, base } => write!(
                f,
                "action log rotated past the committed offset: resume needs \
                 offset {committed} but the live file starts at logical base {base}"
            ),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

/// A failure of the online influence-scoring service (`inf2vec-serve`).
///
/// Every request the service accepts terminates in a definitive outcome:
/// a successful (possibly degraded-flagged) answer or exactly one of these
/// variants. None of them is a bug — they are the operational vocabulary
/// the admission controller, deadline checks, model registry, and degraded
/// mode speak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded admission queue rejected or shed the request.
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
        /// True when the request had been admitted to the queue and was
        /// later evicted by the `Shed` policy to make room for newer work;
        /// false when it was turned away at the door (`Reject`).
        shed: bool,
    },
    /// The request's deadline budget ran out (at admission, while queued,
    /// or at a scoring-loop boundary).
    DeadlineExceeded {
        /// Wall-clock spent when the budget check failed.
        elapsed_ms: u64,
        /// The request's total budget.
        budget_ms: u64,
    },
    /// No usable model version is installed (initial load never succeeded
    /// and no bias fallback is retained, or a reload was suppressed by the
    /// snapshot circuit breaker).
    ModelUnavailable {
        /// Why no model could answer.
        reason: String,
    },
    /// Only a degraded (bias-only) answer was available and the request
    /// explicitly refused degraded answers.
    DegradedAnswer {
        /// Why the full model could not answer.
        reason: String,
    },
    /// The request itself is unanswerable (e.g. a node id outside the
    /// model's id space).
    BadRequest {
        /// What was wrong with the request.
        reason: String,
    },
}

impl ServeError {
    /// Stable snake_case outcome label used in metrics
    /// (`inf2vec_serve_requests_total{outcome=...}`) and chaos tallies.
    pub fn outcome(&self) -> &'static str {
        match self {
            ServeError::Overloaded { shed: false, .. } => "overloaded",
            ServeError::Overloaded { shed: true, .. } => "shed",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::ModelUnavailable { .. } => "unavailable",
            ServeError::DegradedAnswer { .. } => "degraded_refused",
            ServeError::BadRequest { .. } => "bad_request",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                depth,
                capacity,
                shed,
            } => {
                if *shed {
                    write!(f, "request shed from admission queue (depth {depth}/{capacity})")
                } else {
                    write!(f, "service overloaded: admission queue full (depth {depth}/{capacity})")
                }
            }
            ServeError::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms}ms elapsed of a {budget_ms}ms budget"
            ),
            ServeError::ModelUnavailable { reason } => {
                write!(f, "model unavailable: {reason}")
            }
            ServeError::DegradedAnswer { reason } => {
                write!(f, "degraded answer refused by request: {reason}")
            }
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A failure of the continuous-learning pipeline runtime.
///
/// The pipeline's whole point is that individual faults — a corrupted log
/// tail, a panicking stage, a failing publish — are absorbed: quarantined,
/// restarted from the journal, or retried against the last good snapshot.
/// These variants are what escapes when absorption runs out: they mean the
/// supervisor gave up, not that a single record was bad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A stage kept panicking past its restart budget.
    StageFailed {
        /// The stage that died (`"tail"`, `"train"`, `"publish"`).
        stage: &'static str,
        /// Restarts consumed before escalation.
        restarts: u32,
        /// The final panic payload, stringified.
        message: String,
    },
    /// No journal slot parsed and verified; recovery has nothing to
    /// resume from (a fresh start would violate exactly-once application).
    JournalUnreadable {
        /// Per-slot failure detail.
        detail: String,
    },
    /// The journal parsed but disagrees with the pipeline's configuration
    /// (node count, dimension, or seed), so resuming would corrupt state.
    JournalMismatch {
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::StageFailed {
                stage,
                restarts,
                message,
            } => write!(
                f,
                "pipeline stage `{stage}` failed after {restarts} restarts: {message}"
            ),
            PipelineError::JournalUnreadable { detail } => {
                write!(f, "no readable pipeline journal: {detail}")
            }
            PipelineError::JournalMismatch { detail } => {
                write!(f, "pipeline journal mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// The workspace-wide error type: every fallible public API returns this
/// or one of its payload types.
#[derive(Debug)]
pub enum Inf2vecError {
    /// Invalid hyper-parameters.
    Config(ConfigError),
    /// Training failure (divergence, worker panic, shape mismatch).
    Train(TrainError),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input data.
    Data(DataError),
    /// Streaming-ingestion failure (strict defect, exhausted error
    /// budget, failed cross-validation).
    Ingest(IngestError),
    /// Online-serving failure (overload, deadline, model unavailable).
    Serve(ServeError),
    /// Continuous-learning pipeline failure (restart budget exhausted,
    /// unrecoverable journal).
    Pipeline(PipelineError),
}

impl fmt::Display for Inf2vecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inf2vecError::Config(e) => write!(f, "{e}"),
            Inf2vecError::Train(e) => write!(f, "{e}"),
            Inf2vecError::Io(e) => write!(f, "I/O error: {e}"),
            Inf2vecError::Data(e) => write!(f, "{e}"),
            Inf2vecError::Ingest(e) => write!(f, "{e}"),
            Inf2vecError::Serve(e) => write!(f, "{e}"),
            Inf2vecError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Inf2vecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Inf2vecError::Config(e) => Some(e),
            Inf2vecError::Train(e) => Some(e),
            Inf2vecError::Io(e) => Some(e),
            Inf2vecError::Data(e) => Some(e),
            Inf2vecError::Ingest(e) => Some(e),
            Inf2vecError::Serve(e) => Some(e),
            Inf2vecError::Pipeline(e) => Some(e),
        }
    }
}

impl From<ConfigError> for Inf2vecError {
    fn from(e: ConfigError) -> Self {
        Inf2vecError::Config(e)
    }
}

impl From<TrainError> for Inf2vecError {
    fn from(e: TrainError) -> Self {
        Inf2vecError::Train(e)
    }
}

impl From<std::io::Error> for Inf2vecError {
    fn from(e: std::io::Error) -> Self {
        Inf2vecError::Io(e)
    }
}

impl From<DataError> for Inf2vecError {
    fn from(e: DataError) -> Self {
        Inf2vecError::Data(e)
    }
}

impl From<IngestError> for Inf2vecError {
    fn from(e: IngestError) -> Self {
        Inf2vecError::Ingest(e)
    }
}

impl From<ServeError> for Inf2vecError {
    fn from(e: ServeError) -> Self {
        Inf2vecError::Serve(e)
    }
}

impl From<PipelineError> for Inf2vecError {
    fn from(e: PipelineError) -> Self {
        Inf2vecError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let c = ConfigError::new("alpha", "alpha must be in [0, 1]");
        assert!(c.to_string().contains("alpha"));

        let t = TrainError::WorkerPanic {
            epoch: 3,
            shard: 1,
            n_shards: 4,
            message: "boom".into(),
        };
        let msg = t.to_string();
        assert!(msg.contains("epoch 3") && msg.contains("shard 1/4") && msg.contains("boom"));

        let d = DataError::NonFinite {
            what: "embedding store",
            line: 7,
        };
        assert!(d.to_string().contains("line 7"));
    }

    #[test]
    fn conversions_wrap() {
        let e: Inf2vecError = ConfigError::new("k", "K must be positive").into();
        assert!(matches!(e, Inf2vecError::Config(_)));
        let e: Inf2vecError = TrainError::NonFinite { what: "model" }.into();
        assert!(matches!(e, Inf2vecError::Train(_)));
        let e: Inf2vecError = std::io::Error::other("disk on fire").into();
        assert!(matches!(e, Inf2vecError::Io(_)));
        let e: Inf2vecError = DataError::Truncated { what: "store" }.into();
        assert!(matches!(e, Inf2vecError::Data(_)));
    }

    #[test]
    fn source_chain_reaches_payload() {
        use std::error::Error as _;
        let e: Inf2vecError = ConfigError::new("lr", "learning rate must be positive").into();
        assert!(e.source().unwrap().to_string().contains("lr"));
    }

    #[test]
    fn defect_kind_names_are_stable_and_unique() {
        let names: std::collections::BTreeSet<&str> =
            DefectKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), DefectKind::ALL.len());
        assert!(names.contains("malformed_line"));
        assert!(names.contains("duplicate_activation"));
    }

    #[test]
    fn normalization_defects_are_not_fatal_in_strict() {
        for k in DefectKind::ALL {
            let fatal = k.is_fatal_in_strict();
            match k {
                DefectKind::DuplicateEdge
                | DefectKind::SelfLoop
                | DefectKind::DuplicateActivation => assert!(!fatal, "{k} should normalize"),
                _ => assert!(fatal, "{k} should abort strict ingestion"),
            }
        }
    }

    #[test]
    fn serve_error_outcomes_and_displays() {
        let cases: [(ServeError, &str, &str); 6] = [
            (
                ServeError::Overloaded {
                    depth: 8,
                    capacity: 8,
                    shed: false,
                },
                "overloaded",
                "queue full",
            ),
            (
                ServeError::Overloaded {
                    depth: 8,
                    capacity: 8,
                    shed: true,
                },
                "shed",
                "shed",
            ),
            (
                ServeError::DeadlineExceeded {
                    elapsed_ms: 12,
                    budget_ms: 10,
                },
                "deadline_exceeded",
                "12ms",
            ),
            (
                ServeError::ModelUnavailable {
                    reason: "no snapshot ever loaded".into(),
                },
                "unavailable",
                "no snapshot",
            ),
            (
                ServeError::DegradedAnswer {
                    reason: "bias-only fallback".into(),
                },
                "degraded_refused",
                "bias-only",
            ),
            (
                ServeError::BadRequest {
                    reason: "node 99 out of range".into(),
                },
                "bad_request",
                "node 99",
            ),
        ];
        let mut outcomes = std::collections::BTreeSet::new();
        for (e, outcome, substr) in cases {
            assert_eq!(e.outcome(), outcome);
            assert!(e.to_string().contains(substr), "{e}");
            outcomes.insert(outcome);
        }
        assert_eq!(outcomes.len(), 6, "outcome labels must be unique");

        let wrapped: Inf2vecError = ServeError::ModelUnavailable {
            reason: "breaker open".into(),
        }
        .into();
        assert!(matches!(wrapped, Inf2vecError::Serve(_)));
        use std::error::Error as _;
        assert!(wrapped.source().unwrap().to_string().contains("breaker"));
    }

    #[test]
    fn ingest_error_displays_and_sources() {
        use std::error::Error as _;
        let e = IngestError::Defect {
            kind: DefectKind::MalformedLine,
            line: 12,
            content: "x y z q".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("malformed_line") && msg.contains("line 12"), "{msg}");
        assert!(e.source().is_none());

        let io: IngestError = std::io::Error::other("yanked mount").into();
        assert!(io.source().unwrap().to_string().contains("yanked"));

        let b = IngestError::BudgetExceeded {
            quarantined: 11,
            records: 20,
            max_errors: 10,
            max_error_ratio: 0.5,
        };
        assert!(b.to_string().contains("11 of 20"));

        let wrapped: Inf2vecError = b.into();
        assert!(matches!(wrapped, Inf2vecError::Ingest(_)));
        assert!(wrapped.source().unwrap().to_string().contains("budget"));
    }
}
