//! The workspace-wide typed error hierarchy.
//!
//! Long-running influence-embedding pipelines need failure semantics, not
//! process aborts: a NaN gradient, a panicking Hogwild worker, or a
//! truncated model file must surface as a value the caller can match on,
//! checkpoint around, and recover from. Every fallible entry point in the
//! workspace returns (a variant of) [`Inf2vecError`]; the legacy panicking
//! wrappers (`train`, `validate_or_panic`, …) are thin shims over the
//! `try_*` APIs kept for bench/example compatibility.
//!
//! What intentionally still panics: internal invariants that cannot be
//! reached from bad *input* — index arithmetic inside CSR graphs, the
//! Hogwild row-borrow contract, alias-table construction over validated
//! weights. Those are bugs, not operational failures, and are documented
//! case by case (DESIGN.md §6).

use std::fmt;

/// An invalid hyper-parameter or option value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field, e.g. `"alpha"`.
    pub field: &'static str,
    /// Human-readable constraint violation.
    pub message: String,
}

impl ConfigError {
    /// Creates a config error for `field`.
    pub fn new(field: &'static str, message: impl Into<String>) -> Self {
        Self {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// A failure during (or right around) SGD training.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The loss went non-finite or blew up and the divergence guard ran out
    /// of recovery budget (or was disabled).
    Diverged {
        /// 0-based epoch whose loss diverged.
        epoch: usize,
        /// The diverged mean loss (may be NaN/Inf).
        loss: f64,
        /// Recovery attempts performed before giving up.
        recoveries: usize,
    },
    /// A Hogwild worker thread panicked. The surviving workers completed
    /// their shards, so the store holds a usable partial epoch; callers
    /// with checkpointing enabled can roll back and resume.
    WorkerPanic {
        /// 0-based epoch during which the worker died.
        epoch: usize,
        /// The panicking worker's shard index (it owned pairs
        /// `shard, shard + n_shards, shard + 2·n_shards, …` of the epoch).
        shard: usize,
        /// Total shards (= worker threads) in the epoch.
        n_shards: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// A parameter matrix contains NaN/Inf where finite values are
    /// required (e.g. when snapshotting a model to disk).
    NonFinite {
        /// What was being produced or consumed.
        what: &'static str,
    },
    /// Model/config/checkpoint dimensions disagree.
    ShapeMismatch {
        /// What disagreed, e.g. `"config K disagrees with the model"`.
        what: &'static str,
        /// The expected extent.
        expected: usize,
        /// The extent found.
        found: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged {
                epoch,
                loss,
                recoveries,
            } => write!(
                f,
                "training diverged at epoch {epoch} (loss {loss}) after {recoveries} recovery attempts"
            ),
            TrainError::WorkerPanic {
                epoch,
                shard,
                n_shards,
                message,
            } => write!(
                f,
                "hogwild worker panicked at epoch {epoch}, shard {shard}/{n_shards}: {message}"
            ),
            TrainError::NonFinite { what } => {
                write!(f, "non-finite values in {what}")
            }
            TrainError::ShapeMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what} (expected {expected}, found {found})"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Malformed or unusable input data (model files, edge lists, action logs,
/// checkpoints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A line that does not parse under the expected format.
    Malformed {
        /// 1-based line number (0 when unknown).
        line: usize,
        /// A description or the offending content.
        content: String,
    },
    /// The stream ended before the declared payload.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// A numeric field is NaN/Inf where finite values are required.
    NonFinite {
        /// What was being read.
        what: &'static str,
        /// 1-based line number (0 when unknown).
        line: usize,
    },
    /// Anything else wrong with the payload (bad header, foreign user ids,
    /// impossible counts).
    Invalid {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Malformed { line, content } => {
                write!(f, "malformed data at line {line}: {content:?}")
            }
            DataError::Truncated { what } => write!(f, "truncated {what}"),
            DataError::NonFinite { what, line } => {
                write!(f, "non-finite value in {what} at line {line}")
            }
            DataError::Invalid { message } => write!(f, "invalid data: {message}"),
        }
    }
}

impl std::error::Error for DataError {}

/// The workspace-wide error type: every fallible public API returns this
/// or one of its payload types.
#[derive(Debug)]
pub enum Inf2vecError {
    /// Invalid hyper-parameters.
    Config(ConfigError),
    /// Training failure (divergence, worker panic, shape mismatch).
    Train(TrainError),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input data.
    Data(DataError),
}

impl fmt::Display for Inf2vecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inf2vecError::Config(e) => write!(f, "{e}"),
            Inf2vecError::Train(e) => write!(f, "{e}"),
            Inf2vecError::Io(e) => write!(f, "I/O error: {e}"),
            Inf2vecError::Data(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Inf2vecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Inf2vecError::Config(e) => Some(e),
            Inf2vecError::Train(e) => Some(e),
            Inf2vecError::Io(e) => Some(e),
            Inf2vecError::Data(e) => Some(e),
        }
    }
}

impl From<ConfigError> for Inf2vecError {
    fn from(e: ConfigError) -> Self {
        Inf2vecError::Config(e)
    }
}

impl From<TrainError> for Inf2vecError {
    fn from(e: TrainError) -> Self {
        Inf2vecError::Train(e)
    }
}

impl From<std::io::Error> for Inf2vecError {
    fn from(e: std::io::Error) -> Self {
        Inf2vecError::Io(e)
    }
}

impl From<DataError> for Inf2vecError {
    fn from(e: DataError) -> Self {
        Inf2vecError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let c = ConfigError::new("alpha", "alpha must be in [0, 1]");
        assert!(c.to_string().contains("alpha"));

        let t = TrainError::WorkerPanic {
            epoch: 3,
            shard: 1,
            n_shards: 4,
            message: "boom".into(),
        };
        let msg = t.to_string();
        assert!(msg.contains("epoch 3") && msg.contains("shard 1/4") && msg.contains("boom"));

        let d = DataError::NonFinite {
            what: "embedding store",
            line: 7,
        };
        assert!(d.to_string().contains("line 7"));
    }

    #[test]
    fn conversions_wrap() {
        let e: Inf2vecError = ConfigError::new("k", "K must be positive").into();
        assert!(matches!(e, Inf2vecError::Config(_)));
        let e: Inf2vecError = TrainError::NonFinite { what: "model" }.into();
        assert!(matches!(e, Inf2vecError::Train(_)));
        let e: Inf2vecError = std::io::Error::other("disk on fire").into();
        assert!(matches!(e, Inf2vecError::Io(_)));
        let e: Inf2vecError = DataError::Truncated { what: "store" }.into();
        assert!(matches!(e, Inf2vecError::Data(_)));
    }

    #[test]
    fn source_chain_reaches_payload() {
        use std::error::Error as _;
        let e: Inf2vecError = ConfigError::new("lr", "learning rate must be positive").into();
        assert!(e.source().unwrap().to_string().contains("lr"));
    }
}
