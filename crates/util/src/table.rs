//! Plain-text table rendering for experiment output.
//!
//! The `repro` harness prints each of the paper's tables in the same row/
//! column layout; [`TextTable`] handles alignment and separators so the
//! output is readable in a terminal and diffable across runs.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with blanks;
    /// longer rows extend the column count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string (trailing newline included).
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        if ncols == 0 {
            return String::new();
        }
        let mut widths = vec![0usize; ncols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }

        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = w - cell.chars().count();
                if i > 0 {
                    out.push_str("  ");
                }
                // Left-align the first column (labels), right-align the rest
                // (numbers).
                if i == 0 {
                    let _ = write!(out, "{cell}{}", " ".repeat(pad));
                } else {
                    let _ = write!(out, "{}{cell}", " ".repeat(pad));
                }
            }
            out.push('\n');
        };

        if !self.header.is_empty() {
            write_row(&mut out, &self.header, &widths);
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
        for r in &self.rows {
            write_row(&mut out, r, &widths);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with 4 decimal places, the precision the paper reports.
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats `mean (σ)` the way the paper annotates Inf2vec rows.
pub fn fmt_mean_std(mean: f64, std: f64) -> String {
    format!("{mean:.4} ({std:.4})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["Method", "AUC", "MAP"]);
        t.row(["DE", "0.4144", "0.0170"]);
        t.row(["Inf2vec", "0.8893", "0.2744"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric columns: both rows end at the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn ragged_rows_ok() {
        let mut t = TextTable::new(["A"]);
        t.row(["x", "y", "z"]);
        t.row(["only"]);
        let s = t.render();
        assert!(s.contains('z'));
        assert!(s.contains("only"));
    }

    #[test]
    fn empty_table_renders_empty() {
        let t = TextTable::default();
        assert_eq!(t.render(), "");
        assert!(t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt4(0.12345), "0.1235");
        assert_eq!(fmt_mean_std(0.5, 0.01), "0.5000 (0.0100)");
    }
}
