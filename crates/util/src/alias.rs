//! Walker's alias method for O(1) discrete sampling.
//!
//! Given a fixed vector of nonnegative weights, [`AliasTable`] draws indices
//! with probability proportional to the weights in constant time per draw
//! after O(n) construction. This backs the unigram^0.75 negative-sampling
//! distribution and weighted choices in graph generation.

use crate::rng::Xoshiro256pp;

/// A prepared alias table over `n` outcomes.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of the "home" outcome in each bucket.
    prob: Vec<f64>,
    /// The alternative outcome used when the home outcome is rejected.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one outcome");
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table limited to u32 outcomes"
        );
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
            total += w;
        }
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();

        // Indices partitioned by whether their scaled weight is below 1.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // The large bucket donates (1 - prob[s]) of its mass.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical residue: remaining buckets keep themselves.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (cannot happen via `new`).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index with probability proportional to its weight.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> usize {
        let i = rng.index(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = Xoshiro256pp::new(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_target_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let freq = empirical(&weights, 200_000, 17);
        let total: f64 = weights.iter().sum();
        for (f, w) in freq.iter().zip(&weights) {
            let target = w / total;
            assert!(
                (f - target).abs() < 0.01,
                "frequency {f} too far from {target}"
            );
        }
    }

    #[test]
    fn single_outcome_always_sampled() {
        let table = AliasTable::new(&[5.0]);
        let mut rng = Xoshiro256pp::new(1);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_never_sampled() {
        let freq = empirical(&[0.0, 1.0, 0.0, 1.0], 50_000, 3);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
        assert!((freq[1] - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn all_zero_weights_panic() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The empirical distribution stays within a loose tolerance of the
        /// target for arbitrary weight vectors.
        #[test]
        fn proptest_distribution(weights in prop::collection::vec(0.01f64..10.0, 1..12), seed in any::<u64>()) {
            let freq = empirical(&weights, 60_000, seed);
            let total: f64 = weights.iter().sum();
            for (f, w) in freq.iter().zip(&weights) {
                let target = w / total;
                prop_assert!((f - target).abs() < 0.05,
                    "freq {} target {}", f, target);
            }
        }

        /// Samples are always valid indices.
        #[test]
        fn proptest_in_range(n in 1usize..100, seed in any::<u64>()) {
            let weights = vec![1.0; n];
            let table = AliasTable::new(&weights);
            let mut rng = Xoshiro256pp::new(seed);
            for _ in 0..64 {
                prop_assert!(table.sample(&mut rng) < n);
            }
        }
    }
}
