//! Fx-style fast hashing.
//!
//! The algorithm is the one used by the Rust compiler (`rustc-hash`): a
//! multiply-rotate mix applied word-at-a-time. It is not HashDoS resistant,
//! which is fine for offline experiment code with integer keys, and it is
//! several times faster than SipHash for the `u32`/`u64` keys that dominate
//! this workspace (node ids, item ids, edge pairs).

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hash state. See the module docs for provenance.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// FNV-1a (64-bit) over raw bytes: the stable *content* checksum used by
/// the pipeline journal slots and the archive segment/manifest headers.
/// Unlike [`FxHasher`] it is byte-order independent and trivially
/// reimplementable by external tooling that wants to verify files.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Convenience constructor: an empty `FxHashMap`.
pub fn fx_hashmap<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Convenience constructor: an `FxHashMap` with `cap` reserved slots.
pub fn fx_hashmap_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Convenience constructor: an empty `FxHashSet`.
pub fn fx_hashset<K>() -> FxHashSet<K> {
    FxHashSet::default()
}

/// Convenience constructor: an `FxHashSet` with `cap` reserved slots.
pub fn fx_hashset_with_capacity<K>(cap: usize) -> FxHashSet<K> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_for_same_input() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one((1u32, 2u32)), hash_one((1u32, 2u32)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test, just a sanity check that the mix is not an
        // identity on small integers.
        let h: Vec<u64> = (0u32..64).map(hash_one).collect();
        let distinct: FxHashSet<u64> = h.iter().copied().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn byte_stream_matches_word_stream_layout() {
        // write() must consume trailing partial words.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        b.write_u64(9);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_usable() {
        let mut m = fx_hashmap_with_capacity::<u32, u32>(8);
        for i in 0..100u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&7], 14);

        let mut s = fx_hashset::<(u32, u32)>();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }
}
