//! Crash-safe file persistence.
//!
//! Checkpoints and trained models are only useful if a crash mid-write
//! cannot destroy them. [`atomic_write`] provides the classic recipe: the
//! payload goes to a temporary sibling file, is flushed and fsynced, and is
//! then atomically renamed over the destination. A reader therefore sees
//! either the complete old file or the complete new file — never a torn
//! mixture — and a crash at any point leaves at worst a stray `*.tmp.*`
//! sibling.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes temp files when several writers target the same directory
/// concurrently (process-wide counter; the pid handles cross-process races).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Atomically replaces `path` with the bytes produced by `write_fn`.
///
/// `write_fn` receives a buffered-enough `File` for the temporary sibling;
/// when it returns `Ok(())` the file is fsynced and renamed into place, and
/// a best-effort fsync of the parent directory makes the rename itself
/// durable. On any error the temporary file is removed and `path` is left
/// untouched.
pub fn atomic_write(
    path: &Path,
    write_fn: impl FnOnce(&mut File) -> io::Result<()>,
) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    );
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };

    let result = (|| {
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&tmp_path)?;
        write_fn(&mut file)?;
        file.flush()?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp_path, path)?;
        // Persist the rename itself. Directory fsync is not supported on
        // every platform/filesystem, so failure here is non-fatal.
        if let Some(d) = dir {
            if let Ok(dirf) = File::open(d) {
                let _ = dirf.sync_all();
            }
        }
        Ok(())
    })();

    if result.is_err() {
        let _ = fs::remove_file(&tmp_path);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("inf2vec-fsio-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("replace");
        let path = dir.join("out.txt");
        atomic_write(&path, |f| f.write_all(b"first")).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, |f| f.write_all(b"second")).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_original_intact_and_no_temp() {
        let dir = tmp_dir("fail");
        let path = dir.join("out.txt");
        atomic_write(&path, |f| f.write_all(b"good")).unwrap();
        let err = atomic_write(&path, |f| {
            f.write_all(b"partial garbage")?;
            Err(io::Error::other("injected failure"))
        });
        assert!(err.is_err());
        assert_eq!(fs::read(&path).unwrap(), b"good");
        let leftovers: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert_eq!(leftovers.len(), 1, "temp file should have been cleaned up");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_pathless_target() {
        assert!(atomic_write(Path::new(""), |f| f.write_all(b"x")).is_err());
    }
}
