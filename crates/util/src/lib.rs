#![warn(missing_docs)]

//! Shared utilities for the inf2vec workspace.
//!
//! This crate hosts the small, dependency-light building blocks that the rest
//! of the workspace relies on:
//!
//! - [`hash`]: an Fx-style fast hasher and `FxHashMap`/`FxHashSet` aliases for
//!   integer-keyed tables on hot paths (the default SipHash is needlessly slow
//!   for `u32` node ids and HashDoS is not a concern for offline experiments).
//! - [`rng`]: deterministic, explicitly-seeded random number generation
//!   (SplitMix64 for seed derivation, Xoshiro256++ as the workhorse stream).
//!   Every randomized component in the workspace takes a `u64` seed so that
//!   experiments are reproducible bit-for-bit in single-threaded mode.
//! - [`alias`]: Walker's alias method for O(1) sampling from a fixed discrete
//!   distribution (used by negative sampling and weighted walks).
//! - [`sigmoid`]: a word2vec-style precomputed sigmoid lookup table used by
//!   the skip-gram training kernels.
//! - [`topk`]: a bounded min-heap collector for top-N ranking.
//! - [`stats`]: summary statistics and Welch's t-test for multi-run
//!   experiment reporting.
//! - [`table`]: a fixed-width plain-text table renderer for experiment
//!   output that mirrors the paper's tables.
//! - [`ascii`]: terminal scatter/histogram plots for figure reproduction.
//! - [`error`]: the workspace-wide typed error hierarchy ([`Inf2vecError`]
//!   and friends) that fallible APIs return instead of panicking.
//! - [`fsio`]: crash-safe file persistence (atomic write-temp + fsync +
//!   rename) used by model/store/checkpoint writers.
//! - [`faultinject`]: fault-injection writers and readers (truncation,
//!   corruption, slowness, forced I/O errors) plus scripted fault schedules
//!   for robustness tests; not used on production paths.
//! - [`json`]: the shared JSON string-escaping helper behind every
//!   hand-rolled JSON writer in the workspace (ingest reports, serve chaos
//!   reports), plus the recursive-descent [`json::Json`] parser the HTTP
//!   front-end and event tooling read request bodies with.

pub mod alias;
pub mod ascii;
pub mod clock;
pub mod error;
pub mod faultinject;
pub mod fsio;
pub mod hash;
pub mod json;
pub mod rng;
pub mod sigmoid;
pub mod stats;
pub mod table;
pub mod topk;

pub use alias::AliasTable;
pub use clock::{system_clock, Clock, ManualClock, SharedClock, SystemClock};
pub use error::{
    ConfigError, DataError, DefectKind, Inf2vecError, IngestError, PipelineError, ServeError,
    TrainError,
};
pub use fsio::atomic_write;
pub use hash::{fnv1a, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use rng::{split_seed, SplitMix64, Xoshiro256pp};
pub use sigmoid::SigmoidTable;
pub use stats::{welch_t_test, RunningStats, Summary};
pub use table::TextTable;
pub use topk::TopK;
