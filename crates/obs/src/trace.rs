//! Causal tracing: deterministic trace/span identities for event linkage.
//!
//! A [`TraceCtx`] names one unit of causally linked work — one accepted
//! action record, one quarantined line, one closed episode, one published
//! snapshot — with a 64-bit trace id and a 64-bit span id. Events stamped
//! with the same trace id belong to the same causal chain; the optional
//! parent span id links a child stage back to the stage that caused it.
//!
//! # Determinism
//!
//! Ids are **not** random. They are derived with [`split_seed`] from the
//! pipeline seed plus the journaled sequence number of the unit
//! (`records_seen` for records, `episodes_applied` for episodes, the
//! episode high-water mark for publishes, the defect line number for
//! quarantines). Those counters are exactly the quantities the pipeline
//! journal replays bit-identically after a crash, so a resumed run
//! re-stamps byte-identical trace ids — tracing adds zero nondeterminism
//! and the offline reconstructor can join pre- and post-crash JSONL
//! fragments on id equality alone.
//!
//! Each derivation domain uses a distinct tag so record 7 and episode 7
//! never collide.

use inf2vec_util::split_seed;

use crate::event::Event;

/// Domain tags keeping the per-kind id streams disjoint.
const TAG_RECORD: u64 = 0x7261_6365_0000_0001; // "race"…record
const TAG_DEFECT: u64 = 0x7261_6365_0000_0002;
const TAG_EPISODE: u64 = 0x7261_6365_0000_0003;
const TAG_PUBLISH: u64 = 0x7261_6365_0000_0004;

/// A deterministic trace identity: `(trace, span, parent?)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The causal-chain id shared by every event in the chain.
    pub trace: u64,
    /// This stage's own span id.
    pub span: u64,
    /// The causing stage's span id, if any.
    pub parent: Option<u64>,
}

impl TraceCtx {
    /// Root context for the `record_seq`-th accepted record (1-based,
    /// the pipeline's journaled `records_seen` counter).
    pub fn for_record(seed: u64, record_seq: u64) -> Self {
        let trace = split_seed(split_seed(seed, TAG_RECORD), record_seq);
        Self {
            trace,
            span: split_seed(trace, 0),
            parent: None,
        }
    }

    /// Root context for a quarantined input line (keyed by line number —
    /// defects never enter the journal, but line numbers replay stably).
    pub fn for_defect(seed: u64, line_no: u64) -> Self {
        let trace = split_seed(split_seed(seed, TAG_DEFECT), line_no);
        Self {
            trace,
            span: split_seed(trace, 0),
            parent: None,
        }
    }

    /// Context for the `episode_seq`-th closed episode (0-based, the
    /// journaled `episodes_applied` counter at close time).
    pub fn for_episode(seed: u64, episode_seq: u64) -> Self {
        let trace = split_seed(split_seed(seed, TAG_EPISODE), episode_seq);
        Self {
            trace,
            span: split_seed(trace, 0),
            parent: None,
        }
    }

    /// Context for a snapshot publish covering episodes `0..episodes`.
    pub fn for_publish(seed: u64, episodes: u64) -> Self {
        let trace = split_seed(split_seed(seed, TAG_PUBLISH), episodes);
        Self {
            trace,
            span: split_seed(trace, 0),
            parent: None,
        }
    }

    /// A child span within the same trace, caused by this one. `stage`
    /// disambiguates siblings; the same `(parent, stage)` pair always
    /// yields the same child id.
    pub fn child(&self, stage: &str) -> Self {
        let mut tag = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in stage.as_bytes() {
            tag ^= u64::from(*b);
            tag = tag.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            trace: self.trace,
            span: split_seed(self.span, tag),
            parent: Some(self.span),
        }
    }

    /// The trace id as the 16-hex-digit wire form.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace)
    }

    /// The span id as the 16-hex-digit wire form.
    pub fn span_hex(&self) -> String {
        format!("{:016x}", self.span)
    }

    /// Stamps `trace`/`span` (and `parent` when present) string fields
    /// onto an event, linking it into this context's chain.
    pub fn stamp(&self, event: Event) -> Event {
        let event = event
            .str("trace", self.trace_hex())
            .str("span", self.span_hex());
        match self.parent {
            Some(p) => event.str("parent", format!("{p:016x}")),
            None => event,
        }
    }

    /// Parses a 16-hex-digit id produced by [`trace_hex`](Self::trace_hex)
    /// / [`span_hex`](Self::span_hex) back to its `u64`.
    pub fn parse_hex(s: &str) -> Option<u64> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(TraceCtx::for_record(42, 7), TraceCtx::for_record(42, 7));
        assert_eq!(TraceCtx::for_episode(42, 3), TraceCtx::for_episode(42, 3));
        let a = TraceCtx::for_record(42, 7);
        assert_eq!(a.child("train"), a.child("train"));
    }

    #[test]
    fn domains_and_seeds_do_not_collide() {
        let ids = [
            TraceCtx::for_record(42, 7).trace,
            TraceCtx::for_defect(42, 7).trace,
            TraceCtx::for_episode(42, 7).trace,
            TraceCtx::for_publish(42, 7).trace,
            TraceCtx::for_record(43, 7).trace,
            TraceCtx::for_record(42, 8).trace,
        ];
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                assert_ne!(ids[i], ids[j], "collision between {i} and {j}");
            }
        }
    }

    #[test]
    fn child_keeps_trace_links_parent() {
        let root = TraceCtx::for_record(1, 1);
        let child = root.child("episode");
        assert_eq!(child.trace, root.trace);
        assert_eq!(child.parent, Some(root.span));
        assert_ne!(child.span, root.span);
        let sibling = root.child("publish");
        assert_ne!(child.span, sibling.span);
    }

    #[test]
    fn stamp_round_trips_through_json() {
        let ctx = TraceCtx::for_record(42, 9).child("train");
        let e = ctx.stamp(Event::new("x").u64("n", 1));
        let parsed = Event::from_json(&e.to_json()).unwrap();
        let trace = parsed.get("trace").unwrap().as_str().unwrap();
        let span = parsed.get("span").unwrap().as_str().unwrap();
        let parent = parsed.get("parent").unwrap().as_str().unwrap();
        assert_eq!(TraceCtx::parse_hex(trace), Some(ctx.trace));
        assert_eq!(TraceCtx::parse_hex(span), Some(ctx.span));
        assert_eq!(TraceCtx::parse_hex(parent), ctx.parent);
        assert_eq!(TraceCtx::parse_hex("xyz"), None);
        assert_eq!(TraceCtx::parse_hex("00000000000000zz"), None);
    }
}
