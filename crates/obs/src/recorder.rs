//! Event sinks: where structured [`Event`]s go.
//!
//! A [`Recorder`] receives finished events. The implementations cover the
//! deployment modes: [`NoopRecorder`] (drop everything — the default, zero
//! overhead), [`MemorySink`] (buffer in RAM for tests), [`JsonlSink`]
//! (append one JSON object per line to a writer or file, with a relative
//! `t_ms` timestamp injected into every event), and [`TeeRecorder`]
//! (duplicate every event into two downstream recorders — used by the soak
//! harness to observe a pipeline's event stream without stealing it).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use inf2vec_util::{system_clock, SharedClock};

use crate::event::Event;

/// Destination for structured telemetry events.
pub trait Recorder: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: Event);

    /// Flushes any buffered output. Default: nothing to flush.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }

    /// How many events this recorder failed to persist. Default: none.
    fn error_count(&self) -> u64 {
        0
    }
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn record(&self, _event: Event) {}
}

/// Buffers events in memory; intended for tests and examples.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().expect("memory sink poisoned"))
    }

    /// A copy of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemorySink {
    fn record(&self, event: Event) {
        self.events.lock().expect("memory sink poisoned").push(event);
    }
}

/// Duplicates every event into two downstream recorders.
///
/// `flush` flushes both (first error wins); `error_count` sums both.
pub struct TeeRecorder {
    a: Arc<dyn Recorder>,
    b: Arc<dyn Recorder>,
}

impl std::fmt::Debug for TeeRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeRecorder").finish_non_exhaustive()
    }
}

impl TeeRecorder {
    /// A recorder forwarding every event to both `a` and `b`.
    pub fn new(a: Arc<dyn Recorder>, b: Arc<dyn Recorder>) -> Self {
        Self { a, b }
    }
}

impl Recorder for TeeRecorder {
    fn record(&self, event: Event) {
        self.a.record(event.clone());
        self.b.record(event);
    }

    fn flush(&self) -> io::Result<()> {
        let ra = self.a.flush();
        self.b.flush()?;
        ra
    }

    fn error_count(&self) -> u64 {
        self.a.error_count() + self.b.error_count()
    }
}

/// Writes events as JSON Lines: one object per event, each stamped with a
/// `t_ms` field (milliseconds since the sink was created, read from the
/// sink's [`Clock`](inf2vec_util::Clock) — deterministic under
/// `ManualClock`) appended after the event's own fields.
///
/// Write errors are counted (see [`error_count`](Self::error_count)) rather
/// than propagated — telemetry must never take down training. Dropping the
/// sink performs a final best-effort flush, so short-lived processes do not
/// lose their tail of buffered events.
pub struct JsonlSink {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
    clock: SharedClock,
    start: Duration,
    errors: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("errors", &self.error_count())
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// A sink writing to an arbitrary writer (buffered internally),
    /// timestamped from the system clock.
    pub fn to_writer(writer: impl Write + Send + 'static) -> Self {
        Self::to_writer_with_clock(writer, system_clock())
    }

    /// A sink with an explicit clock for `t_ms` stamps.
    pub fn to_writer_with_clock(writer: impl Write + Send + 'static, clock: SharedClock) -> Self {
        let start = clock.now();
        Self {
            writer: Mutex::new(BufWriter::new(Box::new(writer))),
            clock,
            start,
            errors: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Creates (truncating) the file at `path` and writes events to it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::to_writer(File::create(path)?))
    }

    /// Like [`create`](Self::create) with an explicit clock.
    pub fn create_with_clock(path: impl AsRef<Path>, clock: SharedClock) -> io::Result<Self> {
        Ok(Self::to_writer_with_clock(File::create(path)?, clock))
    }

    /// How many writes failed so far.
    pub fn error_count(&self) -> u64 {
        self.errors.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Recorder for JsonlSink {
    fn record(&self, event: Event) {
        let t_ms = self.clock.now().saturating_sub(self.start).as_millis() as u64;
        let line = event.u64("t_ms", t_ms).to_json();
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if writeln!(w, "{line}").is_err() {
            self.errors
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn flush(&self) -> io::Result<()> {
        self.writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .flush()
    }

    fn error_count(&self) -> u64 {
        JsonlSink::error_count(self)
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if Recorder::flush(self).is_err() {
            self.errors
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inf2vec_util::ManualClock;
    use std::sync::Arc;

    #[test]
    fn memory_sink_buffers_and_takes() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(Event::new("a"));
        sink.record(Event::new("b").u64("n", 1));
        assert_eq!(sink.len(), 2);
        let taken = sink.take();
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[1].kind(), "b");
        assert!(sink.is_empty());
    }

    /// Shared Vec<u8> writer so the test can inspect what the sink wrote.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_writes_parsable_lines_with_t_ms() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::to_writer(buf.clone());
        sink.record(Event::new("epoch").u64("epoch", 0).f64("loss", 0.5));
        sink.record(Event::new("epoch").u64("epoch", 1).f64("loss", 0.25));
        Recorder::flush(&sink).unwrap();
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let e = Event::from_json(line).unwrap();
            assert_eq!(e.kind(), "epoch");
            assert_eq!(e.get("epoch").and_then(|v| v.as_u64()), Some(i as u64));
            assert!(e.get("t_ms").and_then(|v| v.as_u64()).is_some());
        }
        assert_eq!(sink.error_count(), 0);
    }

    #[test]
    fn jsonl_sink_t_ms_is_deterministic_under_manual_clock() {
        let (clock, handle) = ManualClock::shared();
        handle.advance(Duration::from_secs(100)); // sink epoch is relative
        let buf = SharedBuf::default();
        let sink = JsonlSink::to_writer_with_clock(buf.clone(), clock);
        handle.advance(Duration::from_millis(42));
        sink.record(Event::new("tick"));
        handle.advance(Duration::from_millis(8));
        sink.record(Event::new("tock"));
        Recorder::flush(&sink).unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let stamps: Vec<u64> = text
            .lines()
            .map(|l| Event::from_json(l).unwrap().get("t_ms").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(stamps, vec![42, 50]);
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let buf = SharedBuf::default();
        {
            let sink = JsonlSink::to_writer(buf.clone());
            sink.record(Event::new("tail_event"));
            // No explicit flush: the event sits in the BufWriter.
            assert!(buf.0.lock().unwrap().is_empty());
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("tail_event"), "drop did not flush: {text:?}");
    }

    #[test]
    fn jsonl_sink_counts_write_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("boom"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // Tiny BufWriter capacity is not controllable here, so force the
        // flush path by writing more than the default 8 KiB buffer.
        let sink = JsonlSink::to_writer(Failing);
        let big = "x".repeat(16 * 1024);
        sink.record(Event::new("big").str("pad", big));
        sink.record(Event::new("small"));
        assert!(Recorder::flush(&sink).is_err() || sink.error_count() > 0);
    }

    #[test]
    fn tee_duplicates_flushes_and_sums_errors() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let tee = TeeRecorder::new(
            Arc::clone(&a) as Arc<dyn Recorder>,
            Arc::clone(&b) as Arc<dyn Recorder>,
        );
        tee.record(Event::new("x").u64("n", 1));
        tee.flush().unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a.events()[0], b.events()[0]);
        assert_eq!(tee.error_count(), 0);
    }
}
