//! Event sinks: where structured [`Event`]s go.
//!
//! A [`Recorder`] receives finished events. The three implementations cover
//! the three deployment modes: [`NoopRecorder`] (drop everything — the
//! default, zero overhead), [`MemorySink`] (buffer in RAM for tests), and
//! [`JsonlSink`] (append one JSON object per line to a writer or file, with
//! a relative `t_ms` timestamp injected into every event).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use crate::event::Event;

/// Destination for structured telemetry events.
pub trait Recorder: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: Event);

    /// Flushes any buffered output. Default: nothing to flush.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn record(&self, _event: Event) {}
}

/// Buffers events in memory; intended for tests and examples.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().expect("memory sink poisoned"))
    }

    /// A copy of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Recorder for MemorySink {
    fn record(&self, event: Event) {
        self.events.lock().expect("memory sink poisoned").push(event);
    }
}

/// Writes events as JSON Lines: one object per event, each stamped with a
/// `t_ms` field (milliseconds since the sink was created) appended after the
/// event's own fields.
///
/// Write errors are counted (see [`error_count`](Self::error_count)) rather
/// than propagated — telemetry must never take down training.
pub struct JsonlSink {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
    start: Instant,
    errors: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("errors", &self.error_count())
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// A sink writing to an arbitrary writer (buffered internally).
    pub fn to_writer(writer: impl Write + Send + 'static) -> Self {
        Self {
            writer: Mutex::new(BufWriter::new(Box::new(writer))),
            start: Instant::now(),
            errors: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Creates (truncating) the file at `path` and writes events to it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::to_writer(File::create(path)?))
    }

    /// How many writes failed so far.
    pub fn error_count(&self) -> u64 {
        self.errors.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Recorder for JsonlSink {
    fn record(&self, event: Event) {
        let t_ms = self.start.elapsed().as_millis() as u64;
        let line = event.u64("t_ms", t_ms).to_json();
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        if writeln!(w, "{line}").is_err() {
            self.errors
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn flush(&self) -> io::Result<()> {
        self.writer.lock().expect("jsonl sink poisoned").flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn memory_sink_buffers_and_takes() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(Event::new("a"));
        sink.record(Event::new("b").u64("n", 1));
        assert_eq!(sink.len(), 2);
        let taken = sink.take();
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[1].kind(), "b");
        assert!(sink.is_empty());
    }

    /// Shared Vec<u8> writer so the test can inspect what the sink wrote.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_writes_parsable_lines_with_t_ms() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::to_writer(buf.clone());
        sink.record(Event::new("epoch").u64("epoch", 0).f64("loss", 0.5));
        sink.record(Event::new("epoch").u64("epoch", 1).f64("loss", 0.25));
        sink.flush().unwrap();
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let e = Event::from_json(line).unwrap();
            assert_eq!(e.kind(), "epoch");
            assert_eq!(e.get("epoch").and_then(|v| v.as_u64()), Some(i as u64));
            assert!(e.get("t_ms").and_then(|v| v.as_u64()).is_some());
        }
        assert_eq!(sink.error_count(), 0);
    }

    #[test]
    fn jsonl_sink_counts_write_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("boom"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // Tiny BufWriter capacity is not controllable here, so force the
        // flush path by writing more than the default 8 KiB buffer.
        let sink = JsonlSink::to_writer(Failing);
        let big = "x".repeat(16 * 1024);
        sink.record(Event::new("big").str("pad", big));
        sink.record(Event::new("small"));
        assert!(sink.flush().is_err() || sink.error_count() > 0);
    }
}
