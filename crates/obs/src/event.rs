//! Structured telemetry events and their JSONL wire format.
//!
//! An [`Event`] is a kind tag plus an ordered list of typed fields. On the
//! wire each event is one JSON object per line: the kind under the `"event"`
//! key first, then the fields in insertion order —
//! `{"event":"epoch","epoch":3,"loss":0.52}`. The crate carries its own
//! minimal JSON writer *and* parser so event logs round-trip without any
//! external dependency.
//!
//! Numbers: integers serialize without a decimal point and parse back as
//! [`Value::U64`]/[`Value::I64`]; floats serialize via Rust's shortest
//! round-trip representation (always with a `.` or exponent) and parse back
//! as [`Value::F64`] bit-exactly. Non-finite floats are not valid JSON, so
//! they serialize as the strings `"NaN"`, `"Infinity"`, `"-Infinity"`;
//! [`Value::as_f64`] converts them back.

use std::fmt;

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Finite or non-finite float (non-finite serializes as a string).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl Value {
    /// Numeric view: integers and floats coerce; the non-finite string
    /// spellings (`"NaN"`, `"Infinity"`, `"-Infinity"`) parse back.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Bool(_) => None,
            Value::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                _ => None,
            },
        }
    }

    /// Unsigned-integer view (exact only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One structured telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    kind: String,
    fields: Vec<(String, Value)>,
}

impl Event {
    /// A new event of the given kind with no fields yet.
    pub fn new(kind: impl Into<String>) -> Self {
        Self {
            kind: kind.into(),
            fields: Vec::new(),
        }
    }

    /// The event kind.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The fields in insertion order.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// First field with the given key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Appends a field (builder style).
    pub fn field(mut self, key: impl Into<String>, value: Value) -> Self {
        self.fields.push((key.into(), value));
        self
    }

    /// Appends an unsigned-integer field.
    pub fn u64(self, key: impl Into<String>, v: u64) -> Self {
        self.field(key, Value::U64(v))
    }

    /// Appends a float field.
    pub fn f64(self, key: impl Into<String>, v: f64) -> Self {
        self.field(key, Value::F64(v))
    }

    /// Appends a boolean field.
    pub fn bool(self, key: impl Into<String>, v: bool) -> Self {
        self.field(key, Value::Bool(v))
    }

    /// Appends a string field.
    pub fn str(self, key: impl Into<String>, v: impl Into<String>) -> Self {
        self.field(key, Value::Str(v.into()))
    }

    /// Serializes as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.fields.len() * 16);
        out.push_str("{\"event\":");
        write_json_string(&mut out, &self.kind);
        for (k, v) in &self.fields {
            out.push(',');
            write_json_string(&mut out, k);
            out.push(':');
            write_json_value(&mut out, v);
        }
        out.push('}');
        out
    }

    /// Parses one JSON object produced by [`to_json`](Self::to_json) (or any
    /// flat JSON object of scalars with a string `"event"` key).
    pub fn from_json(s: &str) -> Result<Self, ParseError> {
        let mut p = Parser::new(s);
        p.skip_ws();
        p.expect(b'{')?;
        let mut kind: Option<String> = None;
        let mut fields = Vec::new();
        p.skip_ws();
        if !p.eat(b'}') {
            loop {
                p.skip_ws();
                let key = p.string()?;
                p.skip_ws();
                p.expect(b':')?;
                p.skip_ws();
                let value = p.value()?;
                if key == "event" {
                    match value {
                        Value::Str(k) if kind.is_none() => kind = Some(k),
                        Value::Str(_) => return Err(p.err("duplicate \"event\" key")),
                        _ => return Err(p.err("\"event\" must be a string")),
                    }
                } else {
                    fields.push((key, value));
                }
                p.skip_ws();
                if p.eat(b',') {
                    continue;
                }
                p.expect(b'}')?;
                break;
            }
        }
        p.skip_ws();
        if !p.at_end() {
            return Err(p.err("trailing characters after object"));
        }
        let kind = kind.ok_or_else(|| p.err("missing \"event\" key"))?;
        Ok(Self { kind, fields })
    }
}

/// Escapes and appends `s` as a JSON string literal.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) if x.is_finite() => {
            // `{:?}` is Rust's shortest round-trip float form and always
            // contains a '.' or exponent, so integral floats stay floats.
            out.push_str(&format!("{x:?}"));
        }
        Value::F64(x) => {
            let s = if x.is_nan() {
                "NaN"
            } else if *x > 0.0 {
                "Infinity"
            } else {
                "-Infinity"
            };
            write_json_string(out, s);
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => write_json_string(out, s),
    }
}

/// A JSON parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid event JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Minimal single-pass parser over the flat-object subset the sink writes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates never appear in our own output;
                            // reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are valid; find the next char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => {
                self.keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a scalar value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits and punctuation are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let e = Event::new("epoch").u64("epoch", 3).f64("loss", 0.5);
        assert_eq!(e.kind(), "epoch");
        assert_eq!(e.get("epoch"), Some(&Value::U64(3)));
        assert_eq!(e.get("loss").and_then(Value::as_f64), Some(0.5));
        assert_eq!(e.get("missing"), None);
    }

    #[test]
    fn json_shape_is_stable() {
        let e = Event::new("epoch")
            .u64("epoch", 3)
            .f64("loss", 0.52)
            .f64("whole", 2.0)
            .bool("ok", true)
            .str("phase", "train");
        assert_eq!(
            e.to_json(),
            r#"{"event":"epoch","epoch":3,"loss":0.52,"whole":2.0,"ok":true,"phase":"train"}"#
        );
    }

    #[test]
    fn round_trip_preserves_types_and_order() {
        let e = Event::new("shard")
            .u64("pairs", 123_456)
            .field("delta", Value::I64(-5))
            .f64("secs", 0.125)
            .f64("rate", 3.0)
            .bool("degraded", false)
            .str("msg", "a \"quoted\"\nline\tπ");
        let back = Event::from_json(&e.to_json()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn non_finite_floats_round_trip_via_strings() {
        let e = Event::new("x")
            .f64("nan", f64::NAN)
            .f64("inf", f64::INFINITY)
            .f64("ninf", f64::NEG_INFINITY);
        let back = Event::from_json(&e.to_json()).unwrap();
        assert!(back.get("nan").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(
            back.get("inf").unwrap().as_f64(),
            Some(f64::INFINITY)
        );
        assert_eq!(
            back.get("ninf").unwrap().as_f64(),
            Some(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "{}",                                  // missing "event"
            r#"{"event":3}"#,                      // non-string kind
            r#"{"event":"a","x":}"#,               // missing value
            r#"{"event":"a"} extra"#,              // trailing junk
            r#"{"event":"a","x":[1]}"#,            // nested values unsupported
            r#"{"event":"a","event":"b"}"#,        // duplicate kind
            r#"{"event":"a","x":1e}"#,             // malformed number
            "{\"event\":\"a\",\"x\":\"unterminated",
        ] {
            assert!(Event::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_accepts_whitespace_and_escapes() {
        let e = Event::from_json(
            " { \"event\" : \"k\" , \"s\" : \"\\u00e9\\t\" , \"n\" : -7 } ",
        )
        .unwrap();
        assert_eq!(e.kind(), "k");
        assert_eq!(e.get("s"), Some(&Value::Str("é\t".into())));
        assert_eq!(e.get("n"), Some(&Value::I64(-7)));
    }
}
