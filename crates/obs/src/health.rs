//! Windowed health evaluation over metric snapshots.
//!
//! A [`HealthPolicy`] is a list of named [`Rule`]s, each watching one
//! signal: either a **windowed ratio** of two counters (the deltas between
//! this evaluation's snapshot and the previous one, so a long-running
//! process is judged on its recent behaviour, not its lifetime averages)
//! or the **current value of a gauge**. Each rule carries a `degraded` and
//! a `failing` threshold; the overall [`HealthState`] is the worst state
//! any rule reports.
//!
//! The [`HealthEvaluator`] owns the previous snapshot and the window clock
//! (an [`inf2vec_util::Clock`], so tests drive it with `ManualClock`).
//! The first evaluation has no window yet: ratio rules report `ok` with a
//! `no window` detail rather than guessing.

use std::fmt;
use std::sync::Mutex;
use std::time::Duration;

use inf2vec_util::SharedClock;

use crate::registry::{SampleValue, Snapshot};

/// Overall or per-rule health verdict, worst-wins ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Everything within thresholds.
    Ok,
    /// At least one rule past its `degraded` threshold.
    Degraded,
    /// At least one rule past its `failing` threshold.
    Failing,
}

impl HealthState {
    /// The wire spelling (`ok` / `degraded` / `failing`).
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Failing => "failing",
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a rule watches.
#[derive(Debug, Clone)]
pub enum Signal {
    /// `Δ numer / Δ denom` over the evaluation window, counters summed
    /// across every label set carrying the name. A zero denominator delta
    /// (no traffic) evaluates to 0.
    Ratio {
        /// Numerator counter name.
        numer: String,
        /// Denominator counter name.
        denom: String,
    },
    /// The gauge's current value (0 when absent).
    GaugeValue {
        /// Gauge name (unlabeled).
        name: String,
    },
}

/// One named health check: a signal plus escalation thresholds.
///
/// `value > failing` → failing; else `value > degraded` → degraded;
/// else ok. Use `f64::INFINITY` to disable a level.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Check name, reported in `/healthz` output.
    pub name: String,
    /// What to measure.
    pub signal: Signal,
    /// Above this the rule is degraded.
    pub degraded: f64,
    /// Above this the rule is failing.
    pub failing: f64,
}

impl Rule {
    /// A windowed-ratio rule.
    pub fn ratio(
        name: impl Into<String>,
        numer: impl Into<String>,
        denom: impl Into<String>,
        degraded: f64,
        failing: f64,
    ) -> Self {
        Self {
            name: name.into(),
            signal: Signal::Ratio {
                numer: numer.into(),
                denom: denom.into(),
            },
            degraded,
            failing,
        }
    }

    /// A gauge-threshold rule.
    pub fn gauge_above(
        name: impl Into<String>,
        gauge: impl Into<String>,
        degraded: f64,
        failing: f64,
    ) -> Self {
        Self {
            name: name.into(),
            signal: Signal::GaugeValue { name: gauge.into() },
            degraded,
            failing,
        }
    }
}

/// An ordered set of health rules.
#[derive(Debug, Clone, Default)]
pub struct HealthPolicy {
    /// The rules, evaluated in order.
    pub rules: Vec<Rule>,
}

impl HealthPolicy {
    /// An empty policy (always healthy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rule (builder style).
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }
}

/// One rule's outcome within a report.
#[derive(Debug, Clone)]
pub struct Check {
    /// Rule name.
    pub name: String,
    /// This rule's verdict.
    pub state: HealthState,
    /// The measured value the thresholds were compared against.
    pub value: f64,
    /// Human-oriented context (threshold crossed, missing window, …).
    pub detail: String,
}

/// The result of one health evaluation.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Worst state across all checks.
    pub state: HealthState,
    /// Window length in seconds (0 on the first evaluation).
    pub window_secs: f64,
    /// Per-rule outcomes.
    pub checks: Vec<Check>,
}

impl HealthReport {
    /// Serializes the report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.checks.len() * 96);
        out.push_str("{\"state\":\"");
        out.push_str(self.state.as_str());
        out.push_str("\",\"window_secs\":");
        out.push_str(&format_f64(self.window_secs));
        out.push_str(",\"checks\":[");
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            crate::event::write_json_string(&mut out, &c.name);
            out.push_str(",\"state\":\"");
            out.push_str(c.state.as_str());
            out.push_str("\",\"value\":");
            out.push_str(&format_f64(c.value));
            out.push_str(",\"detail\":");
            crate::event::write_json_string(&mut out, &c.detail);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:?}")
    }
}

/// Sum of every counter sample named `name`, across all label sets.
fn counter_sum(snap: &Snapshot, name: &str) -> u64 {
    snap.samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| match &s.value {
            SampleValue::Counter(v) => *v,
            _ => 0,
        })
        .sum()
}

fn gauge_value(snap: &Snapshot, name: &str) -> Option<f64> {
    match snap.get(name).map(|s| &s.value) {
        Some(SampleValue::Gauge(v)) => Some(*v),
        _ => None,
    }
}

/// Evaluates a [`HealthPolicy`] against successive snapshots, keeping the
/// previous snapshot to form the rate window.
pub struct HealthEvaluator {
    policy: HealthPolicy,
    clock: SharedClock,
    prev: Mutex<Option<(Duration, Snapshot)>>,
}

impl fmt::Debug for HealthEvaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HealthEvaluator")
            .field("rules", &self.policy.rules.len())
            .finish_non_exhaustive()
    }
}

impl HealthEvaluator {
    /// An evaluator reading window time from `clock`.
    pub fn new(policy: HealthPolicy, clock: SharedClock) -> Self {
        Self {
            policy,
            clock,
            prev: Mutex::new(None),
        }
    }

    /// Evaluates every rule against `snap`, using the snapshot from the
    /// previous call as the window base, then stores `snap` as the new
    /// base.
    pub fn evaluate(&self, snap: Snapshot) -> HealthReport {
        let now = self.clock.now();
        let mut prev_guard = self
            .prev
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let prev = prev_guard.take();
        let window_secs = prev
            .as_ref()
            .map(|(t, _)| now.saturating_sub(*t).as_secs_f64())
            .unwrap_or(0.0);

        let mut checks = Vec::with_capacity(self.policy.rules.len());
        let mut state = HealthState::Ok;
        for rule in &self.policy.rules {
            let check = match &rule.signal {
                Signal::Ratio { numer, denom } => match prev.as_ref() {
                    None => Check {
                        name: rule.name.clone(),
                        state: HealthState::Ok,
                        value: 0.0,
                        detail: "no window yet".to_string(),
                    },
                    Some((_, base)) => {
                        let dn = counter_sum(&snap, numer)
                            .saturating_sub(counter_sum(base, numer));
                        let dd = counter_sum(&snap, denom)
                            .saturating_sub(counter_sum(base, denom));
                        let value = if dd == 0 { 0.0 } else { dn as f64 / dd as f64 };
                        self.verdict(rule, value, format!("{dn}/{dd} over window"))
                    }
                },
                Signal::GaugeValue { name } => match gauge_value(&snap, name) {
                    None => Check {
                        name: rule.name.clone(),
                        state: HealthState::Ok,
                        value: 0.0,
                        detail: format!("gauge {name} absent"),
                    },
                    Some(value) => self.verdict(rule, value, format!("gauge {name}")),
                },
            };
            state = state.max(check.state);
            checks.push(check);
        }
        *prev_guard = Some((now, snap));
        HealthReport {
            state,
            window_secs,
            checks,
        }
    }

    fn verdict(&self, rule: &Rule, value: f64, context: String) -> Check {
        let state = if value > rule.failing {
            HealthState::Failing
        } else if value > rule.degraded {
            HealthState::Degraded
        } else {
            HealthState::Ok
        };
        let detail = match state {
            HealthState::Ok => context,
            HealthState::Degraded => {
                format!("{context}; {value} > degraded threshold {}", rule.degraded)
            }
            HealthState::Failing => {
                format!("{context}; {value} > failing threshold {}", rule.failing)
            }
        };
        Check {
            name: rule.name.clone(),
            state,
            value,
            detail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use inf2vec_util::ManualClock;
    use std::time::Duration;

    fn policy() -> HealthPolicy {
        HealthPolicy::new()
            .rule(Rule::ratio(
                "quarantine_ratio",
                "quarantined_total",
                "records_total",
                0.25,
                0.75,
            ))
            .rule(Rule::gauge_above("publish_lag", "lag_episodes", 4.0, 16.0))
    }

    #[test]
    fn first_evaluation_has_no_window() {
        let (clock, _) = ManualClock::shared();
        let ev = HealthEvaluator::new(policy(), clock);
        let r = Registry::new();
        r.counter("records_total", &[]).add(100);
        r.counter("quarantined_total", &[]).add(100); // lifetime ratio 1.0
        let report = ev.evaluate(r.snapshot());
        assert_eq!(report.state, HealthState::Ok, "{report:?}");
        assert_eq!(report.window_secs, 0.0);
        assert_eq!(report.checks[0].detail, "no window yet");
    }

    #[test]
    fn windowed_ratio_escalates_and_recovers() {
        let (clock, handle) = ManualClock::shared();
        let ev = HealthEvaluator::new(policy(), clock);
        let r = Registry::new();
        r.counter("records_total", &[]).add(100);
        ev.evaluate(r.snapshot());

        // Window 1: 80 quarantined of 100 new records => failing.
        handle.advance(Duration::from_secs(10));
        r.counter("records_total", &[]).add(100);
        r.counter("quarantined_total", &[]).add(80);
        let report = ev.evaluate(r.snapshot());
        assert_eq!(report.state, HealthState::Failing);
        assert_eq!(report.window_secs, 10.0);
        assert!(report.checks[0].detail.contains("failing threshold"));

        // Window 2: clean traffic => recovers even though lifetime ratio
        // is still high.
        handle.advance(Duration::from_secs(10));
        r.counter("records_total", &[]).add(1000);
        let report = ev.evaluate(r.snapshot());
        assert_eq!(report.state, HealthState::Ok);
    }

    #[test]
    fn ratio_sums_across_label_sets_and_empty_window_is_ok() {
        let (clock, handle) = ManualClock::shared();
        let pol = HealthPolicy::new().rule(Rule::ratio("q", "q_total", "r_total", 0.25, 0.75));
        let ev = HealthEvaluator::new(pol, clock);
        let r = Registry::new();
        ev.evaluate(r.snapshot());
        handle.advance(Duration::from_secs(1));
        // No traffic at all: ratio counts as 0, not NaN.
        let report = ev.evaluate(r.snapshot());
        assert_eq!(report.state, HealthState::Ok);
        handle.advance(Duration::from_secs(1));
        r.counter("q_total", &[("kind", "a")]).add(2);
        r.counter("q_total", &[("kind", "b")]).add(2);
        r.counter("r_total", &[]).add(10);
        let report = ev.evaluate(r.snapshot());
        assert_eq!(report.checks[0].value, 0.4);
        assert_eq!(report.state, HealthState::Degraded);
    }

    #[test]
    fn gauge_rule_and_json_shape() {
        let (clock, _) = ManualClock::shared();
        let ev = HealthEvaluator::new(policy(), clock);
        let r = Registry::new();
        r.gauge("lag_episodes", &[]).set(20.0);
        let report = ev.evaluate(r.snapshot());
        assert_eq!(report.state, HealthState::Failing);
        let json = report.to_json();
        assert!(json.starts_with("{\"state\":\"failing\""), "{json}");
        assert!(json.contains("\"name\":\"publish_lag\""), "{json}");
        assert!(json.contains("\"value\":20"), "{json}");
    }

    #[test]
    fn worst_wins_ordering() {
        assert!(HealthState::Failing > HealthState::Degraded);
        assert!(HealthState::Degraded > HealthState::Ok);
        assert_eq!(HealthState::Ok.as_str(), "ok");
        assert_eq!(format!("{}", HealthState::Degraded), "degraded");
    }
}
