//! The metric registry: named handles, snapshots, Prometheus exposition.
//!
//! A [`Registry`] maps `(name, labels)` to a metric and hands out `Arc`
//! handles. The lock is taken only at registration — the hot path (updating
//! a `Counter`/`Gauge`/`Histogram` through its handle) is lock-free.
//! [`Registry::snapshot`] freezes current values into plain data, and
//! [`Snapshot::to_prometheus`] renders the standard text exposition format
//! with deterministic (sorted) ordering so it can be snapshot-tested.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram};

/// A metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A concurrent registry of named metrics.
///
/// `counter`/`gauge`/`histogram` get-or-create: the first call registers,
/// later calls with the same name and labels return the same handle.
///
/// # Panics
///
/// Re-registering a name+labels pair as a different metric type panics —
/// that is always a programming error, not a runtime condition.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<MetricId, Metric>>,
    help: Mutex<BTreeMap<String, String>>,
}

/// Name of the synthetic counter summing non-finite observations dropped
/// by every histogram in a registry (emitted only when nonzero).
pub const DROPPED_OBSERVATIONS_METRIC: &str = "inf2vec_obs_dropped_observations_total";

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `# HELP` text for the metric family `name`, rendered by
    /// [`Snapshot::to_prometheus`] with text-format escaping.
    pub fn describe(&self, name: &str, help: &str) {
        self.help
            .lock()
            .expect("registry poisoned")
            .insert(name.to_string(), help.to_string());
    }

    fn id(name: &str, labels: &[(&str, &str)]) -> MetricId {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }

    /// Get-or-create a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = Self::id(name, labels);
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(id)
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get-or-create a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = Self::id(name, labels);
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(id)
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get-or-create a histogram with the default latency buckets
    /// ([`Histogram::default_seconds`]).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_with(name, labels, Histogram::default_seconds)
    }

    /// Get-or-create a histogram, building it with `make` on first use.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Histogram,
    ) -> Arc<Histogram> {
        let id = Self::id(name, labels);
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(id)
            .or_insert_with(|| Metric::Histogram(Arc::new(make())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Freezes the current value of every registered metric.
    ///
    /// When any histogram has rejected non-finite observations, the total
    /// appears as the synthetic counter [`DROPPED_OBSERVATIONS_METRIC`] so
    /// silent data loss is visible on every scrape.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().expect("registry poisoned");
        let mut dropped = 0u64;
        let samples = map
            .iter()
            .map(|(id, metric)| MetricSample {
                name: id.name.clone(),
                labels: id.labels.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        dropped += h.dropped_count();
                        SampleValue::Histogram {
                            bounds: h.bounds().to_vec(),
                            counts: h.bucket_counts(),
                            sum: h.sum(),
                            count: h.count(),
                        }
                    }
                },
            })
            .collect();
        drop(map);
        let help = self.help.lock().expect("registry poisoned").clone();
        let mut snap = Snapshot { samples, help };
        if dropped > 0 {
            snap.insert_sorted(MetricSample {
                name: DROPPED_OBSERVATIONS_METRIC.to_string(),
                labels: Vec::new(),
                value: SampleValue::Counter(dropped),
            });
            snap.help.entry(DROPPED_OBSERVATIONS_METRIC.to_string()).or_insert_with(|| {
                "Non-finite histogram observations rejected across all histograms".to_string()
            });
        }
        snap
    }
}

/// One metric's frozen value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SampleValue,
}

/// Frozen metric value by type.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state: per-bucket (non-cumulative) counts with the `+Inf`
    /// overflow last, plus sum and count.
    Histogram {
        /// Inclusive upper bucket edges (finite).
        bounds: Vec<f64>,
        /// Non-cumulative per-bucket counts; last entry is the overflow.
        counts: Vec<u64>,
        /// Sum of observations.
        sum: f64,
        /// Number of observations.
        count: u64,
    },
}

/// A point-in-time copy of a registry, ordered by (name, labels).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// The frozen samples, sorted by name then labels.
    pub samples: Vec<MetricSample>,
    /// Per-family `# HELP` text registered via [`Registry::describe`].
    pub help: BTreeMap<String, String>,
}

impl Snapshot {
    /// Inserts `sample` at its (name, labels) sort position, keeping the
    /// snapshot's deterministic ordering. Used for synthetic samples
    /// (dropped observations, recorder errors).
    pub fn insert_sorted(&mut self, sample: MetricSample) {
        let pos = self
            .samples
            .partition_point(|s| (&s.name, &s.labels) < (&sample.name, &sample.labels));
        self.samples.insert(pos, sample);
    }

    /// The sample with the given name and no labels.
    pub fn get(&self, name: &str) -> Option<&MetricSample> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
    }

    /// The sample with the given name and exactly the given labels
    /// (order-insensitive, like registration).
    pub fn get_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == want)
    }

    /// Counter total for `name` with exactly `labels`; 0 when the metric is
    /// absent or not a counter. Convenient for reconciling externally kept
    /// tallies against the registry.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get_with(name, labels).map(|s| &s.value) {
            Some(SampleValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Renders the Prometheus text exposition format (version 0.0.4).
    ///
    /// Output is deterministic: samples appear in name order, histogram
    /// buckets cumulative with a final `le="+Inf"`, every family preceded by
    /// a `# TYPE` line (and a `# HELP` line when registered, escaped per
    /// the text-format spec: `\` as `\\`, line feed as `\n`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for s in &self.samples {
            let type_name = match s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram { .. } => "histogram",
            };
            if last_family != Some(s.name.as_str()) {
                if let Some(help) = self.help.get(&s.name) {
                    let _ = writeln!(out, "# HELP {} {}", s.name, escape_help(help));
                }
                let _ = writeln!(out, "# TYPE {} {}", s.name, type_name);
                last_family = Some(s.name.as_str());
            }
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, labels(&s.labels, &[]), v);
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        s.name,
                        labels(&s.labels, &[]),
                        fmt_f64(*v)
                    );
                }
                SampleValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    let mut cum = 0u64;
                    for (i, b) in bounds.iter().enumerate() {
                        cum += counts[i];
                        let le = fmt_f64(*b);
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            s.name,
                            labels(&s.labels, &[("le", &le)]),
                            cum
                        );
                    }
                    cum += counts.last().copied().unwrap_or(0);
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        labels(&s.labels, &[("le", "+Inf")]),
                        cum
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        s.name,
                        labels(&s.labels, &[]),
                        fmt_f64(*sum)
                    );
                    let _ = writeln!(out, "{}_count{} {}", s.name, labels(&s.labels, &[]), count);
                }
            }
        }
        out
    }
}

/// Escapes `# HELP` text per the Prometheus text-format spec: backslash
/// and line feed only (quotes are legal in help text).
fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a `{k="v",...}` label block (empty string when no labels).
fn labels(base: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if base.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in base
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Prometheus-style float formatting: shortest round-trip form.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        // Integral values print without an exponent or trailing zeros.
        format!("{v}")
    } else {
        format!("{v:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x_total", &[]);
        let b = r.counter("x_total", &[]);
        a.inc();
        assert_eq!(b.get(), 1);
        // Labels in different order resolve to the same metric.
        let g1 = r.gauge("g", &[("a", "1"), ("b", "2")]);
        let g2 = r.gauge("g", &[("b", "2"), ("a", "1")]);
        g1.set(7.0);
        assert_eq!(g2.get(), 7.0);
    }

    #[test]
    fn labeled_lookup_is_order_insensitive() {
        let r = Registry::new();
        r.counter("req_total", &[("outcome", "ok"), ("kind", "pair")])
            .add(4);
        let snap = r.snapshot();
        assert_eq!(
            snap.counter_value("req_total", &[("kind", "pair"), ("outcome", "ok")]),
            4
        );
        assert_eq!(snap.counter_value("req_total", &[("outcome", "shed")]), 0);
        assert_eq!(snap.counter_value("missing_total", &[]), 0);
        assert!(snap
            .get_with("req_total", &[("outcome", "ok"), ("kind", "pair")])
            .is_some());
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("m", &[]);
        let _ = r.gauge("m", &[]);
    }

    #[test]
    fn snapshot_freezes_values() {
        let r = Registry::new();
        r.counter("c_total", &[]).add(3);
        r.gauge("g", &[]).set(1.5);
        let snap = r.snapshot();
        r.counter("c_total", &[]).add(100);
        assert_eq!(
            snap.get("c_total").map(|s| &s.value),
            Some(&SampleValue::Counter(3))
        );
        assert_eq!(
            snap.get("g").map(|s| &s.value),
            Some(&SampleValue::Gauge(1.5))
        );
    }

    #[test]
    fn prometheus_text_format_snapshot() {
        let r = Registry::new();
        r.counter("inf2vec_train_pairs_total", &[]).add(1200);
        r.gauge("inf2vec_train_loss", &[]).set(0.5234);
        r.gauge("inf2vec_train_pairs_per_sec", &[]).set(150000.0);
        let h = r.histogram_with("inf2vec_checkpoint_write_seconds", &[], || {
            Histogram::new(vec![0.001, 0.01, 0.1])
        });
        // Binary-exact values so the `_sum` line is deterministic.
        h.observe(0.0078125);
        h.observe(0.015625);
        h.observe(0.25);
        r.counter("inf2vec_worker_pairs_total", &[("worker", "0")])
            .add(600);
        r.counter("inf2vec_worker_pairs_total", &[("worker", "1")])
            .add(600);

        let text = r.snapshot().to_prometheus();
        let expect = "\
# TYPE inf2vec_checkpoint_write_seconds histogram
inf2vec_checkpoint_write_seconds_bucket{le=\"0.001\"} 0
inf2vec_checkpoint_write_seconds_bucket{le=\"0.01\"} 1
inf2vec_checkpoint_write_seconds_bucket{le=\"0.1\"} 2
inf2vec_checkpoint_write_seconds_bucket{le=\"+Inf\"} 3
inf2vec_checkpoint_write_seconds_sum 0.2734375
inf2vec_checkpoint_write_seconds_count 3
# TYPE inf2vec_train_loss gauge
inf2vec_train_loss 0.5234
# TYPE inf2vec_train_pairs_per_sec gauge
inf2vec_train_pairs_per_sec 150000
# TYPE inf2vec_train_pairs_total counter
inf2vec_train_pairs_total 1200
# TYPE inf2vec_worker_pairs_total counter
inf2vec_worker_pairs_total{worker=\"0\"} 600
inf2vec_worker_pairs_total{worker=\"1\"} 600
";
        assert_eq!(text, expect);
    }

    #[test]
    fn type_line_emitted_once_per_family() {
        let r = Registry::new();
        r.counter("fam_total", &[("w", "0")]).inc();
        r.counter("fam_total", &[("w", "1")]).inc();
        let text = r.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE fam_total counter").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("c_total", &[("path", "a\"b\\c\nd")]).inc();
        let text = r.snapshot().to_prometheus();
        assert!(text.contains(r#"path="a\"b\\c\nd""#), "got: {text}");
    }

    #[test]
    fn help_lines_are_emitted_once_and_escaped() {
        let r = Registry::new();
        r.describe("req_total", "Requests seen.\nSecond line with a \\ and a \"quote\".");
        r.counter("req_total", &[("w", "0")]).inc();
        r.counter("req_total", &[("w", "1")]).inc();
        r.counter("undocumented_total", &[]).inc();
        let text = r.snapshot().to_prometheus();
        // HELP precedes TYPE, appears once per family, escapes \ and
        // newline but leaves quotes alone (per the text-format spec).
        let help_line =
            "# HELP req_total Requests seen.\\nSecond line with a \\\\ and a \"quote\".";
        assert_eq!(text.matches(help_line).count(), 1, "got: {text}");
        let help_pos = text.find("# HELP req_total").unwrap();
        let type_pos = text.find("# TYPE req_total").unwrap();
        assert!(help_pos < type_pos);
        assert!(!text.contains("# HELP undocumented_total"));
        // Every emitted line is single-line: no raw newline survives
        // inside a HELP or label value.
        for line in text.lines() {
            assert!(!line.is_empty());
        }
    }

    #[test]
    fn newline_bearing_labels_round_trip_with_help() {
        let r = Registry::new();
        r.describe("path_total", "Paths with\nodd characters");
        r.counter("path_total", &[("p", "line1\nline2\\end\"q")]).add(2);
        let text = r.snapshot().to_prometheus();
        assert!(
            text.contains("# HELP path_total Paths with\\nodd characters"),
            "got: {text}"
        );
        assert!(
            text.contains(r#"path_total{p="line1\nline2\\end\"q"} 2"#),
            "got: {text}"
        );
        // The exposition stays parseable line-by-line: exactly 3 lines.
        assert_eq!(text.lines().count(), 3, "got: {text}");
    }

    #[test]
    fn dropped_observations_surface_as_synthetic_counter() {
        let r = Registry::new();
        r.counter("a_total", &[]).inc();
        r.counter("zz_total", &[]).inc();
        // No drops: no synthetic sample, exact-format output unchanged.
        assert!(r.snapshot().get(DROPPED_OBSERVATIONS_METRIC).is_none());

        r.histogram("lat_seconds", &[]).observe(f64::NAN);
        r.histogram("lat_seconds", &[("k", "x")]).observe(f64::INFINITY);
        let snap = r.snapshot();
        assert_eq!(snap.counter_value(DROPPED_OBSERVATIONS_METRIC, &[]), 2);
        // Inserted in sorted position, so the exposition stays ordered.
        let names: Vec<&str> = snap.samples.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let text = snap.to_prometheus();
        assert!(
            text.contains("# HELP inf2vec_obs_dropped_observations_total"),
            "{text}"
        );
        assert!(text.contains("inf2vec_obs_dropped_observations_total 2"), "{text}");
    }
}
