//! Live introspection: a zero-dependency `std::net` HTTP/1.1 endpoint.
//!
//! [`IntrospectServer::start`] binds a listener and serves three routes
//! from a background thread:
//!
//! - `GET /metrics` — the Prometheus text exposition of the handle's
//!   registry (content type `text/plain; version=0.0.4`).
//! - `GET /healthz` — evaluates the configured [`HealthPolicy`] against a
//!   fresh snapshot and returns the JSON [`HealthReport`]; HTTP 200 for
//!   `ok`/`degraded`, 503 for `failing`.
//! - `GET /debug/flight` — the flight-recorder ring contents as JSONL,
//!   oldest first.
//!
//! The listener is non-blocking and polled with an exponential
//! [`IdleBackoff`](crate::http1::IdleBackoff), so [`IntrospectServer::stop`]
//! (or drop) shuts the thread down promptly without needing a wake-up
//! connection while an idle endpoint costs only a few wake-ups per
//! second. One request per connection (`Connection: close`) keeps the
//! loop single-threaded and allocation-light — this is a diagnostics
//! surface, not a serving plane. Request parsing and response writing
//! live in the shared [`crate::http1`] module, which the scoring
//! front-end in `inf2vec-serve` reuses.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::health::{HealthEvaluator, HealthPolicy, HealthState};
use crate::http1::{Connection, Http1Config, IdleBackoff};
use crate::Telemetry;

/// A running introspection endpoint; stops on [`stop`](Self::stop) or drop.
pub struct IntrospectServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for IntrospectServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntrospectServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl IntrospectServer {
    /// Binds `addr` (e.g. `127.0.0.1:9600`, or port 0 for an ephemeral
    /// port) and serves `telemetry`'s metrics, health, and flight ring.
    pub fn start(
        addr: &str,
        telemetry: Telemetry,
        policy: HealthPolicy,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let evaluator = HealthEvaluator::new(policy, telemetry.clock());
        let thread = std::thread::Builder::new()
            .name("inf2vec-introspect".to_string())
            .spawn(move || serve_loop(listener, telemetry, evaluator, stop2))?;
        Ok(Self {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the serving thread to exit and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for IntrospectServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(
    listener: TcpListener,
    telemetry: Telemetry,
    evaluator: HealthEvaluator,
    stop: Arc<AtomicBool>,
) {
    let mut backoff = IdleBackoff::for_accept_loop();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff.reset();
                // Diagnostics endpoint: serve inline, one request at a time.
                let _ = handle_connection(stream, &telemetry, &evaluator);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => backoff.idle(),
            Err(_) => backoff.idle(),
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    telemetry: &Telemetry,
    evaluator: &HealthEvaluator,
) -> std::io::Result<()> {
    let cfg = Http1Config {
        max_head_bytes: 8 * 1024,
        max_body_bytes: 4 * 1024, // GET-only surface; bodies are ignored.
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_secs(2),
    };
    let mut conn = Connection::new(stream, cfg)?;
    let request = match conn.read_request() {
        Ok(r) => r,
        Err(e) => {
            if let Some(status) = e.status() {
                let body = format!("{e}\n");
                let _ = conn.respond(status, "text/plain; charset=utf-8", body.as_bytes(), false);
            }
            return Ok(());
        }
    };
    let (status, content_type, body) = if request.method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            format!(
                "method {} not allowed; this endpoint is GET-only\n",
                request.method
            ),
        )
    } else {
        route(&request.path, telemetry, evaluator)
    };
    conn.respond(status, content_type, body.as_bytes(), false)
}

fn route(
    path: &str,
    telemetry: &Telemetry,
    evaluator: &HealthEvaluator,
) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            telemetry.prometheus(),
        ),
        "/healthz" => {
            let report = evaluator.evaluate(telemetry.snapshot());
            let status = match report.state {
                HealthState::Failing => "503 Service Unavailable",
                _ => "200 OK",
            };
            (status, "application/json; charset=utf-8", report.to_json())
        }
        "/debug/flight" => {
            let mut body = String::new();
            for e in telemetry.flight_events() {
                body.push_str(&e.to_json());
                body.push('\n');
            }
            ("200 OK", "application/x-ndjson; charset=utf-8", body)
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; routes: /metrics /healthz /debug/flight\n".to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Rule};
    use std::io::{Read, Write};

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let (head, body) = out.split_once("\r\n\r\n").unwrap();
        let status = head.lines().next().unwrap().to_string();
        (status, body.to_string())
    }

    #[test]
    fn serves_metrics_health_and_flight() {
        let t = Telemetry::with_registry();
        t.count("demo_total", 3);
        t.emit(Event::new("boot").u64("n", 1));
        let policy = HealthPolicy::new().rule(Rule::gauge_above("lag", "lag", 4.0, 16.0));
        let server = IntrospectServer::start("127.0.0.1:0", t.clone(), policy).unwrap();
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("demo_total 3"), "{body}");

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"state\":\"ok\""), "{body}");

        t.gauge_set("lag", 100.0);
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 503 Service Unavailable");
        assert!(body.contains("\"state\":\"failing\""), "{body}");

        let (status, body) = get(addr, "/debug/flight");
        assert_eq!(status, "HTTP/1.1 200 OK");
        let first = body.lines().next().unwrap();
        assert_eq!(Event::from_json(first).unwrap().kind(), "boot");

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, "HTTP/1.1 404 Not Found");

        server.stop();
    }

    #[test]
    fn non_get_is_rejected() {
        let t = Telemetry::with_registry();
        let server =
            IntrospectServer::start("127.0.0.1:0", t, HealthPolicy::new()).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
    }
}
