//! The flight recorder: a fixed-capacity ring of recent events.
//!
//! A [`FlightRecorder`] keeps the last `capacity` telemetry events (plus
//! span completions) in memory at all times, so that when a stage panics
//! the supervisor can dump a "what was the process doing just before the
//! crash" postmortem next to the journal — even when no JSONL sink was
//! configured.
//!
//! # Overwrite semantics
//!
//! Writers claim a slot with one `fetch_add` on the head counter and then
//! take that slot's own mutex only long enough to store the event, so
//! pushes never contend on a global lock and never block each other unless
//! the ring has wrapped all the way around within one store. Once the ring
//! is full every push overwrites the oldest slot; [`recent`] returns the
//! surviving events in push order (oldest first) by sorting on the
//! monotonically increasing sequence number stamped into each slot.
//!
//! The recorder must stay usable *during a panic*: every lock acquisition
//! tolerates poisoning (`into_inner`), so a crash while a writer held a
//! slot lock cannot make the postmortem dump itself panic.

use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Event;

/// One ring slot: `(sequence, event)`, `None` until first written.
type Slot = Mutex<Option<(u64, Event)>>;

/// A lock-free-claim, fixed-capacity ring buffer of recent [`Event`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    /// Total number of pushes ever; `head % capacity` is the next slot.
    head: AtomicU64,
}

/// Default ring capacity: enough for the last few seconds of a busy
/// pipeline without holding more than ~256 small events alive.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

impl FlightRecorder {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (including overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Appends one event, overwriting the oldest when full.
    pub fn push(&self, event: Event) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % self.slots.len() as u64) as usize;
        let mut slot = self.slots[idx]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = Some((seq, event));
    }

    /// The surviving events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        let mut entries: Vec<(u64, Event)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let guard = slot
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some((seq, event)) = guard.as_ref() {
                entries.push((*seq, event.clone()));
            }
        }
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, e)| e).collect()
    }

    /// Atomically writes the ring contents as JSON Lines to `path`
    /// (temp + fsync + rename, so a crash mid-dump never leaves a torn
    /// postmortem). Oldest event first; one JSON object per line.
    pub fn dump_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let events = self.recent();
        inf2vec_util::atomic_write(path, |f| {
            for e in &events {
                writeln!(f, "{}", e.to_json())?;
            }
            Ok(())
        })
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn kinds(ring: &FlightRecorder) -> Vec<String> {
        ring.recent().iter().map(|e| e.kind().to_string()).collect()
    }

    #[test]
    fn push_and_recent_preserve_order() {
        let ring = FlightRecorder::new(8);
        for i in 0..5 {
            ring.push(Event::new(format!("e{i}")));
        }
        assert_eq!(kinds(&ring), vec!["e0", "e1", "e2", "e3", "e4"]);
        assert_eq!(ring.pushed(), 5);
    }

    #[test]
    fn wraparound_keeps_newest() {
        let ring = FlightRecorder::new(4);
        for i in 0..10 {
            ring.push(Event::new(format!("e{i}")));
        }
        assert_eq!(kinds(&ring), vec!["e6", "e7", "e8", "e9"]);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.capacity(), 4);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = FlightRecorder::new(0);
        ring.push(Event::new("a"));
        ring.push(Event::new("b"));
        assert_eq!(kinds(&ring), vec!["b"]);
    }

    #[test]
    fn concurrent_pushes_lose_nothing_modulo_capacity() {
        let ring = Arc::new(FlightRecorder::new(1024));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..100u64 {
                        ring.push(Event::new("e").u64("t", t).u64("i", i));
                    }
                });
            }
        });
        assert_eq!(ring.pushed(), 800);
        assert_eq!(ring.recent().len(), 800);
    }

    #[test]
    fn dump_writes_parsable_jsonl() {
        let dir = std::env::temp_dir().join(format!(
            "obs_ring_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.jsonl");
        let ring = FlightRecorder::new(16);
        ring.push(Event::new("a").u64("n", 1));
        ring.push(Event::new("b").str("s", "x\"y"));
        ring.dump_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(Event::from_json(lines[0]).unwrap().kind(), "a");
        assert_eq!(
            Event::from_json(lines[1]).unwrap().get("s").unwrap().as_str(),
            Some("x\"y")
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
