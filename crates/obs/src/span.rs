//! Phase/span timing.
//!
//! A [`Span`] measures wall-clock from creation to [`finish`](Span::finish)
//! (or drop) and records the duration into the histogram
//! `<name>_seconds` of the owning [`Telemetry`](crate::Telemetry) handle.
//! On a disabled handle a span is inert: no clock read beyond creation, no
//! allocation, nothing recorded.

use std::time::Instant;

use crate::Telemetry;

/// An in-flight timed phase. Records on `finish()` or drop.
#[derive(Debug)]
pub struct Span {
    telemetry: Telemetry,
    name: &'static str,
    start: Instant,
    done: bool,
}

impl Span {
    pub(crate) fn start(telemetry: Telemetry, name: &'static str) -> Self {
        Self {
            telemetry,
            name,
            start: Instant::now(),
            done: false,
        }
    }

    /// Stops the clock, records `<name>_seconds`, and returns the elapsed
    /// seconds (measured even when telemetry is disabled, so callers can
    /// reuse the figure).
    pub fn finish(mut self) -> f64 {
        self.done = true;
        let secs = self.start.elapsed().as_secs_f64();
        self.record(secs);
        secs
    }

    fn record(&self, secs: f64) {
        if self.telemetry.enabled() {
            // Histogram names follow Prometheus convention: base unit
            // suffix, no label on the phase itself.
            let name = format!("{}_seconds", self.name);
            self.telemetry.observe(&name, secs);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            self.record(self.start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_records_into_named_histogram() {
        let t = Telemetry::with_registry();
        let span = t.span("unit_test_phase");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let secs = span.finish();
        assert!(secs >= 0.002);
        let snap = t.snapshot();
        let s = snap.get("unit_test_phase_seconds").expect("histogram");
        match &s.value {
            crate::registry::SampleValue::Histogram { count, sum, .. } => {
                assert_eq!(*count, 1);
                assert!(*sum >= 0.002);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn drop_records_too() {
        let t = Telemetry::with_registry();
        {
            let _span = t.span("drop_phase");
        }
        let snap = t.snapshot();
        assert!(snap.get("drop_phase_seconds").is_some());
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        let secs = t.span("ghost").finish();
        assert!(secs >= 0.0);
        assert!(t.snapshot().samples.is_empty());
    }

}
