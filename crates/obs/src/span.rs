//! Phase/span timing.
//!
//! A [`Span`] measures elapsed time from creation to [`finish`](Span::finish)
//! (or drop) and records the duration into the histogram
//! `<name>_seconds` of the owning [`Telemetry`](crate::Telemetry) handle.
//! Time comes from the handle's [`inf2vec_util::Clock`], so span durations
//! are deterministic under a `ManualClock` in tests; a disabled handle
//! falls back to the system clock so the returned figure is still real.
//! Completed spans also leave a `span` event in the flight ring, giving
//! postmortem dumps a record of the phases that finished just before a
//! crash.

use std::time::Duration;

use inf2vec_util::SharedClock;

use crate::{Event, Telemetry};

/// An in-flight timed phase. Records on `finish()` or drop.
#[derive(Debug)]
pub struct Span {
    telemetry: Telemetry,
    clock: SharedClock,
    name: &'static str,
    start: Duration,
    done: bool,
}

impl Span {
    pub(crate) fn start(telemetry: Telemetry, name: &'static str) -> Self {
        let clock = telemetry.clock();
        let start = clock.now();
        Self {
            telemetry,
            clock,
            name,
            start,
            done: false,
        }
    }

    /// Stops the clock, records `<name>_seconds`, and returns the elapsed
    /// seconds (measured even when telemetry is disabled, so callers can
    /// reuse the figure).
    pub fn finish(mut self) -> f64 {
        self.done = true;
        let secs = self.elapsed_secs();
        self.record(secs);
        secs
    }

    fn elapsed_secs(&self) -> f64 {
        self.clock.now().saturating_sub(self.start).as_secs_f64()
    }

    fn record(&self, secs: f64) {
        if self.telemetry.enabled() {
            // Histogram names follow Prometheus convention: base unit
            // suffix, no label on the phase itself.
            let name = format!("{}_seconds", self.name);
            self.telemetry.observe(&name, secs);
            self.telemetry
                .flight_note(Event::new("span").str("name", self.name).f64("secs", secs));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            self.record(self.elapsed_secs());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoopRecorder;
    use inf2vec_util::ManualClock;
    use std::sync::Arc;

    #[test]
    fn finish_records_into_named_histogram() {
        let t = Telemetry::with_registry();
        let span = t.span("unit_test_phase");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let secs = span.finish();
        assert!(secs >= 0.002);
        let snap = t.snapshot();
        let s = snap.get("unit_test_phase_seconds").expect("histogram");
        match &s.value {
            crate::registry::SampleValue::Histogram { count, sum, .. } => {
                assert_eq!(*count, 1);
                assert!(*sum >= 0.002);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn drop_records_too() {
        let t = Telemetry::with_registry();
        {
            let _span = t.span("drop_phase");
        }
        let snap = t.snapshot();
        assert!(snap.get("drop_phase_seconds").is_some());
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        let secs = t.span("ghost").finish();
        assert!(secs >= 0.0);
        assert!(t.snapshot().samples.is_empty());
    }

    #[test]
    fn manual_clock_makes_durations_exact() {
        let (clock, handle) = ManualClock::shared();
        let t = Telemetry::with_clock(Arc::new(NoopRecorder), clock);
        let span = t.span("clocked_phase");
        handle.advance(std::time::Duration::from_millis(750));
        let secs = span.finish();
        assert_eq!(secs, 0.75);
        let snap = t.snapshot();
        match &snap.get("clocked_phase_seconds").unwrap().value {
            crate::registry::SampleValue::Histogram { sum, count, .. } => {
                assert_eq!(*count, 1);
                assert_eq!(*sum, 0.75);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn completed_spans_leave_flight_notes() {
        let t = Telemetry::with_registry();
        t.span("noted_phase").finish();
        let events = t.flight_events();
        let note = events
            .iter()
            .find(|e| e.kind() == "span")
            .expect("span completion in flight ring");
        assert_eq!(note.get("name").and_then(|v| v.as_str()), Some("noted_phase"));
        assert!(note.get("secs").and_then(|v| v.as_f64()).is_some());
    }
}
