//! `inf2vec-obs`: zero-dependency observability for the inf2vec pipeline.
//!
//! The crate provides four layers, all reachable through one cheap handle:
//!
//! - **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]): lock-free atomic
//!   primitives safe to update from Hogwild workers.
//! - **Registry** ([`Registry`], [`Snapshot`]): named metric handles,
//!   point-in-time snapshots, Prometheus text exposition.
//! - **Events** ([`Event`], [`Recorder`], [`JsonlSink`], [`MemorySink`]):
//!   structured one-line JSON records for per-epoch / per-phase history.
//! - **Spans** ([`Span`]): wall-clock phase timers feeding `<name>_seconds`
//!   histograms.
//!
//! # The `Telemetry` handle
//!
//! [`Telemetry`] is the only type the rest of the workspace needs. It is
//! `Clone` (an `Option<Arc<..>>`), defaults to **disabled**, and every
//! operation on a disabled handle is a branch on `None` — no allocation, no
//! locking, no clock reads beyond span construction. That is what makes it
//! safe to thread through the SGNS hot path unconditionally.
//!
//! ```
//! use inf2vec_obs::{Telemetry, MemorySink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let t = Telemetry::new(Arc::clone(&sink) as Arc<dyn inf2vec_obs::Recorder>);
//!
//! t.count("inf2vec_train_pairs_total", 1200);
//! t.gauge_set("inf2vec_train_loss", 0.52);
//! t.emit(inf2vec_obs::Event::new("epoch").u64("epoch", 0).f64("loss", 0.52));
//! let secs = t.span("demo_phase").finish();
//! assert!(secs >= 0.0);
//!
//! assert_eq!(sink.len(), 1);
//! let prom = t.snapshot().to_prometheus();
//! assert!(prom.contains("inf2vec_train_loss 0.52"));
//! ```

mod event;
mod metrics;
mod recorder;
pub mod registry;
mod span;

pub use event::{Event, ParseError, Value};
pub use metrics::{Counter, Gauge, Histogram};
pub use recorder::{JsonlSink, MemorySink, NoopRecorder, Recorder};
pub use registry::{MetricSample, Registry, SampleValue, Snapshot};
pub use span::Span;

use std::sync::Arc;

struct Inner {
    registry: Registry,
    recorder: Arc<dyn Recorder>,
}

/// The cheap, cloneable entry point to metrics, events, and spans.
///
/// Disabled by default ([`Telemetry::disabled`], also `Default`): every
/// method is then a no-op costing one `Option` branch. Enable with
/// [`Telemetry::new`] (events go to the given [`Recorder`]) or
/// [`Telemetry::with_registry`] (metrics only, events dropped).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Telemetry {
    /// The disabled handle: records nothing, costs nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle sending events to `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                registry: Registry::new(),
                recorder,
            })),
        }
    }

    /// An enabled handle with metrics only; events are dropped.
    pub fn with_registry() -> Self {
        Self::new(Arc::new(NoopRecorder))
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metric registry, if enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// Sends one structured event to the recorder.
    #[inline]
    pub fn emit(&self, event: Event) {
        if let Some(inner) = &self.inner {
            inner.recorder.record(event);
        }
    }

    /// Adds `n` to the counter `name`.
    #[inline]
    pub fn count(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name, &[]).add(n);
        }
    }

    /// Adds `n` to the counter `name` with labels.
    #[inline]
    pub fn count_with(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name, labels).add(n);
        }
    }

    /// Sets the gauge `name` to `v`.
    #[inline]
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name, &[]).set(v);
        }
    }

    /// Records `v` into the histogram `name` (default latency buckets).
    #[inline]
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.histogram(name, &[]).observe(v);
        }
    }

    /// Records `v` into the histogram `name` with labels.
    #[inline]
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.histogram(name, labels).observe(v);
        }
    }

    /// Starts a timed span; its duration lands in `<name>_seconds`.
    pub fn span(&self, name: &'static str) -> Span {
        Span::start(self.clone(), name)
    }

    /// Times `f`, recording into `<name>_seconds`, and returns its result.
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let span = self.span(name);
        let out = f();
        span.finish();
        out
    }

    /// Flushes the recorder (e.g. the JSONL buffer).
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.inner {
            Some(inner) => inner.recorder.flush(),
            None => Ok(()),
        }
    }

    /// Freezes current metric values ([`Snapshot::default`] when disabled).
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            Some(inner) => inner.registry.snapshot(),
            None => Snapshot::default(),
        }
    }

    /// Renders the Prometheus text exposition of the current metrics.
    pub fn prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.count("c_total", 5);
        t.gauge_set("g", 1.0);
        t.observe("h_seconds", 0.1);
        t.emit(Event::new("e"));
        assert!(t.registry().is_none());
        assert!(t.snapshot().samples.is_empty());
        assert_eq!(t.prometheus(), "");
        t.flush().unwrap();
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().enabled());
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::with_registry();
        let t2 = t.clone();
        t.count("shared_total", 1);
        t2.count("shared_total", 2);
        match &t.snapshot().get("shared_total").unwrap().value {
            SampleValue::Counter(v) => assert_eq!(*v, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn events_reach_the_recorder() {
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::new(Arc::clone(&sink) as Arc<dyn Recorder>);
        t.emit(Event::new("a").u64("n", 1));
        t.emit(Event::new("b"));
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "a");
    }

    #[test]
    fn time_records_and_returns() {
        let t = Telemetry::with_registry();
        let out = t.time("timed", || 42);
        assert_eq!(out, 42);
        assert!(t.snapshot().get("timed_seconds").is_some());
    }
}
