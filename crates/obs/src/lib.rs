//! `inf2vec-obs`: observability for the inf2vec pipeline.
//!
//! The crate provides seven layers, all reachable through one cheap handle:
//!
//! - **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]): lock-free atomic
//!   primitives safe to update from Hogwild workers.
//! - **Registry** ([`Registry`], [`Snapshot`]): named metric handles,
//!   point-in-time snapshots, Prometheus text exposition.
//! - **Events** ([`Event`], [`Recorder`], [`JsonlSink`], [`MemorySink`]):
//!   structured one-line JSON records for per-epoch / per-phase history.
//! - **Spans** ([`Span`]): phase timers feeding `<name>_seconds`
//!   histograms, clocked through [`inf2vec_util::Clock`].
//! - **Tracing** ([`TraceCtx`]): deterministic trace/span ids linking the
//!   events of one record / episode / publish into a causal chain.
//! - **Flight recorder** ([`FlightRecorder`]): an always-on ring of the
//!   most recent events, dumpable as a crash postmortem.
//! - **Introspection** ([`IntrospectServer`], [`HealthPolicy`]): a
//!   `std::net` HTTP thread serving `/metrics`, `/healthz` (windowed-rate
//!   health rules), and `/debug/flight`.
//!
//! The only dependency is the workspace's own `inf2vec-util` (clock,
//! seed-splitting, atomic file writes); nothing external.
//!
//! # The `Telemetry` handle
//!
//! [`Telemetry`] is the only type the rest of the workspace needs. It is
//! `Clone` (an `Option<Arc<..>>`), defaults to **disabled**, and every
//! operation on a disabled handle is a branch on `None` — no allocation, no
//! locking, no clock reads beyond span construction. That is what makes it
//! safe to thread through the SGNS hot path unconditionally.
//!
//! ```
//! use inf2vec_obs::{Telemetry, MemorySink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let t = Telemetry::new(Arc::clone(&sink) as Arc<dyn inf2vec_obs::Recorder>);
//!
//! t.count("inf2vec_train_pairs_total", 1200);
//! t.gauge_set("inf2vec_train_loss", 0.52);
//! t.emit(inf2vec_obs::Event::new("epoch").u64("epoch", 0).f64("loss", 0.52));
//! let secs = t.span("demo_phase").finish();
//! assert!(secs >= 0.0);
//!
//! assert_eq!(sink.len(), 1);
//! let prom = t.snapshot().to_prometheus();
//! assert!(prom.contains("inf2vec_train_loss 0.52"));
//! // Every emitted event (and completed span) is also in the flight ring.
//! assert!(t.flight_events().iter().any(|e| e.kind() == "epoch"));
//! ```

mod event;
pub mod health;
pub mod http;
pub mod http1;
mod metrics;
mod recorder;
pub mod registry;
mod ring;
mod span;
pub mod trace;

pub use event::{Event, ParseError, Value};
pub use health::{Check, HealthEvaluator, HealthPolicy, HealthReport, HealthState, Rule, Signal};
pub use http::IntrospectServer;
pub use http1::{Connection, Head, Http1Config, IdleBackoff, ReadError, Request};
pub use metrics::{Counter, Gauge, Histogram};
pub use recorder::{JsonlSink, MemorySink, NoopRecorder, Recorder, TeeRecorder};
pub use registry::{MetricSample, Registry, SampleValue, Snapshot, DROPPED_OBSERVATIONS_METRIC};
pub use ring::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use span::Span;
pub use trace::TraceCtx;

use inf2vec_util::{system_clock, SharedClock};
use std::path::Path;
use std::sync::Arc;

/// Name of the synthetic counter counting recorder write errors.
pub const RECORDER_ERRORS_METRIC: &str = "inf2vec_obs_recorder_errors_total";

struct Inner {
    registry: Arc<Registry>,
    recorder: Arc<dyn Recorder>,
    clock: SharedClock,
    flight: Arc<FlightRecorder>,
}

/// The cheap, cloneable entry point to metrics, events, spans, and the
/// flight recorder.
///
/// Disabled by default ([`Telemetry::disabled`], also `Default`): every
/// method is then a no-op costing one `Option` branch. Enable with
/// [`Telemetry::new`] (events go to the given [`Recorder`]) or
/// [`Telemetry::with_registry`] (metrics only, events dropped); both use
/// the system clock and the default flight-ring capacity — use
/// [`Telemetry::with_clock`] / [`Telemetry::configured`] to override.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Telemetry {
    /// The disabled handle: records nothing, costs nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle sending events to `recorder` (system clock,
    /// default flight-ring capacity).
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Self::configured(recorder, system_clock(), DEFAULT_FLIGHT_CAPACITY)
    }

    /// An enabled handle with an explicit clock (used by spans, event
    /// timestamps in the flight ring, and `/healthz` windows).
    pub fn with_clock(recorder: Arc<dyn Recorder>, clock: SharedClock) -> Self {
        Self::configured(recorder, clock, DEFAULT_FLIGHT_CAPACITY)
    }

    /// The fully explicit constructor: recorder, clock, and flight-ring
    /// capacity.
    pub fn configured(
        recorder: Arc<dyn Recorder>,
        clock: SharedClock,
        flight_capacity: usize,
    ) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                registry: Arc::new(Registry::new()),
                recorder,
                clock,
                flight: Arc::new(FlightRecorder::new(flight_capacity)),
            })),
        }
    }

    /// A handle sharing this one's registry, clock, and flight ring but
    /// sending events to `recorder` instead — e.g. to tee a harness's
    /// memory sink alongside the caller's recorder without splitting the
    /// metrics. Forking a disabled handle yields a fresh enabled one.
    pub fn fork_recorder(&self, recorder: Arc<dyn Recorder>) -> Telemetry {
        match &self.inner {
            Some(inner) => Telemetry {
                inner: Some(Arc::new(Inner {
                    registry: Arc::clone(&inner.registry),
                    recorder,
                    clock: Arc::clone(&inner.clock),
                    flight: Arc::clone(&inner.flight),
                })),
            },
            None => Telemetry::new(recorder),
        }
    }

    /// An enabled handle with metrics only; events are dropped (but still
    /// retained by the flight ring for postmortems).
    pub fn with_registry() -> Self {
        Self::new(Arc::new(NoopRecorder))
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metric registry, if enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &*i.registry)
    }

    /// The event recorder, if enabled.
    pub fn recorder(&self) -> Option<Arc<dyn Recorder>> {
        self.inner.as_deref().map(|i| Arc::clone(&i.recorder))
    }

    /// This handle's clock (the system clock when disabled, so spans on a
    /// disabled handle still measure real time).
    pub fn clock(&self) -> SharedClock {
        match &self.inner {
            Some(inner) => Arc::clone(&inner.clock),
            None => system_clock(),
        }
    }

    /// Sends one structured event to the recorder and the flight ring.
    #[inline]
    pub fn emit(&self, event: Event) {
        if let Some(inner) = &self.inner {
            let t_ms = inner.clock.now().as_millis() as u64;
            inner.flight.push(event.clone().u64("t_ms", t_ms));
            inner.recorder.record(event);
        }
    }

    /// Like [`emit`](Self::emit) but builds the event lazily, so a
    /// disabled handle pays one branch and zero allocation. Use on hot
    /// paths (per-record tracing).
    #[inline]
    pub fn emit_with(&self, build: impl FnOnce() -> Event) {
        if self.inner.is_some() {
            self.emit(build());
        }
    }

    /// Pushes an event into the flight ring only (not the recorder).
    /// Span completions use this so postmortems show recent phase ends
    /// without flooding the JSONL history.
    #[inline]
    pub(crate) fn flight_note(&self, event: Event) {
        if let Some(inner) = &self.inner {
            let t_ms = inner.clock.now().as_millis() as u64;
            inner.flight.push(event.u64("t_ms", t_ms));
        }
    }

    /// The flight ring's surviving events, oldest first (empty when
    /// disabled).
    pub fn flight_events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.flight.recent(),
            None => Vec::new(),
        }
    }

    /// The flight recorder itself, if enabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.inner.as_deref().map(|i| &*i.flight)
    }

    /// Atomically dumps the flight ring as JSONL to `path`. Returns
    /// `Ok(true)` when a dump was written, `Ok(false)` on a disabled
    /// handle.
    pub fn dump_flight(&self, path: &Path) -> std::io::Result<bool> {
        match &self.inner {
            Some(inner) => inner.flight.dump_jsonl(path).map(|()| true),
            None => Ok(false),
        }
    }

    /// Adds `n` to the counter `name`.
    #[inline]
    pub fn count(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name, &[]).add(n);
        }
    }

    /// Adds `n` to the counter `name` with labels.
    #[inline]
    pub fn count_with(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name, labels).add(n);
        }
    }

    /// Sets the gauge `name` to `v`.
    #[inline]
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name, &[]).set(v);
        }
    }

    /// Records `v` into the histogram `name` (default latency buckets).
    #[inline]
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.histogram(name, &[]).observe(v);
        }
    }

    /// Records `v` into the histogram `name` with labels.
    #[inline]
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.histogram(name, labels).observe(v);
        }
    }

    /// Starts a timed span; its duration lands in `<name>_seconds`.
    pub fn span(&self, name: &'static str) -> Span {
        Span::start(self.clone(), name)
    }

    /// Times `f`, recording into `<name>_seconds`, and returns its result.
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let span = self.span(name);
        let out = f();
        span.finish();
        out
    }

    /// Flushes the recorder (e.g. the JSONL buffer).
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.inner {
            Some(inner) => inner.recorder.flush(),
            None => Ok(()),
        }
    }

    /// How many event writes the recorder has failed so far.
    pub fn recorder_errors(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.recorder.error_count(),
            None => 0,
        }
    }

    /// Freezes current metric values ([`Snapshot::default`] when disabled).
    ///
    /// Recorder write errors, when any occurred, appear as the synthetic
    /// counter [`RECORDER_ERRORS_METRIC`] alongside the registry's own
    /// samples (which themselves include the dropped-observations counter,
    /// see [`Registry::snapshot`]).
    pub fn snapshot(&self) -> Snapshot {
        match &self.inner {
            Some(inner) => {
                let mut snap = inner.registry.snapshot();
                let errors = inner.recorder.error_count();
                if errors > 0 {
                    snap.insert_sorted(MetricSample {
                        name: RECORDER_ERRORS_METRIC.to_string(),
                        labels: Vec::new(),
                        value: SampleValue::Counter(errors),
                    });
                }
                snap
            }
            None => Snapshot::default(),
        }
    }

    /// Renders the Prometheus text exposition of the current metrics.
    pub fn prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inf2vec_util::ManualClock;
    use std::time::Duration;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.count("c_total", 5);
        t.gauge_set("g", 1.0);
        t.observe("h_seconds", 0.1);
        t.emit(Event::new("e"));
        t.emit_with(|| unreachable!("closure must not run when disabled"));
        assert!(t.registry().is_none());
        assert!(t.recorder().is_none());
        assert!(t.flight().is_none());
        assert!(t.flight_events().is_empty());
        assert!(t.snapshot().samples.is_empty());
        assert_eq!(t.prometheus(), "");
        assert_eq!(t.recorder_errors(), 0);
        t.flush().unwrap();
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().enabled());
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::with_registry();
        let t2 = t.clone();
        t.count("shared_total", 1);
        t2.count("shared_total", 2);
        match &t.snapshot().get("shared_total").unwrap().value {
            SampleValue::Counter(v) => assert_eq!(*v, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn events_reach_the_recorder() {
        let sink = Arc::new(MemorySink::new());
        let t = Telemetry::new(Arc::clone(&sink) as Arc<dyn Recorder>);
        t.emit(Event::new("a").u64("n", 1));
        t.emit(Event::new("b"));
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "a");
    }

    #[test]
    fn time_records_and_returns() {
        let t = Telemetry::with_registry();
        let out = t.time("timed", || 42);
        assert_eq!(out, 42);
        assert!(t.snapshot().get("timed_seconds").is_some());
    }

    #[test]
    fn emitted_events_land_in_flight_ring_with_t_ms() {
        let (clock, handle) = ManualClock::shared();
        let t = Telemetry::with_clock(Arc::new(NoopRecorder), clock);
        handle.advance(Duration::from_millis(1234));
        t.emit(Event::new("tick"));
        let events = t.flight_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind(), "tick");
        assert_eq!(events[0].get("t_ms").and_then(|v| v.as_u64()), Some(1234));
        // The recorder copy (dropped by Noop here) is unstamped; the ring
        // copy carries the dump timestamp.
        assert!(t.flight().unwrap().pushed() >= 1);
    }

    #[test]
    fn dump_flight_writes_postmortem() {
        let dir = std::env::temp_dir().join(format!("obs_dump_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.jsonl");
        let t = Telemetry::with_registry();
        t.emit(Event::new("before_crash").u64("n", 7));
        assert!(t.dump_flight(&path).unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("before_crash"), "{text}");
        assert!(!Telemetry::disabled().dump_flight(&path).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorder_errors_surface_as_metric() {
        struct FailingWriter;
        impl std::io::Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = Arc::new(JsonlSink::to_writer(FailingWriter));
        let t = Telemetry::new(sink as Arc<dyn Recorder>);
        // Overflow the BufWriter so the failure is observed synchronously.
        let big = "x".repeat(16 * 1024);
        t.emit(Event::new("big").str("pad", big));
        t.emit(Event::new("small"));
        assert!(t.recorder_errors() > 0);
        let snap = t.snapshot();
        assert_eq!(
            snap.counter_value(RECORDER_ERRORS_METRIC, &[]),
            t.recorder_errors()
        );
        let prom = snap.to_prometheus();
        assert!(prom.contains(RECORDER_ERRORS_METRIC), "{prom}");
        // The synthetic sample keeps name ordering intact.
        let names: Vec<&str> = snap.samples.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
