//! Shared zero-dependency HTTP/1.1 plumbing over `std::net`.
//!
//! Both HTTP surfaces in the workspace — the diagnostics
//! [`IntrospectServer`](crate::IntrospectServer) and the scoring
//! front-end in `inf2vec-serve` — speak the same small subset of
//! HTTP/1.1, and this module is the single implementation of it:
//!
//! - [`Connection::read_request`] reads one request (head + optional
//!   `Content-Length` body) with hard byte caps on both, surviving torn
//!   writes, pipelined requests, and arbitrary garbage without panicking.
//! - [`Connection::respond`] writes a well-formed response with an
//!   explicit `Connection: keep-alive`/`close` header.
//! - [`ReadError`] is the typed failure surface; [`ReadError::status`]
//!   maps each variant onto the HTTP status the peer should see
//!   (`400` malformed, `413` over cap, `501` unsupported framing).
//!
//! Parsing is split out as the pure function [`parse_head`] so the
//! grammar is testable without sockets. The subset is deliberate: no
//! chunked transfer encoding (rejected with `501`), no continuation
//! lines, ASCII-case-insensitive header names only where required
//! (`Content-Length`, `Connection`, `Transfer-Encoding`).

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Byte/timeout budget for one connection.
#[derive(Debug, Clone)]
pub struct Http1Config {
    /// Cap on the request head (request line + headers + blank line).
    pub max_head_bytes: usize,
    /// Cap on the declared `Content-Length` body.
    pub max_body_bytes: usize,
    /// Socket read timeout; a quiet keep-alive connection surfaces
    /// [`ReadError::Timeout`] after this long so the caller can close it.
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
}

impl Default for Http1Config {
    fn default() -> Self {
        Self {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 256 * 1024,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(2),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
    /// Whether the peer asked to keep the connection open (HTTP/1.1
    /// default, overridable either way with a `Connection` header).
    pub keep_alive: bool,
}

/// Why a request could not be read. [`status`](Self::status) gives the
/// HTTP status a server should answer with before closing.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF on a request boundary — the peer is done; not an error
    /// worth answering.
    Closed,
    /// The socket read timed out waiting for (more of) a request.
    Timeout,
    /// EOF or I/O failure in the middle of a request (torn request).
    Torn,
    /// The head grew past [`Http1Config::max_head_bytes`] without
    /// terminating.
    HeadTooLarge(usize),
    /// Declared `Content-Length` exceeds [`Http1Config::max_body_bytes`].
    BodyTooLarge(u64),
    /// The bytes do not parse as the supported HTTP/1.1 subset.
    Malformed(&'static str),
    /// Valid HTTP, but framing we refuse (e.g. chunked transfer coding).
    Unsupported(&'static str),
    /// Transport error other than timeout/EOF.
    Io(std::io::Error),
}

impl ReadError {
    /// The status line to answer with, or `None` when no answer is owed
    /// (clean close / idle timeout / transport already gone).
    pub fn status(&self) -> Option<&'static str> {
        match self {
            ReadError::Closed | ReadError::Timeout | ReadError::Torn | ReadError::Io(_) => None,
            ReadError::HeadTooLarge(_) => Some("431 Request Header Fields Too Large"),
            ReadError::BodyTooLarge(_) => Some("413 Content Too Large"),
            ReadError::Malformed(_) => Some("400 Bad Request"),
            ReadError::Unsupported(_) => Some("501 Not Implemented"),
        }
    }
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed"),
            ReadError::Timeout => write!(f, "read timed out"),
            ReadError::Torn => write!(f, "connection closed mid-request"),
            ReadError::HeadTooLarge(cap) => write!(f, "request head exceeds {cap} bytes"),
            ReadError::BodyTooLarge(n) => write!(f, "declared body of {n} bytes exceeds cap"),
            ReadError::Malformed(why) => write!(f, "malformed request: {why}"),
            ReadError::Unsupported(why) => write!(f, "unsupported request: {why}"),
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Request line + the headers this subset cares about; what
/// [`parse_head`] extracts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    pub method: String,
    pub path: String,
    pub content_length: u64,
    pub keep_alive: bool,
}

/// Parses a complete request head (everything before the blank line,
/// excluding the terminator itself). Pure, for direct testing.
pub fn parse_head(head: &[u8]) -> Result<Head, ReadError> {
    let text = std::str::from_utf8(head).map_err(|_| ReadError::Malformed("head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ReadError::Malformed("bad method token"));
    }
    if path.is_empty() || !path.starts_with('/') {
        return Err(ReadError::Malformed("bad request path"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ReadError::Malformed("bad HTTP version")),
    };
    if parts.next().is_some() {
        return Err(ReadError::Malformed("extra tokens on request line"));
    }

    let mut content_length: u64 = 0;
    let mut keep_alive = http11; // HTTP/1.1 defaults to keep-alive.
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ReadError::Malformed("header line without ':'"))?;
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<u64>()
                .map_err(|_| ReadError::Malformed("unparseable Content-Length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ReadError::Unsupported("chunked transfer coding"));
        }
    }
    Ok(Head {
        method: method.to_string(),
        path: path.to_string(),
        content_length,
        keep_alive,
    })
}

/// One TCP connection with a carry-over buffer, so pipelined requests
/// and bodies that arrive fused with the next head are not lost between
/// [`read_request`](Self::read_request) calls.
pub struct Connection {
    stream: TcpStream,
    buf: Vec<u8>,
    cfg: Http1Config,
}

impl Connection {
    /// Wraps `stream`, applying the config's socket timeouts.
    pub fn new(stream: TcpStream, cfg: Http1Config) -> std::io::Result<Self> {
        stream.set_read_timeout(Some(cfg.read_timeout))?;
        stream.set_write_timeout(Some(cfg.write_timeout))?;
        // Request/response exchanges are small; Nagle + delayed ACK
        // would add tens of milliseconds to every keep-alive round trip.
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: Vec::with_capacity(1024),
            cfg,
        })
    }

    /// The peer address, if still known.
    pub fn peer_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.stream.peer_addr()
    }

    /// Reads the next request off the connection. On any `Err` the
    /// connection should be answered per [`ReadError::status`] (when
    /// `Some`) and closed — the buffer may hold half a request.
    pub fn read_request(&mut self) -> Result<Request, ReadError> {
        let head_end = loop {
            if let Some(pos) = find_terminator(&self.buf) {
                break pos;
            }
            if self.buf.len() > self.cfg.max_head_bytes {
                return Err(ReadError::HeadTooLarge(self.cfg.max_head_bytes));
            }
            let at_boundary = self.buf.is_empty();
            self.fill(at_boundary)?;
        };
        let head = parse_head(&self.buf[..head_end])?;
        let body_start = head_end + 4; // past "\r\n\r\n"
        if head.content_length > self.cfg.max_body_bytes as u64 {
            return Err(ReadError::BodyTooLarge(head.content_length));
        }
        let body_len = head.content_length as usize;
        while self.buf.len() < body_start + body_len {
            self.fill(false)?;
        }
        let body = self.buf[body_start..body_start + body_len].to_vec();
        self.buf.drain(..body_start + body_len);
        Ok(Request {
            method: head.method,
            path: head.path,
            body,
            keep_alive: head.keep_alive,
        })
    }

    /// Reads more bytes into the carry-over buffer. `at_boundary` is
    /// true when no partial request is buffered, which makes EOF a
    /// clean [`ReadError::Closed`] rather than [`ReadError::Torn`].
    fn fill(&mut self, at_boundary: bool) -> Result<(), ReadError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Err(if at_boundary {
                ReadError::Closed
            } else {
                ReadError::Torn
            }),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Err(ReadError::Timeout)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(ReadError::Io(e)),
        }
    }

    /// Writes one response. `status` is the full status phrase
    /// (e.g. `"200 OK"`).
    pub fn respond(
        &mut self,
        status: &str,
        content_type: &str,
        body: &[u8],
        keep_alive: bool,
    ) -> std::io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let head = format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }
}

/// Position of the `\r\n\r\n` head terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Exponential idle backoff for non-blocking accept loops: sleeps a
/// doubling interval between empty polls so an idle listener costs a
/// handful of wake-ups per second instead of fifty, while a busy one
/// resets to the floor and stays responsive.
#[derive(Debug)]
pub struct IdleBackoff {
    floor: Duration,
    ceiling: Duration,
    current: Duration,
}

impl IdleBackoff {
    /// Backoff ramping from `floor` to `ceiling` (both clamped sane).
    pub fn new(floor: Duration, ceiling: Duration) -> Self {
        let floor = floor.max(Duration::from_micros(100));
        let ceiling = ceiling.max(floor);
        Self {
            floor,
            ceiling,
            current: floor,
        }
    }

    /// Default ramp: 1ms → 50ms.
    pub fn for_accept_loop() -> Self {
        Self::new(Duration::from_millis(1), Duration::from_millis(50))
    }

    /// Sleeps the current interval, then doubles it toward the ceiling.
    pub fn idle(&mut self) {
        std::thread::sleep(self.current);
        self.current = (self.current * 2).min(self.ceiling);
    }

    /// Resets to the floor; call after useful work (an accepted
    /// connection).
    pub fn reset(&mut self) {
        self.current = self.floor;
    }

    /// The next sleep interval (for tests).
    pub fn current(&self) -> Duration {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parse_head_minimal_get() {
        let h = parse_head(b"GET /metrics HTTP/1.1\r\nHost: x").unwrap();
        assert_eq!(h.method, "GET");
        assert_eq!(h.path, "/metrics");
        assert_eq!(h.content_length, 0);
        assert!(h.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parse_head_connection_and_length() {
        let h = parse_head(
            b"POST /v1/rank HTTP/1.1\r\nContent-Length: 42\r\nConnection: close",
        )
        .unwrap();
        assert_eq!(h.content_length, 42);
        assert!(!h.keep_alive);
        let h = parse_head(b"GET / HTTP/1.0\r\nHost: x").unwrap();
        assert!(!h.keep_alive, "HTTP/1.0 defaults to close");
        let h = parse_head(b"GET / HTTP/1.0\r\nConnection: Keep-Alive").unwrap();
        assert!(h.keep_alive);
    }

    #[test]
    fn parse_head_rejects_garbage() {
        for bad in [
            &b"GET"[..],
            b"GET /",
            b"GET / HTTP/2",
            b"get / HTTP/1.1",
            b"GET x HTTP/1.1",
            b"GET / HTTP/1.1 extra",
            b"GET / HTTP/1.1\r\nno-colon-here",
            b"GET / HTTP/1.1\r\nContent-Length: potato",
            b"\xff\xfe\x00\x01",
            b"",
        ] {
            assert!(parse_head(bad).is_err(), "accepted {bad:?}");
        }
        assert!(matches!(
            parse_head(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked"),
            Err(ReadError::Unsupported(_))
        ));
    }

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn reads_pipelined_requests_and_bodies() {
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, Http1Config::default()).unwrap();
        client
            .write_all(
                b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /b HTTP/1.1\r\n\r\n",
            )
            .unwrap();
        let r1 = conn.read_request().unwrap();
        assert_eq!((r1.method.as_str(), r1.path.as_str()), ("POST", "/a"));
        assert_eq!(r1.body, b"abc");
        let r2 = conn.read_request().unwrap();
        assert_eq!((r2.method.as_str(), r2.path.as_str()), ("GET", "/b"));
        assert!(r2.body.is_empty());
        drop(client);
        assert!(matches!(conn.read_request(), Err(ReadError::Closed)));
    }

    #[test]
    fn torn_request_is_not_a_clean_close() {
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, Http1Config::default()).unwrap();
        client.write_all(b"POST /a HTTP/1.1\r\nContent-Le").unwrap();
        drop(client);
        assert!(matches!(conn.read_request(), Err(ReadError::Torn)));
    }

    #[test]
    fn head_and_body_caps_are_enforced() {
        let (mut client, server) = pair();
        let cfg = Http1Config {
            max_head_bytes: 64,
            max_body_bytes: 16,
            ..Http1Config::default()
        };
        let mut conn = Connection::new(server, cfg.clone()).unwrap();
        client.write_all(&vec![b'A'; 200]).unwrap();
        assert!(matches!(conn.read_request(), Err(ReadError::HeadTooLarge(64))));

        let (mut client, server) = pair();
        let mut conn = Connection::new(server, cfg).unwrap();
        client
            .write_all(b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n")
            .unwrap();
        assert!(matches!(conn.read_request(), Err(ReadError::BodyTooLarge(999))));
    }

    #[test]
    fn respond_writes_full_response() {
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, Http1Config::default()).unwrap();
        conn.respond("200 OK", "text/plain", b"hello", false).unwrap();
        drop(conn);
        let mut out = String::new();
        client.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.contains("Content-Length: 5\r\n"), "{out}");
        assert!(out.contains("Connection: close\r\n"), "{out}");
        assert!(out.ends_with("\r\n\r\nhello"), "{out}");
    }

    #[test]
    fn idle_backoff_ramps_and_resets() {
        let mut b = IdleBackoff::new(Duration::from_micros(100), Duration::from_micros(800));
        assert_eq!(b.current(), Duration::from_micros(100));
        b.idle();
        b.idle();
        b.idle();
        b.idle();
        assert_eq!(b.current(), Duration::from_micros(800), "clamped at ceiling");
        b.reset();
        assert_eq!(b.current(), Duration::from_micros(100));
    }
}
