//! Lock-free metric primitives: counters, gauges, and fixed-bucket
//! histograms.
//!
//! All three update through atomics only, so any number of Hogwild workers
//! can bump the same handle without synchronization. Reads (`get`, `sum`,
//! quantiles) are racy-but-consistent-enough snapshots — exactly what a
//! metrics scrape wants. Exact totals are still guaranteed: every update is
//! a single atomic RMW, so no increment is ever lost (the concurrency tests
//! assert N threads × M updates sum exactly).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins instantaneous measurement (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self(AtomicU64::new(0.0f64.to_bits()))
    }
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` (CAS loop; used for accumulating gauges).
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram with Prometheus-compatible semantics.
///
/// `bounds` are inclusive upper bucket edges in ascending order; one
/// implicit `+Inf` overflow bucket catches the rest. Designed for
/// non-negative measurements (durations, sizes): quantile interpolation
/// treats the first bucket's lower edge as 0. Non-finite observations are
/// dropped.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    dropped: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending, finite bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, unsorted, or contains non-finite values.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.iter().all(|b| b.is_finite()) && bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be finite and strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: bounds.into_boxed_slice(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            dropped: AtomicU64::new(0),
        }
    }

    /// `n` exponential bounds `start, start·factor, start·factor², …`.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n > 0, "bad exponential spec");
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Self::new(bounds)
    }

    /// The default latency layout: 10 µs to ~84 s in ×2 steps — covers an
    /// SGNS epoch, a checkpoint fsync (~10 ms), and a full evaluation pass.
    pub fn default_seconds() -> Self {
        Self::exponential(1e-5, 2.0, 24)
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            // Not silently: dropped observations are counted and surfaced
            // by the registry as `inf2vec_obs_dropped_observations_total`.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // First bucket whose inclusive upper edge holds v; the slice is
        // sorted, so partition_point gives the Prometheus `le` bucket.
        let i = self.bounds.partition_point(|&b| b < v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[inline]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// How many non-finite observations were rejected.
    #[inline]
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The bucket upper edges (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (non-cumulative), including the `+Inf` overflow
    /// bucket as the last entry.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates the `q`-quantile (`q ∈ [0, 1]`) by linear interpolation
    /// inside the owning bucket, Prometheus `histogram_quantile` style.
    ///
    /// Returns `NaN` when empty. Values in the overflow bucket clamp to the
    /// largest finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0.0;
        for (i, &c) in counts.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                if i == self.bounds.len() {
                    // Overflow bucket: no finite upper edge to interpolate to.
                    return *self.bounds.last().expect("bounds are non-empty");
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let frac = ((target - cum) / c as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * frac;
            }
            cum = next;
        }
        *self.bounds.last().expect("bounds are non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn concurrent_counter_updates_sum_exactly() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn concurrent_histogram_updates_sum_exactly() {
        let h = Arc::new(Histogram::exponential(1.0, 2.0, 8));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.observe(((t * 10_000 + i) % 100) as f64);
                    }
                });
            }
        });
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 80_000);
        // Sum of 0..100 repeated 800 times, accumulated with CAS: exact,
        // since every addend is an integer well inside f64 precision.
        assert_eq!(h.sum(), 800.0 * (0..100).sum::<u64>() as f64);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_edges() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0] {
            h.observe(v);
        }
        // le=1: {0.5, 1.0}; le=2: {1.5, 2.0}; le=4: {3.0, 4.0}; +Inf: {9.0}
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 1]);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_drops_non_finite() {
        let h = Histogram::new(vec![1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.dropped_count(), 2);
        h.observe(0.5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.dropped_count(), 2);
    }

    #[test]
    fn quantiles_on_uniform_distribution() {
        // 1000 samples uniform over (0, 10] into 10 equal buckets: the
        // interpolated quantiles land within one bucket width of truth.
        let h = Histogram::new((1..=10).map(|i| i as f64).collect());
        for i in 0..1000 {
            h.observe((i % 1000) as f64 / 100.0 + 0.005);
        }
        for (q, expect) in [(0.1, 1.0), (0.5, 5.0), (0.9, 9.0)] {
            let got = h.quantile(q);
            assert!(
                (got - expect).abs() <= 1.0,
                "q{q}: got {got}, expected ≈{expect}"
            );
        }
        assert_eq!(h.quantile(1.0), 10.0);
    }

    #[test]
    fn quantile_of_point_mass_is_its_bucket() {
        let h = Histogram::new(vec![0.001, 0.01, 0.1, 1.0]);
        for _ in 0..100 {
            h.observe(0.009); // all in the le=0.01 bucket
        }
        let med = h.quantile(0.5);
        assert!(
            (0.001..=0.01).contains(&med),
            "median {med} escaped the owning bucket"
        );
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::new(vec![1.0, 2.0]);
        assert!(h.quantile(0.5).is_nan(), "empty histogram");
        h.observe(100.0); // overflow bucket
        assert_eq!(h.quantile(0.5), 2.0, "overflow clamps to the last bound");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(vec![2.0, 1.0]);
    }
}
