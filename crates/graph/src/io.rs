//! Plain-text edge-list serialization.
//!
//! Format: one `source<TAB>target` pair per line, `#`-prefixed comment lines
//! allowed, plus an optional `# nodes: N` header to preserve isolated nodes.
//! This mirrors the SNAP convention the paper's datasets ship in, so real
//! Digg/Flickr edge lists can be dropped in unchanged.

use std::io::{BufRead, Write};

use crate::builder::GraphBuilder;
use crate::csr::DiGraph;
use crate::node::NodeId;

/// Errors raised while parsing an edge-list stream.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor a `u<TAB>v` pair.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "I/O error: {e}"),
            GraphIoError::Malformed { line, content } => {
                write!(f, "malformed edge list at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            GraphIoError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Writes `graph` as an edge list.
pub fn write_edge_list<W: Write>(graph: &DiGraph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# nodes: {}", graph.node_count())?;
    writeln!(w, "# edges: {}", graph.edge_count())?;
    for (u, v) in graph.edges() {
        writeln!(w, "{}\t{}", u.0, v.0)?;
    }
    Ok(())
}

/// Parses an edge list written by [`write_edge_list`] (or any SNAP-style
/// whitespace-separated pair list).
pub fn read_edge_list<R: BufRead>(r: R) -> Result<DiGraph, GraphIoError> {
    let mut b = GraphBuilder::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        // `trim` already eats CR (CRLF endings) and stray whitespace; a
        // UTF-8 BOM on the first line is the other Windows-export artifact.
        let line = if idx == 0 {
            line.trim_start_matches('\u{feff}')
        } else {
            line.as_str()
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            // Honor the node-count header so isolated nodes survive.
            if let Some(n) = rest.trim().strip_prefix("nodes:") {
                if let Ok(n) = n.trim().parse::<u32>() {
                    let grown = GraphBuilder::with_nodes(n.max(b.node_count()));
                    let edges_so_far = std::mem::take(&mut b);
                    b = merge(grown, edges_so_far);
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (u, v) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(v), None) => (u, v),
            _ => {
                return Err(GraphIoError::Malformed {
                    line: idx + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        let parse = |s: &str| -> Result<u32, GraphIoError> {
            s.parse().map_err(|_| GraphIoError::Malformed {
                line: idx + 1,
                content: trimmed.to_string(),
            })
        };
        b.add_edge(NodeId(parse(u)?), NodeId(parse(v)?));
    }
    Ok(b.build())
}

/// Re-adds `src`'s edges into `dst` (used when a `# nodes:` header arrives
/// after edges have already been parsed).
fn merge(mut dst: GraphBuilder, src: GraphBuilder) -> GraphBuilder {
    // GraphBuilder has no edge iterator by design (edges are private until
    // build); reconstruct through the built graph. Header-after-edges is a
    // cold path only hit by hand-edited files.
    let g = src.build();
    dst.reserve_edges(g.edge_count());
    for (u, v) in g.edges() {
        dst.add_edge(u, v);
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> DiGraph {
        let mut b = GraphBuilder::with_nodes(6);
        for (u, v) in [(0u32, 1u32), (1, 2), (4, 0)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build()
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
        // Isolated nodes 3 and 5 preserved via the header.
        assert_eq!(g2.node_count(), 6);
    }

    #[test]
    fn parses_snap_style_without_header() {
        let text = "# comment\n0 1\n1\t2\n\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["0", "0 1 2", "a b", "0 x"] {
            let err = read_edge_list(bad.as_bytes()).unwrap_err();
            match err {
                GraphIoError::Malformed { line: 1, .. } => {}
                other => panic!("expected Malformed, got {other}"),
            }
        }
    }

    #[test]
    fn header_after_edges_still_grows() {
        let text = "0 1\n# nodes: 10\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 1);
    }

    /// Regression for the `merge` rebuild: a `# nodes:` header arriving
    /// after edges must preserve every already-parsed edge (not just the
    /// node count), keep accepting edges afterwards, and ignore a later,
    /// smaller header.
    #[test]
    fn header_after_edges_preserves_edges_and_keeps_parsing() {
        let text = "0 1\n3 2\n# nodes: 10\n4 5\n# nodes: 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 3);
        for (u, v) in [(0, 1), (3, 2), (4, 5)] {
            assert!(g.has_edge(NodeId(u), NodeId(v)), "{u}->{v} lost in merge");
        }
    }

    #[test]
    fn tolerates_crlf_bom_and_trailing_whitespace() {
        let text = "\u{feff}# nodes: 4\r\n0\t1  \r\n 1 2\t\r\n\r\n2 3\r\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn bom_only_stripped_on_first_line() {
        // A BOM mid-file is real corruption, not an export artifact.
        let err = read_edge_list("0 1\n\u{feff}1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphIoError::Malformed { line: 2, .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_edge_list("zzz".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"));
        assert!(msg.contains("zzz"));
    }

    proptest::proptest! {
        /// `write_edge_list` → `read_edge_list` is the identity for any
        /// graph, including isolated nodes and empty graphs.
        #[test]
        fn proptest_edge_list_round_trip(
            n in 0u32..40,
            raw_edges in proptest::prop::collection::vec((0u32..40, 0u32..40), 0..120),
        ) {
            let mut b = GraphBuilder::with_nodes(n);
            for &(u, v) in &raw_edges {
                b.add_edge(NodeId(u), NodeId(v));
            }
            let g = b.build();
            let mut buf = Vec::new();
            write_edge_list(&g, &mut buf).unwrap();
            let g2 = read_edge_list(buf.as_slice()).unwrap();
            proptest::prop_assert_eq!(g, g2);
        }
    }
}
