//! Compact node identifiers.

/// A node (user) identifier: a dense index in `[0, n)`.
///
/// Stored as `u32` rather than `usize`: the paper's largest dataset has 162K
/// users and halving index width keeps adjacency arrays and walk buffers in
/// cache longer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index as `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let n = NodeId::from(42u32);
        assert_eq!(u32::from(n), 42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.to_string(), "u42");
    }

    #[test]
    fn ordering_follows_raw_id() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7), NodeId(7));
    }
}
