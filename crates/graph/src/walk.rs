//! Random-walk primitives.
//!
//! Three walk flavors are used across the workspace:
//!
//! - [`uniform_walk`]: first-order uniform walk, the DeepWalk corpus
//!   generator.
//! - [`restart_walk`]: random walk with restart — Inf2vec's local influence
//!   context generator runs this over per-episode propagation DAGs with
//!   restart probability 0.5 (the paper follows node2vec's default).
//! - [`Node2vecWalker`]: the second-order biased walk of node2vec with
//!   return parameter `p` and in-out parameter `q`.
//!
//! All walkers operate on any adjacency oracle implementing [`WalkGraph`],
//! so the same code serves the social graph (CSR) and propagation networks
//! (local adjacency lists).

use inf2vec_util::rng::Xoshiro256pp;

use crate::csr::DiGraph;
use crate::node::NodeId;

/// Adjacency oracle for walkers.
pub trait WalkGraph {
    /// Out-neighbors of `u` as raw ids.
    fn neighbors(&self, u: u32) -> &[u32];
}

impl WalkGraph for DiGraph {
    #[inline]
    fn neighbors(&self, u: u32) -> &[u32] {
        self.out_neighbors(NodeId(u))
    }
}

impl WalkGraph for Vec<Vec<u32>> {
    #[inline]
    fn neighbors(&self, u: u32) -> &[u32] {
        &self[u as usize]
    }
}

/// Appends a uniform random walk of exactly `len` *steps* starting at
/// `start` to `out` (the start node itself is not recorded). The walk stops
/// early at a sink node.
pub fn uniform_walk<G: WalkGraph>(
    graph: &G,
    start: u32,
    len: usize,
    rng: &mut Xoshiro256pp,
    out: &mut Vec<u32>,
) {
    let mut cur = start;
    for _ in 0..len {
        let ns = graph.neighbors(cur);
        if ns.is_empty() {
            break;
        }
        cur = ns[rng.index(ns.len())];
        out.push(cur);
    }
}

/// What one restart walk did; plain counts so callers (and any telemetry
/// layer above this crate) can aggregate them however they like.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Stochastic jumps back to the start (the `restart`-probability coin).
    pub restarts: u64,
    /// Deterministic restarts forced by reaching a sink mid-walk.
    pub dead_end_restarts: u64,
    /// Nodes emitted into `out`.
    pub emitted: u64,
}

impl WalkStats {
    /// Component-wise accumulation.
    pub fn merge(&mut self, other: WalkStats) {
        self.restarts += other.restarts;
        self.dead_end_restarts += other.dead_end_restarts;
        self.emitted += other.emitted;
    }
}

/// Appends a random walk **with restart** to `out`: before every step, with
/// probability `restart` the walker jumps back to `start`. Exactly `len`
/// visited nodes are emitted unless the walk gets stuck at a sink *while at
/// the start node* (then it stops early: nothing is reachable).
///
/// Restarting keeps the sampled context concentrated around `start` — the
/// paper uses this to approximate "users probably influenced by `start`"
/// (§IV-A1), with `restart = 0.5`.
pub fn restart_walk<G: WalkGraph>(
    graph: &G,
    start: u32,
    len: usize,
    restart: f64,
    rng: &mut Xoshiro256pp,
    out: &mut Vec<u32>,
) {
    let _ = restart_walk_stats(graph, start, len, restart, rng, out);
}

/// [`restart_walk`] that also reports what the walk did — same RNG
/// consumption, same output, bit-identical to the untracked variant.
pub fn restart_walk_stats<G: WalkGraph>(
    graph: &G,
    start: u32,
    len: usize,
    restart: f64,
    rng: &mut Xoshiro256pp,
    out: &mut Vec<u32>,
) -> WalkStats {
    let mut stats = WalkStats::default();
    let mut cur = start;
    let mut emitted = 0usize;
    while emitted < len {
        if cur != start && rng.chance(restart) {
            cur = start;
            stats.restarts += 1;
        }
        let mut ns = graph.neighbors(cur);
        if ns.is_empty() {
            if cur == start {
                // Nothing reachable from the start at all.
                break;
            }
            // Dead end mid-walk: restart deterministically.
            cur = start;
            stats.dead_end_restarts += 1;
            ns = graph.neighbors(cur);
            if ns.is_empty() {
                break;
            }
        }
        cur = ns[rng.index(ns.len())];
        out.push(cur);
        emitted += 1;
    }
    stats.emitted = emitted as u64;
    stats
}

/// node2vec second-order walker with return parameter `p` and in-out
/// parameter `q` (Grover & Leskovec 2016).
///
/// Transition weights from `cur` (having arrived from `prev`): `1/p` back to
/// `prev`, `1` to common neighbors of `prev` and `cur`, `1/q` to the rest.
/// Weights are evaluated on the fly per step (O(d log d) via binary search
/// on the sorted neighbor slice) rather than precomputing per-edge alias
/// tables, trading a small constant for O(E·d) memory savings.
#[derive(Debug, Clone)]
pub struct Node2vecWalker {
    /// Return parameter; > 1 discourages immediately revisiting `prev`.
    pub p: f64,
    /// In-out parameter; > 1 keeps the walk local (BFS-like).
    pub q: f64,
    /// Walk length in steps.
    pub len: usize,
}

impl Node2vecWalker {
    /// Creates a walker; `p`, `q` must be positive.
    pub fn new(p: f64, q: f64, len: usize) -> Self {
        assert!(p > 0.0 && q > 0.0, "p and q must be positive");
        Self { p, q, len }
    }

    /// Appends one biased walk from `start` to `out` (start excluded).
    pub fn walk(&self, graph: &DiGraph, start: NodeId, rng: &mut Xoshiro256pp, out: &mut Vec<u32>) {
        let first = graph.out_neighbors(start);
        if first.is_empty() {
            return;
        }
        let mut prev = start.0;
        let mut cur = first[rng.index(first.len())];
        out.push(cur);

        let mut weights: Vec<f64> = Vec::new();
        for _ in 1..self.len {
            let ns = graph.out_neighbors(NodeId(cur));
            if ns.is_empty() {
                break;
            }
            weights.clear();
            weights.reserve(ns.len());
            let prev_ns = graph.out_neighbors(NodeId(prev));
            let mut total = 0.0;
            for &x in ns {
                let w = if x == prev {
                    1.0 / self.p
                } else if prev_ns.binary_search(&x).is_ok() {
                    1.0
                } else {
                    1.0 / self.q
                };
                total += w;
                weights.push(total); // cumulative
            }
            let r = rng.next_f64() * total;
            let k = weights.partition_point(|&c| c < r).min(ns.len() - 1);
            prev = cur;
            cur = ns[k];
            out.push(cur);
        }
    }

    /// Generates `walks_per_node` walks from every node, concatenated as
    /// separate sentences (a corpus for skip-gram training).
    pub fn corpus(
        &self,
        graph: &DiGraph,
        walks_per_node: usize,
        rng: &mut Xoshiro256pp,
    ) -> Vec<Vec<u32>> {
        let mut order: Vec<u32> = (0..graph.node_count()).collect();
        let mut corpus = Vec::with_capacity(order.len() * walks_per_node);
        for _ in 0..walks_per_node {
            rng.shuffle(&mut order);
            for &s in &order {
                let mut sentence = Vec::with_capacity(self.len + 1);
                sentence.push(s);
                self.walk(graph, NodeId(s), rng, &mut sentence);
                if sentence.len() > 1 {
                    corpus.push(sentence);
                }
            }
        }
        corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use proptest::prelude::*;

    fn cycle(n: u32) -> DiGraph {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        b.build()
    }

    fn star_out() -> DiGraph {
        // 0 -> {1, 2, 3}; leaves are sinks.
        let mut b = GraphBuilder::new();
        for v in 1..4 {
            b.add_edge(NodeId(0), NodeId(v));
        }
        b.build()
    }

    #[test]
    fn uniform_walk_follows_edges() {
        let g = cycle(5);
        let mut rng = Xoshiro256pp::new(1);
        let mut out = Vec::new();
        uniform_walk(&g, 0, 7, &mut rng, &mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 0, 1, 2]);
    }

    #[test]
    fn uniform_walk_stops_at_sink() {
        let g = star_out();
        let mut rng = Xoshiro256pp::new(2);
        let mut out = Vec::new();
        uniform_walk(&g, 0, 10, &mut rng, &mut out);
        assert_eq!(out.len(), 1);
        assert!((1..4).contains(&out[0]));
    }

    #[test]
    fn restart_walk_emits_requested_length_on_star() {
        // On the out-star, a plain walk dies after 1 step, but restart
        // resurrects it, so we always get `len` samples of the leaves.
        let g = star_out();
        let mut rng = Xoshiro256pp::new(3);
        let mut out = Vec::new();
        restart_walk(&g, 0, 20, 0.5, &mut rng, &mut out);
        assert_eq!(out.len(), 20);
        assert!(out.iter().all(|&v| (1..4).contains(&v)));
    }

    #[test]
    fn restart_walk_stats_matches_untracked_walk() {
        let g = star_out();
        let mut out_a = Vec::new();
        restart_walk(&g, 0, 50, 0.5, &mut Xoshiro256pp::new(9), &mut out_a);
        let mut out_b = Vec::new();
        let stats = restart_walk_stats(&g, 0, 50, 0.5, &mut Xoshiro256pp::new(9), &mut out_b);
        assert_eq!(out_a, out_b, "stats variant changed the walk");
        assert_eq!(stats.emitted, 50);
        // Every leaf of the out-star is a sink, so each emitted step after
        // the first forces a dead-end restart (minus any stochastic ones
        // that happened first at the leaf).
        assert_eq!(stats.restarts + stats.dead_end_restarts, 49);
    }

    #[test]
    fn restart_walk_isolated_start_emits_nothing() {
        let g = GraphBuilder::with_nodes(3).build();
        let mut rng = Xoshiro256pp::new(4);
        let mut out = Vec::new();
        restart_walk(&g, 0, 10, 0.5, &mut rng, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn restart_walk_stays_near_start_for_high_restart() {
        // On a long path 0->1->...->19, restart=0.9 should rarely get past
        // the first few hops.
        let mut b = GraphBuilder::new();
        for i in 0..19u32 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        let g = b.build();
        let mut rng = Xoshiro256pp::new(5);
        let mut out = Vec::new();
        restart_walk(&g, 0, 2000, 0.9, &mut rng, &mut out);
        let far = out.iter().filter(|&&v| v > 5).count();
        assert!(
            (far as f64) < 0.02 * out.len() as f64,
            "{far} of {} samples deep in the path",
            out.len()
        );
    }

    #[test]
    fn node2vec_walk_valid_edges() {
        let g = cycle(8);
        let walker = Node2vecWalker::new(0.5, 2.0, 10);
        let mut rng = Xoshiro256pp::new(6);
        let mut out = vec![0u32];
        walker.walk(&g, NodeId(0), &mut rng, &mut out);
        for w in out.windows(2) {
            assert!(g.has_edge(NodeId(w[0]), NodeId(w[1])));
        }
    }

    #[test]
    fn node2vec_low_p_returns_often() {
        // Two nodes with edges both ways: with p tiny, the walk ping-pongs;
        // statistically every second node is the start again.
        let mut b = GraphBuilder::new();
        b.add_edge_both(NodeId(0), NodeId(1));
        b.add_edge_both(NodeId(0), NodeId(2));
        b.add_edge_both(NodeId(1), NodeId(2));
        let g = b.build();
        let count_returns = |p: f64, q: f64, seed: u64| {
            let walker = Node2vecWalker::new(p, q, 2000);
            let mut rng = Xoshiro256pp::new(seed);
            let mut out = Vec::new();
            walker.walk(&g, NodeId(0), &mut rng, &mut out);
            // Count immediate backtracks a->b->a.
            out.windows(2)
                .zip(std::iter::once(0u32).chain(out.iter().copied()))
                .filter(|(w, before)| w[1] == *before)
                .count() as f64
                / out.len() as f64
        };
        let low_p = count_returns(0.05, 1.0, 7);
        let high_p = count_returns(20.0, 1.0, 7);
        assert!(
            low_p > 2.0 * high_p,
            "backtrack rate low_p={low_p} high_p={high_p}"
        );
    }

    #[test]
    fn corpus_covers_nodes() {
        let g = cycle(10);
        let walker = Node2vecWalker::new(1.0, 1.0, 5);
        let mut rng = Xoshiro256pp::new(8);
        let corpus = walker.corpus(&g, 2, &mut rng);
        assert_eq!(corpus.len(), 20);
        let starts: std::collections::BTreeSet<u32> =
            corpus.iter().map(|s| s[0]).collect();
        assert_eq!(starts.len(), 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every consecutive pair in every walk flavor is a real edge.
        #[test]
        fn proptest_walks_follow_edges(seed in any::<u64>(), n in 3u32..20) {
            let g = cycle(n);
            let mut rng = Xoshiro256pp::new(seed);

            let mut out = vec![0u32];
            uniform_walk(&g, 0, 15, &mut rng, &mut out);
            for w in out.windows(2) {
                prop_assert!(g.has_edge(NodeId(w[0]), NodeId(w[1])));
            }

            let mut out = Vec::new();
            restart_walk(&g, 0, 15, 0.5, &mut rng, &mut out);
            // With restarts, consecutive emitted nodes need not be linked,
            // but every emitted node must be reachable via an edge from
            // either the previous node or the start.
            let mut prev = 0u32;
            for &v in &out {
                prop_assert!(
                    g.has_edge(NodeId(prev), NodeId(v)) || g.has_edge(NodeId(0), NodeId(v))
                );
                prev = v;
            }
        }
    }
}
