//! Induced subgraph extraction.

use inf2vec_util::hash::fx_hashmap_with_capacity;
use inf2vec_util::FxHashMap;

use crate::builder::GraphBuilder;
use crate::csr::DiGraph;
use crate::node::NodeId;

/// An induced subgraph together with the mapping back to the parent graph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The subgraph with dense local ids `0..keep.len()`.
    pub graph: DiGraph,
    /// `local -> global` id map (index = local id).
    pub to_global: Vec<NodeId>,
    /// `global -> local` id map.
    pub to_local: FxHashMap<NodeId, u32>,
}

/// Extracts the subgraph induced by `keep` (kept in the given order;
/// duplicates are an error).
///
/// # Panics
///
/// Panics if `keep` contains duplicates or ids outside the parent graph.
pub fn induced_subgraph(parent: &DiGraph, keep: &[NodeId]) -> Subgraph {
    let mut to_local: FxHashMap<NodeId, u32> = fx_hashmap_with_capacity(keep.len());
    for (i, &g) in keep.iter().enumerate() {
        assert!(g.0 < parent.node_count(), "node {g} outside parent graph");
        let prev = to_local.insert(g, i as u32);
        assert!(prev.is_none(), "duplicate node {g} in keep set");
    }

    let mut b = GraphBuilder::with_nodes(keep.len() as u32);
    for (lu, &gu) in keep.iter().enumerate() {
        for &gv in parent.out_neighbors(gu) {
            if let Some(&lv) = to_local.get(&NodeId(gv)) {
                b.add_edge(NodeId(lu as u32), NodeId(lv));
            }
        }
    }
    Subgraph {
        graph: b.build(),
        to_global: keep.to_vec(),
        to_local,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line(n: u32) -> DiGraph {
        let mut b = GraphBuilder::new();
        for i in 0..n - 1 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        b.build()
    }

    #[test]
    fn keeps_only_internal_edges() {
        let g = line(5); // 0->1->2->3->4
        let sub = induced_subgraph(&g, &[NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(sub.graph.node_count(), 3);
        // Only 1->2 survives; 2->3 and 3->4 cross the boundary.
        assert_eq!(sub.graph.edge_count(), 1);
        assert!(sub.graph.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(sub.to_global[0], NodeId(1));
        assert_eq!(sub.to_local[&NodeId(4)], 2);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicates() {
        let g = line(3);
        let _ = induced_subgraph(&g, &[NodeId(0), NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_foreign_nodes() {
        let g = line(3);
        let _ = induced_subgraph(&g, &[NodeId(9)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every subgraph edge corresponds to a parent edge and vice versa
        /// for kept endpoints.
        #[test]
        fn proptest_subgraph_edges(
            raw in prop::collection::vec((0u32..20, 0u32..20), 0..120),
            keep_mask in prop::collection::vec(any::<bool>(), 20),
        ) {
            let mut b = GraphBuilder::with_nodes(20);
            for &(u, v) in &raw {
                b.add_edge(NodeId(u), NodeId(v));
            }
            let parent = b.build();
            let keep: Vec<NodeId> = (0..20u32)
                .filter(|&i| keep_mask[i as usize])
                .map(NodeId)
                .collect();
            if keep.is_empty() {
                return Ok(());
            }
            let sub = induced_subgraph(&parent, &keep);

            // Forward: every sub edge maps to a parent edge.
            for (lu, lv) in sub.graph.edges() {
                let gu = sub.to_global[lu.index()];
                let gv = sub.to_global[lv.index()];
                prop_assert!(parent.has_edge(gu, gv));
            }
            // Backward: every parent edge between kept nodes appears.
            let mut expected = 0usize;
            for (gu, gv) in parent.edges() {
                if sub.to_local.contains_key(&gu) && sub.to_local.contains_key(&gv) {
                    expected += 1;
                    let lu = NodeId(sub.to_local[&gu]);
                    let lv = NodeId(sub.to_local[&gv]);
                    prop_assert!(sub.graph.has_edge(lu, lv));
                }
            }
            prop_assert_eq!(sub.graph.edge_count(), expected);
        }
    }
}
