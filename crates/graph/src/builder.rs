//! Mutable graph construction.

use crate::csr::DiGraph;
use crate::node::NodeId;

/// Accumulates edges and freezes them into an immutable [`DiGraph`].
///
/// Duplicate edges are collapsed and self-loops dropped at [`build`] time
/// (neither carries information for influence propagation: a user cannot
/// influence themself, and the action-log semantics are binary "follows").
///
/// [`build`]: GraphBuilder::build
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that already knows it has at least `n` nodes
    /// (isolated nodes are preserved in the built graph).
    pub fn with_nodes(n: u32) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-reserves capacity for `m` edges.
    pub fn reserve_edges(&mut self, m: usize) {
        self.edges.reserve(m);
    }

    /// Adds a directed edge `u -> v`, growing the node count as needed.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.n = self.n.max(u.0 + 1).max(v.0 + 1);
        self.edges.push((u.0, v.0));
    }

    /// Adds both `u -> v` and `v -> u`.
    pub fn add_edge_both(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Number of nodes known so far.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Number of edges added so far (before dedup).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes into a CSR [`DiGraph`], deduplicating edges and dropping
    /// self-loops.
    pub fn build(mut self) -> DiGraph {
        self.edges.retain(|&(u, v)| u != v);
        self.edges.sort_unstable();
        self.edges.dedup();
        DiGraph::from_sorted_unique_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_drops_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(2), NodeId(2));
        b.add_edge(NodeId(1), NodeId(0));
        let g = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(2), NodeId(2)));
    }

    #[test]
    fn with_nodes_preserves_isolated() {
        let b = GraphBuilder::with_nodes(5);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.out_degree(NodeId(4)), 0);
    }

    #[test]
    fn both_direction_helper() {
        let mut b = GraphBuilder::new();
        b.add_edge_both(NodeId(3), NodeId(7));
        let g = b.build();
        assert!(g.has_edge(NodeId(3), NodeId(7)));
        assert!(g.has_edge(NodeId(7), NodeId(3)));
        assert_eq!(g.node_count(), 8);
    }
}
