#![warn(missing_docs)]

//! Directed social-network graphs.
//!
//! The workspace models a social network as a directed graph `G = (V, E)`
//! where an edge `(u, v)` means user v watches user u's activity and so u can
//! influence v (the paper's first assumption in §III).
//!
//! - [`NodeId`]: compact `u32` node identifier.
//! - [`GraphBuilder`] / [`DiGraph`]: mutable construction into an immutable
//!   CSR representation with both out- and in-adjacency, sorted neighbor
//!   slices (O(log d) edge membership), and O(1) degrees.
//! - [`gen`]: synthetic topology generators (preferential attachment,
//!   Erdős–Rényi, configuration-model power law).
//! - [`walk`]: random-walk primitives — uniform, restart, and node2vec's
//!   second-order biased walk.
//! - [`io`]: plain-text edge-list serialization.
//! - [`subgraph`]: induced subgraph extraction with id remapping.

pub mod builder;
pub mod csr;
pub mod gen;
pub mod io;
pub mod node;
pub mod subgraph;
pub mod walk;

pub use builder::GraphBuilder;
pub use csr::DiGraph;
pub use io::GraphIoError;
pub use node::NodeId;
