//! Synthetic graph topologies.
//!
//! The paper's datasets are follower graphs with heavy-tailed degree
//! distributions. [`preferential_attachment`] is the workhorse used by the
//! synthetic dataset generator; [`erdos_renyi`] and [`power_law_config`]
//! exist for controlled comparisons and tests.

use inf2vec_util::rng::Xoshiro256pp;

use crate::builder::GraphBuilder;
use crate::csr::DiGraph;
use crate::node::NodeId;

/// Parameters for directed preferential attachment.
#[derive(Debug, Clone)]
pub struct PreferentialAttachment {
    /// Total number of nodes.
    pub nodes: u32,
    /// Outgoing "follows" created by each arriving node.
    pub edges_per_node: u32,
    /// Probability a follow is reciprocated (social graphs have substantial
    /// reciprocity; Digg ~0.3, Flickr ~0.6 per the measurement papers).
    pub reciprocity: f64,
    /// Probability an attachment ignores degree and picks uniformly
    /// (keeps the tail power-law while avoiding a star graph).
    pub uniform_mix: f64,
}

impl Default for PreferentialAttachment {
    fn default() -> Self {
        Self {
            nodes: 1000,
            edges_per_node: 10,
            reciprocity: 0.3,
            uniform_mix: 0.15,
        }
    }
}

/// Generates a directed preferential-attachment graph.
///
/// Arriving node `t` follows `edges_per_node` distinct earlier nodes chosen
/// with probability proportional to their in-degree (i.e. popularity, "rich
/// get richer"), yielding a power-law in-degree tail. Each follow edge
/// `(target, t)` means the popular user can influence the newcomer; with
/// probability `reciprocity` the reverse edge is added too.
pub fn preferential_attachment(params: &PreferentialAttachment, rng: &mut Xoshiro256pp) -> DiGraph {
    let n = params.nodes;
    assert!(n >= 2, "need at least two nodes");
    let m = params.edges_per_node.max(1);

    let mut b = GraphBuilder::with_nodes(n);
    b.reserve_edges(n as usize * m as usize);

    // `targets` is the classic repeated-node trick: every time a node gains
    // an (undirected-sense) attachment, it is pushed again, so uniform draws
    // from `targets` are degree-proportional draws.
    let mut targets: Vec<u32> = vec![0, 1];
    b.add_edge(NodeId(0), NodeId(1));

    let mut chosen: Vec<u32> = Vec::with_capacity(m as usize);
    for t in 2..n {
        chosen.clear();
        let budget = m.min(t);
        let mut guard = 0u32;
        while (chosen.len() as u32) < budget && guard < 50 * m {
            guard += 1;
            let cand = if rng.chance(params.uniform_mix) {
                rng.below(t as u64) as u32
            } else {
                *rng.choose(&targets)
            };
            if cand != t && !chosen.contains(&cand) {
                chosen.push(cand);
            }
        }
        for &c in &chosen {
            // c is popular; popularity flows influence: c -> t.
            b.add_edge(NodeId(c), NodeId(t));
            targets.push(c);
            targets.push(t);
            if rng.chance(params.reciprocity) {
                b.add_edge(NodeId(t), NodeId(c));
            }
        }
    }
    b.build()
}

/// Generates an Erdős–Rényi graph with exactly `m` distinct directed edges.
pub fn erdos_renyi(n: u32, m: usize, rng: &mut Xoshiro256pp) -> DiGraph {
    assert!(n >= 2, "need at least two nodes");
    let max_edges = n as u64 * (n as u64 - 1);
    assert!(
        m as u64 <= max_edges,
        "m = {m} exceeds the {max_edges} possible edges"
    );
    let mut b = GraphBuilder::with_nodes(n);
    let mut seen = inf2vec_util::hash::fx_hashset_with_capacity::<(u32, u32)>(m);
    while seen.len() < m {
        let u = rng.below(n as u64) as u32;
        let v = rng.below(n as u64) as u32;
        if u != v && seen.insert((u, v)) {
            b.add_edge(NodeId(u), NodeId(v));
        }
    }
    b.build()
}

/// Generates a directed configuration-model graph whose expected in-degrees
/// follow a power law with exponent `gamma` (≥ 2), by pairing stubs drawn
/// from Zipfian weights. Multi-edges and self-loops are discarded.
pub fn power_law_config(n: u32, mean_degree: f64, gamma: f64, rng: &mut Xoshiro256pp) -> DiGraph {
    assert!(n >= 2, "need at least two nodes");
    assert!(gamma > 1.0, "gamma must exceed 1");
    let weights: Vec<f64> = (1..=n as u64)
        .map(|r| (r as f64).powf(-1.0 / (gamma - 1.0)))
        .collect();
    let table = inf2vec_util::AliasTable::new(&weights);
    let m = (n as f64 * mean_degree) as usize;
    let mut b = GraphBuilder::with_nodes(n);
    let mut seen = inf2vec_util::hash::fx_hashset_with_capacity::<(u32, u32)>(m);
    let mut attempts = 0usize;
    while seen.len() < m && attempts < 30 * m {
        attempts += 1;
        // Source uniform (everybody follows), target Zipf-weighted (few are
        // followed a lot).
        let u = rng.below(n as u64) as u32;
        let v = table.sample(rng) as u32;
        if u != v && seen.insert((v, u)) {
            // Edge direction: popular v influences follower u.
            b.add_edge(NodeId(v), NodeId(u));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pa_graph_has_expected_shape() {
        let mut rng = Xoshiro256pp::new(42);
        let params = PreferentialAttachment {
            nodes: 500,
            edges_per_node: 5,
            reciprocity: 0.2,
            uniform_mix: 0.1,
        };
        let g = preferential_attachment(&params, &mut rng);
        assert_eq!(g.node_count(), 500);
        // Roughly nodes * m edges plus reciprocal ones.
        assert!(g.edge_count() > 2000, "edges = {}", g.edge_count());
        assert!(g.edge_count() < 3600, "edges = {}", g.edge_count());
        // Heavy tail: the max out-degree should far exceed the mean.
        let max_out = g.nodes().map(|u| g.out_degree(u)).max().unwrap();
        assert!(
            max_out as f64 > 5.0 * g.mean_degree(),
            "max {max_out} mean {}",
            g.mean_degree()
        );
    }

    #[test]
    fn pa_deterministic_per_seed() {
        let params = PreferentialAttachment::default();
        let g1 = preferential_attachment(&params, &mut Xoshiro256pp::new(7));
        let g2 = preferential_attachment(&params, &mut Xoshiro256pp::new(7));
        assert_eq!(g1, g2);
        let g3 = preferential_attachment(&params, &mut Xoshiro256pp::new(8));
        assert_ne!(g1, g3);
    }

    #[test]
    fn erdos_renyi_exact_edge_count() {
        let mut rng = Xoshiro256pp::new(3);
        let g = erdos_renyi(50, 400, &mut rng);
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 400);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn erdos_renyi_rejects_impossible_m() {
        let mut rng = Xoshiro256pp::new(3);
        let _ = erdos_renyi(3, 100, &mut rng);
    }

    #[test]
    fn power_law_has_heavy_tail() {
        let mut rng = Xoshiro256pp::new(9);
        let g = power_law_config(800, 8.0, 2.3, &mut rng);
        assert_eq!(g.node_count(), 800);
        assert!(g.edge_count() > 5000);
        let max_out = g.nodes().map(|u| g.out_degree(u)).max().unwrap();
        assert!(max_out > 50, "max out degree {max_out} not heavy-tailed");
    }
}
