//! Immutable CSR graph representation.

use crate::node::NodeId;

/// An immutable directed graph in compressed-sparse-row form.
///
/// Both directions are materialized: `out` adjacency answers "whom can u
/// influence" and `in` adjacency answers "who can influence v" — the
/// evaluation tasks need the latter constantly (candidate users are those
/// with at least one activated in-neighbor). Neighbor slices are sorted, so
/// edge membership is a binary search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    n: u32,
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    in_offsets: Vec<u32>,
    in_sources: Vec<u32>,
}

impl DiGraph {
    /// Builds from edges that are already sorted by `(source, target)` and
    /// unique, with no self-loops. [`crate::GraphBuilder`] guarantees this.
    pub(crate) fn from_sorted_unique_edges(n: u32, edges: &[(u32, u32)]) -> Self {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges sorted+unique");
        let m = edges.len();
        assert!(m <= u32::MAX as usize, "edge count exceeds u32");

        let mut out_offsets = vec![0u32; n as usize + 1];
        let mut in_offsets = vec![0u32; n as usize + 1];
        for &(u, v) in edges {
            debug_assert!(u < n && v < n);
            out_offsets[u as usize + 1] += 1;
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n as usize {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }

        let mut out_targets = vec![0u32; m];
        let mut in_sources = vec![0u32; m];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for &(u, v) in edges {
            out_targets[out_cursor[u as usize] as usize] = v;
            out_cursor[u as usize] += 1;
            in_sources[in_cursor[v as usize] as usize] = u;
            in_cursor[v as usize] += 1;
        }
        // Input order is sorted by (u, v), so each out slice is sorted; in
        // slices are filled in increasing source order and thus also sorted.

        Self {
            n,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId)
    }

    /// Sorted slice of `u`'s out-neighbors (users `u` may influence).
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[u32] {
        let i = u.index();
        &self.out_targets[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// Sorted slice of `v`'s in-neighbors (users who may influence `v`).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[u32] {
        let i = v.index();
        &self.in_sources[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_neighbors(u).len()
    }

    /// In-degree of `v`. The paper's DE baseline sets `P_uv = 1/indegree(v)`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Whether edge `u -> v` exists (binary search over the out slice).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v.0).is_ok()
    }

    /// Position of edge `u -> v` in the flat out-edge array, if present.
    ///
    /// Per-edge attributes (e.g. IC probabilities) are stored in parallel
    /// `Vec`s indexed by this value.
    #[inline]
    pub fn edge_index(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let base = self.out_offsets[u.index()] as usize;
        self.out_neighbors(u)
            .binary_search(&v.0)
            .ok()
            .map(|k| base + k)
    }

    /// Offset of `u`'s first out-edge in the flat edge array.
    #[inline]
    pub fn out_edge_range(&self, u: NodeId) -> std::ops::Range<usize> {
        self.out_offsets[u.index()] as usize..self.out_offsets[u.index() + 1] as usize
    }

    /// Iterator over all edges as `(source, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.out_neighbors(NodeId(u))
                .iter()
                .map(move |&v| (NodeId(u), NodeId(v)))
        })
    }

    /// The graph with every edge reversed.
    pub fn reversed(&self) -> DiGraph {
        DiGraph {
            n: self.n,
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_sources.clone(),
            in_offsets: self.out_offsets.clone(),
            in_sources: self.out_targets.clone(),
        }
    }

    /// Maximum in-degree over all nodes (0 for an empty graph).
    pub fn max_in_degree(&self) -> usize {
        (0..self.n)
            .map(|v| self.in_degree(NodeId(v)))
            .max()
            .unwrap_or(0)
    }

    /// Mean out-degree.
    pub fn mean_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.edge_count() as f64 / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use proptest::prelude::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new();
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build()
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_neighbors(NodeId(0)), &[1, 2]);
        assert_eq!(g.in_neighbors(NodeId(3)), &[1, 2]);
        assert_eq!(g.out_degree(NodeId(3)), 0);
        assert_eq!(g.in_degree(NodeId(0)), 0);
    }

    #[test]
    fn edge_queries() {
        let g = diamond();
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(2), NodeId(0)));
        assert_eq!(g.edge_index(NodeId(0), NodeId(1)), Some(0));
        assert_eq!(g.edge_index(NodeId(0), NodeId(2)), Some(1));
        assert_eq!(g.edge_index(NodeId(1), NodeId(3)), Some(2));
        assert_eq!(g.edge_index(NodeId(3), NodeId(0)), None);
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = diamond();
        let edges: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn reversal_swaps_directions() {
        let g = diamond().reversed();
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.in_degree(NodeId(0)), 2);
    }

    #[test]
    fn degree_stats() {
        let g = diamond();
        assert_eq!(g.max_in_degree(), 2);
        assert!((g.mean_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.max_in_degree(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// CSR invariants hold for arbitrary edge sets: degree sums equal the
        /// edge count, neighbor slices are sorted, and membership agrees with
        /// the input set.
        #[test]
        fn proptest_csr_invariants(raw in prop::collection::vec((0u32..40, 0u32..40), 0..300)) {
            let mut b = GraphBuilder::new();
            for &(u, v) in &raw {
                b.add_edge(NodeId(u), NodeId(v));
            }
            let g = b.build();

            let expect: std::collections::BTreeSet<(u32, u32)> =
                raw.iter().copied().filter(|&(u, v)| u != v).collect();
            prop_assert_eq!(g.edge_count(), expect.len());

            let out_sum: usize = g.nodes().map(|u| g.out_degree(u)).sum();
            let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
            prop_assert_eq!(out_sum, expect.len());
            prop_assert_eq!(in_sum, expect.len());

            for u in g.nodes() {
                let ns = g.out_neighbors(u);
                prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted + unique");
                let is = g.in_neighbors(u);
                prop_assert!(is.windows(2).all(|w| w[0] < w[1]));
            }

            for &(u, v) in &expect {
                prop_assert!(g.has_edge(NodeId(u), NodeId(v)));
                prop_assert!(g.edge_index(NodeId(u), NodeId(v)).is_some());
            }
            // Round trip through the edges iterator.
            let got: std::collections::BTreeSet<(u32, u32)> =
                g.edges().map(|(u, v)| (u.0, v.0)).collect();
            prop_assert_eq!(got, expect);
        }

        /// edge_index values are unique and dense in [0, m).
        #[test]
        fn proptest_edge_index_dense(raw in prop::collection::vec((0u32..30, 0u32..30), 0..200)) {
            let mut b = GraphBuilder::new();
            for &(u, v) in &raw {
                b.add_edge(NodeId(u), NodeId(v));
            }
            let g = b.build();
            let mut seen = vec![false; g.edge_count()];
            for (u, v) in g.edges() {
                let i = g.edge_index(u, v).unwrap();
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
            prop_assert!(seen.into_iter().all(|b| b));
        }
    }
}
