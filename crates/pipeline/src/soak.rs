//! Fault-injection soak: crash cycles, torn tails, exact reconciliation.
//!
//! The harness plays both sides of the pipeline's contract:
//!
//! 1. a deterministic **traffic writer** appends chunks of synthetic
//!    action records to the log — including scheduled garbage lines,
//!    *partial* lines (a torn producer) completed by the next chunk, and
//!    (from the second cycle on) records naming users the social graph
//!    never enumerated, so the model's row space must grow mid-stream;
//! 2. between chunks the pipeline is **crashed** (dropped without a
//!    graceful shutdown) and reopened from its journal, while a per-cycle
//!    [`FaultPlan`] panics stages, fails/slows publishes, shears journal
//!    slots mid-run, injects ENOSPC-style faults into journal, compaction
//!    and snapshot-export writes, and poisons one snapshot (intact bits,
//!    inverted semantics) that the quality gate must withhold;
//! 3. the live log is held under a byte budget by journal-coordinated
//!    **compaction** throughout, so the end-state checks also have to
//!    survive the consumed prefix being rotated into the archive;
//! 4. at the end, every written record must sit in exactly one of
//!    {applied, quarantined, pending} — checked against the writer's own
//!    ledger *and* against the obs gauges — and an uninterrupted
//!    fresh-journal run over the **reconstructed** full stream (archive
//!    bytes + live suffix) must produce a bit-identical model
//!    ([`inf2vec_serve::store_checksum`]).

use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use inf2vec_graph::{DiGraph, GraphBuilder, NodeId};
use inf2vec_ingest::{archive_dir, ArchiveStore};
use inf2vec_obs::SampleValue;
use inf2vec_serve::ModelRegistry;
use inf2vec_util::error::Inf2vecError;
use inf2vec_util::rng::Xoshiro256pp;
use inf2vec_util::{split_seed, system_clock};

use crate::config::PipelineConfig;
use crate::faults::FaultPlan;
use crate::publish::RegistrySink;
use crate::runner::{archive_path, ArchiveCounters, Pipeline, Reconciliation};

/// Soak shape. Defaults give a few seconds of work — CI-sized.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Users in the social graph (ring-with-shortcuts).
    pub users: u32,
    /// Users beyond the graph that start appearing from the second cycle
    /// on: they force mid-stream row-space growth (the pipeline runs with
    /// `user_capacity = users + extra_users`).
    pub extra_users: u32,
    /// Records per cascade: each item stays active for roughly this many
    /// log lines, then goes quiet (and so eventually closes). Adjacent
    /// cascades overlap, keeping a couple of episodes open at all times.
    pub cascade_len: u32,
    /// Crash/recover cycles (one traffic chunk each). Minimum 4, so the
    /// schedule can fit every fault class including the poisoned
    /// snapshot.
    pub cycles: u32,
    /// Records appended per chunk.
    pub records_per_chunk: u32,
    /// Every Nth line is garbage (quarantine traffic); 0 disables.
    pub defect_every: u32,
    /// Live-log byte budget driving compaction (0 disables — the soak
    /// then cannot prove disk boundedness).
    pub log_budget_bytes: u64,
    /// Archive segment budget driving retention expiry (0 = unlimited —
    /// the soak then cannot prove the archive stays bounded).
    pub archive_max_segments: usize,
    /// Archive payload byte budget (0 = unlimited).
    pub archive_max_bytes: u64,
    /// Real-clock mode (`repro soak --wall-clock`): keep cycling until
    /// this much wall time has elapsed (at least `cycles` cycles either
    /// way), with [`wall_clock_pause`](Self::wall_clock_pause) of real
    /// sleep between chunks so compaction, expiry, and restore run
    /// against elapsing time rather than back-to-back.
    pub wall_clock: Option<Duration>,
    /// Real sleep between cycles in wall-clock mode.
    pub wall_clock_pause: Duration,
    /// Held-out probe triples backing the quality gate (0 disables — the
    /// soak then cannot prove the poisoned snapshot is withheld).
    pub probe_pairs: usize,
    /// Master seed for traffic and training.
    pub seed: u64,
    /// Pipeline knobs (the harness overrides seed/telemetry/capacity/
    /// budget/probe/snapshot-dir coherently).
    pub pipeline: PipelineConfig,
}

impl Default for SoakConfig {
    fn default() -> Self {
        Self {
            users: 24,
            extra_users: 8,
            cascade_len: 20,
            cycles: 4,
            records_per_chunk: 160,
            defect_every: 13,
            log_budget_bytes: 2048,
            archive_max_segments: 2,
            archive_max_bytes: 0,
            wall_clock: None,
            wall_clock_pause: Duration::from_millis(25),
            probe_pairs: 48,
            seed: 42,
            pipeline: PipelineConfig {
                close_after: 24,
                batch_max: 32,
                publish_every_episodes: 2,
                publish_backoff: Duration::from_millis(1),
                publish_backoff_cap: Duration::from_millis(4),
                inf2vec: inf2vec_core::Inf2vecConfig {
                    k: 8,
                    l: 8,
                    ..inf2vec_core::Inf2vecConfig::default()
                },
                ..PipelineConfig::default()
            },
        }
    }
}

impl SoakConfig {
    /// The long-soak preset (`repro soak --long`): more users, more
    /// cycles, several times the traffic, a tighter relative disk budget.
    /// Minutes of work rather than seconds — the overnight/CI-nightly
    /// shape.
    pub fn long() -> Self {
        let base = Self::default();
        Self {
            users: 48,
            extra_users: 16,
            cascade_len: 24,
            cycles: 8,
            records_per_chunk: 400,
            log_budget_bytes: 4096,
            archive_max_segments: 3,
            probe_pairs: 64,
            pipeline: PipelineConfig {
                close_after: 32,
                batch_max: 48,
                ..base.pipeline
            },
            ..base
        }
    }
}

/// What the soak proved (serializable for CI artifacts).
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Well-formed records the writer produced.
    pub written_good: u64,
    /// Garbage lines the writer produced.
    pub written_bad: u64,
    /// Crash/recover cycles driven.
    pub cycles: u32,
    /// Stage restarts across all incarnations (tailer, trainer, publisher).
    pub restarts: (u32, u32, u32),
    /// Publishes across all incarnations (ok, failed, withheld, skipped).
    pub publishes: (u64, u64, u64, u64),
    /// Model versions actually installed in the registry.
    pub versions_installed: u64,
    /// Log compactions across all incarnations.
    pub compactions: u64,
    /// Largest live-log size observed at any cycle boundary.
    pub max_live_log_bytes: u64,
    /// The compaction budget the soak ran under.
    pub log_budget_bytes: u64,
    /// The live log never strayed past twice the budget — the disk
    /// stayed bounded while traffic kept growing. (The default combined
    /// scenario additionally asserts `compactions >= 3`, but a
    /// scaled-down run can be bounded with fewer.)
    pub disk_bounded: bool,
    /// Archive segments sealed across all incarnations.
    pub segments_sealed: u64,
    /// Archive segments expired under the retention policy.
    pub segments_expired: u64,
    /// Archive payload bytes reclaimed by expiry.
    pub bytes_reclaimed: u64,
    /// Bytes compacted away without landing durably in the archive
    /// (seal-degrade paths; 0 in a fault-recovered run).
    pub bytes_dropped: u64,
    /// Archive segments retained when the soak ended.
    pub segments_final: u64,
    /// Largest retained-segment count observed at any cycle boundary.
    pub max_archive_segments: u64,
    /// The segment budget the soak ran under.
    pub archive_max_segments: usize,
    /// Wall seconds spent in the verify-archive + restore pass.
    pub restore_verify_secs: f64,
    /// [`disk_bounded`](Self::disk_bounded) *and* the archive store held
    /// its retention budgets (with one segment of in-flight slack) at
    /// every observed cycle boundary — live log + archive together
    /// occupy bounded disk.
    pub disk_budget_held: bool,
    /// The archive's expired-prefix offset plus the retained archive
    /// payload plus the live payload exactly tiles the writer's
    /// ground-truth stream, and the per-incarnation reclaimed/dropped
    /// counters sum to exactly that offset — every expired byte
    /// accounted once, none twice.
    pub expiry_exact: bool,
    /// `verify-archive` passed and the restored `archive ++ live` stream
    /// is byte-identical to the ground-truth suffix from the expired-
    /// prefix boundary on.
    pub restore_identical: bool,
    /// The user-id universe (`users + extra_users`).
    pub universe: u32,
    /// Users whose first record arrived after the first cycle.
    pub users_midstream: u32,
    /// Rows the final model holds (> `users` proves growth).
    pub final_rows: usize,
    /// ≥ 20% of the universe appeared mid-stream and the model grew past
    /// the base graph.
    pub growth_ok: bool,
    /// The poisoned snapshot was withheld and no poisoned version was
    /// ever observed serving.
    pub quality_gate_held: bool,
    /// The final incarnation's ledger.
    pub reconciliation: Reconciliation,
    /// `applied + pending == written_good` and `quarantined == written_bad`.
    pub balanced: bool,
    /// The obs gauges agree with the ledger.
    pub gauges_consistent: bool,
    /// An uninterrupted fresh run over the reconstructed full stream
    /// produced the same [`inf2vec_serve::store_checksum`].
    pub bit_identical: bool,
    /// Every accepted record reconstructed to a complete causal chain
    /// (valid deterministic trace ids, fate agreeing with the ledger).
    pub trace_complete: bool,
}

impl SoakReport {
    /// Every invariant the soak exists to prove.
    pub fn passed(&self) -> bool {
        self.balanced
            && self.gauges_consistent
            && self.bit_identical
            && self.trace_complete
            && self.disk_bounded
            && self.disk_budget_held
            && self.expiry_exact
            && self.restore_identical
            && self.growth_ok
            && self.quality_gate_held
    }

    /// One-object JSON rendering (CI artifact).
    pub fn to_json(&self) -> String {
        let r = &self.reconciliation;
        format!(
            concat!(
                "{{\"written_good\":{},\"written_bad\":{},\"cycles\":{},",
                "\"restarts\":{{\"tail\":{},\"train\":{},\"publish\":{}}},",
                "\"publishes\":{{\"ok\":{},\"failed\":{},\"withheld\":{},\"skipped\":{}}},",
                "\"versions_installed\":{},",
                "\"compactions\":{},\"max_live_log_bytes\":{},\"log_budget_bytes\":{},",
                "\"disk_bounded\":{},",
                "\"archive\":{{\"segments_sealed\":{},\"segments_expired\":{},",
                "\"bytes_reclaimed\":{},\"bytes_dropped\":{},\"segments_final\":{},",
                "\"max_segments_observed\":{},\"max_segments_budget\":{},",
                "\"restore_verify_secs\":{:.6}}},",
                "\"disk_budget_held\":{},\"expiry_exact\":{},\"restore_identical\":{},",
                "\"universe\":{},\"users_midstream\":{},\"final_rows\":{},\"growth_ok\":{},",
                "\"quality_gate_held\":{},",
                "\"records\":{{\"seen\":{},\"applied\":{},\"quarantined\":{},\"pending\":{}}},",
                "\"episodes_applied\":{},\"pairs_applied\":{},",
                "\"store_checksum\":\"{:016x}\",",
                "\"balanced\":{},\"gauges_consistent\":{},\"bit_identical\":{},",
                "\"trace_complete\":{},\"passed\":{}}}"
            ),
            self.written_good,
            self.written_bad,
            self.cycles,
            self.restarts.0,
            self.restarts.1,
            self.restarts.2,
            self.publishes.0,
            self.publishes.1,
            self.publishes.2,
            self.publishes.3,
            self.versions_installed,
            self.compactions,
            self.max_live_log_bytes,
            self.log_budget_bytes,
            self.disk_bounded,
            self.segments_sealed,
            self.segments_expired,
            self.bytes_reclaimed,
            self.bytes_dropped,
            self.segments_final,
            self.max_archive_segments,
            self.archive_max_segments,
            self.restore_verify_secs,
            self.disk_budget_held,
            self.expiry_exact,
            self.restore_identical,
            self.universe,
            self.users_midstream,
            self.final_rows,
            self.growth_ok,
            self.quality_gate_held,
            r.records_seen,
            r.records_applied,
            r.records_quarantined,
            r.records_pending,
            r.episodes_applied,
            r.pairs_applied,
            r.store_checksum,
            self.balanced,
            self.gauges_consistent,
            self.bit_identical,
            self.trace_complete,
            self.passed(),
        )
    }
}

/// Deterministic traffic: interleaved cascades over a small item pool,
/// garbage lines on a schedule, torn (partial) lines at chunk seams, and
/// a user population that widens mid-stream once unlocked.
struct TrafficWriter {
    rng: Xoshiro256pp,
    /// Users currently eligible to appear (starts at the graph size).
    active_users: u32,
    /// The full id space (`users + extra_users`).
    universe: u32,
    cascade_len: u32,
    defect_every: u32,
    time: u64,
    lines: u64,
    good: u64,
    bad: u64,
    /// Per-user: has any record named this id yet?
    seen: Vec<bool>,
    /// The population has been widened to the full universe.
    unlocked: bool,
    /// Users whose first record arrived after the widening.
    midstream: u32,
    /// A partial line is pending completion: (tail to write, is_good).
    partial: Option<(String, bool)>,
}

impl TrafficWriter {
    fn new(cfg: &SoakConfig) -> Self {
        let universe = cfg.users + cfg.extra_users;
        Self {
            rng: Xoshiro256pp::new(split_seed(cfg.seed, 0x50AC)),
            active_users: cfg.users,
            universe,
            cascade_len: cfg.cascade_len.max(1),
            defect_every: cfg.defect_every,
            time: 0,
            lines: 0,
            good: 0,
            bad: 0,
            seen: vec![false; universe as usize],
            unlocked: false,
            midstream: 0,
            partial: None,
        }
    }

    /// Widens the user population to the full universe; users first seen
    /// from here on count as mid-stream arrivals (the growth axis).
    fn unlock_users(&mut self) {
        self.active_users = self.universe;
        self.unlocked = true;
    }

    fn mark_user(&mut self, user: u32) {
        if !self.seen[user as usize] {
            self.seen[user as usize] = true;
            if self.unlocked {
                self.midstream += 1;
            }
        }
    }

    fn append_chunk(
        &mut self,
        log: &Path,
        shadow: &Path,
        records: u32,
        tear_tail: bool,
    ) -> std::io::Result<()> {
        // Build the chunk once, append it to both the live log (what the
        // pipeline consumes and compacts) and the shadow log (the
        // untouched ground-truth stream the restore/bit-identity gates
        // compare against). Torn tails land identically in both.
        let mut buf: Vec<u8> = Vec::new();
        if let Some((tail, good)) = self.partial.take() {
            // Complete the line the previous chunk tore; only now does it
            // become a record (or a quarantined defect).
            writeln!(buf, "{tail}")?;
            if good {
                self.good += 1;
            } else {
                self.bad += 1;
            }
        }
        for i in 0..records {
            self.lines += 1;
            self.time += 1;
            let torn = tear_tail && i + 1 == records;
            if self.defect_every > 0 && self.lines % self.defect_every as u64 == 0 {
                // Garbage on schedule: torn garbage stays garbage once
                // completed, so the ledger is decided at completion time.
                if torn {
                    write!(buf, "corrupt")?;
                    self.partial = Some(("ed tail <<>>".into(), false));
                } else {
                    writeln!(buf, "garbage line {}", self.lines)?;
                    self.bad += 1;
                }
                continue;
            }
            // Cascades: each item spans ~cascade_len lines, with a ±1
            // group jitter so two cascades interleave; once the line
            // counter moves past an item's span it goes quiet and the
            // pipeline's close_after threshold can retire it.
            let user = self.rng.below(self.active_users as u64) as u32;
            self.mark_user(user);
            let group = self.lines / self.cascade_len as u64;
            let item = (group + self.rng.below(2)) as u32;
            if torn {
                write!(buf, "{user} {item}")?;
                self.partial = Some((format!(" {}", self.time), true));
            } else {
                writeln!(buf, "{user} {item} {}", self.time)?;
                self.good += 1;
            }
        }
        for path in [log, shadow] {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            f.write_all(&buf)?;
            f.flush()?;
        }
        Ok(())
    }

    /// Completes any pending partial line (end of traffic).
    fn finish(&mut self, log: &Path, shadow: &Path) -> std::io::Result<()> {
        self.append_chunk(log, shadow, 0, false)
    }
}

/// Ring-with-shortcuts social graph: every user influences the next two.
fn soak_graph(users: u32) -> Arc<DiGraph> {
    let mut b = GraphBuilder::with_nodes(users);
    for i in 0..users {
        b.add_edge(NodeId(i), NodeId((i + 1) % users));
        b.add_edge(NodeId(i), NodeId((i + 3) % users));
    }
    Arc::new(b.build())
}

/// The per-cycle fault schedule: early cycles exercise every fault class,
/// later cycles run clean so the pipeline also proves it can catch up.
fn fault_plan_for(cycle: u32) -> Arc<FaultPlan> {
    Arc::new(match cycle {
        // Exhausting the first snapshot's whole retry chain (default
        // publish_max_attempts = 4) proves graceful degradation.
        0 => FaultPlan::none()
            .with_tailer_panics(vec![20])
            .with_publish_failures(vec![1, 2, 3, 4]),
        // A transient journal disk fault (attempt 3 fails, the in-place
        // retry succeeds) on top of trainer panics and a torn slot.
        1 => FaultPlan::none()
            .with_trainer_panics(vec![1, 3])
            .with_journal_truncations(vec![2])
            .with_journal_write_failures(vec![3]),
        // Disk faults on the maintenance paths: the first compaction
        // attempt, the first archive segment seal, and the first
        // snapshot-export attempt all fail ENOSPC-style and must be
        // retried in place, while the publisher also panics and slows.
        2 => FaultPlan::none()
            .with_publisher_panics(vec![1])
            .with_publish_delay(Duration::from_millis(2))
            .with_tailer_panics(vec![40])
            .with_compaction_failures(vec![1])
            .with_archive_seal_failures(vec![1])
            .with_snapshot_write_failures(vec![1]),
        // The semantic attack: the first snapshot of this incarnation has
        // intact bits but inverted rankings — only the quality gate can
        // catch it. Plus one journal write whose whole retry chain
        // (disk_max_attempts = 3 → attempts 4,5,6) exhausts: the commit
        // is skipped and training must continue on a wider replay window.
        // And the first archive-expiry manifest commit fails mid-write:
        // the old boundary survives and the retry must land.
        3 => FaultPlan::none()
            .with_poisoned_snapshots(vec![1])
            .with_journal_write_failures(vec![4, 5, 6])
            .with_expiry_failures(vec![1]),
        _ => FaultPlan::none(),
    })
}

fn gauge(snapshot: &inf2vec_obs::Snapshot, name: &str) -> Option<u64> {
    match snapshot.get(name)?.value {
        SampleValue::Gauge(v) => Some(v as u64),
        _ => None,
    }
}

fn log_len(log: &Path) -> u64 {
    std::fs::metadata(log).map(|m| m.len()).unwrap_or(0)
}

/// Folds one incarnation's archive counters into the running total.
fn accumulate(total: &mut ArchiveCounters, inc: ArchiveCounters) {
    total.segments_sealed += inc.segments_sealed;
    total.segments_expired += inc.segments_expired;
    total.bytes_sealed += inc.bytes_sealed;
    total.bytes_reclaimed += inc.bytes_reclaimed;
    total.bytes_dropped += inc.bytes_dropped;
}

/// Runs the full soak in `workdir` (created if missing; the log, the
/// shadow ground-truth log, the segmented archive directory, both journal
/// directories, the snapshot-export directory, and the restored/verify
/// logs live there).
pub fn run_soak(cfg: &SoakConfig, workdir: &Path) -> Result<SoakReport, Inf2vecError> {
    std::fs::create_dir_all(workdir)?;
    let log = workdir.join("actions.log");
    let shadow = workdir.join("shadow.log");
    let journal_dir = workdir.join("journal");
    // A stale workdir would double-count traffic: start clean.
    let _ = std::fs::remove_file(&log);
    let _ = std::fs::remove_file(&shadow);
    let _ = std::fs::remove_file(archive_path(&log));
    let _ = std::fs::remove_dir_all(archive_dir(&log));
    let _ = std::fs::remove_file(workdir.join("verify.log"));
    let _ = std::fs::remove_file(workdir.join("restored.log"));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let _ = std::fs::remove_dir_all(workdir.join("journal-verify"));
    let _ = std::fs::remove_dir_all(workdir.join("snapshots"));

    let universe = cfg.users + cfg.extra_users;
    let mut pipe_cfg = cfg.pipeline.clone();
    pipe_cfg.inf2vec.seed = cfg.seed;
    pipe_cfg.user_capacity = universe as usize;
    pipe_cfg.log_budget_bytes = cfg.log_budget_bytes;
    pipe_cfg.archive_compacted = true;
    pipe_cfg.archive_max_segments = cfg.archive_max_segments;
    pipe_cfg.archive_max_bytes = cfg.archive_max_bytes;
    pipe_cfg.probe_pairs = cfg.probe_pairs;
    pipe_cfg.snapshot_dir = Some(workdir.join("snapshots"));
    // Tee the pipeline's event stream into a memory sink so the harness
    // can reconstruct causal traces afterwards — without stealing the
    // stream from whatever recorder the caller configured. The crash
    // cycles always run with telemetry on; the bit-identity verify run
    // below runs with it off, so the soak also proves tracing does not
    // perturb training.
    let mem = Arc::new(inf2vec_obs::MemorySink::new());
    let recorder: Arc<dyn inf2vec_obs::Recorder> = match pipe_cfg.telemetry.recorder() {
        Some(r) => Arc::new(inf2vec_obs::TeeRecorder::new(
            r,
            Arc::clone(&mem) as Arc<dyn inf2vec_obs::Recorder>,
        )),
        None => Arc::clone(&mem) as Arc<dyn inf2vec_obs::Recorder>,
    };
    // `fork_recorder` keeps the caller's registry (and flight ring) live,
    // so an introspection endpoint started on the caller's handle keeps
    // seeing the pipeline's metrics while the soak runs.
    pipe_cfg.telemetry = pipe_cfg.telemetry.fork_recorder(recorder);
    let telemetry = pipe_cfg.telemetry.clone();
    let graph = soak_graph(cfg.users);
    let registry = Arc::new(ModelRegistry::new(Some(pipe_cfg.inf2vec.k)));
    let sink = Arc::new(RegistrySink::new(Arc::clone(&registry)));

    let mut writer = TrafficWriter::new(cfg);
    let min_cycles = cfg.cycles.max(4);
    let started = Instant::now();
    let mut restarts = (0u32, 0u32, 0u32);
    let mut publishes = (0u64, 0u64, 0u64, 0u64);
    let mut compactions = 0u64;
    let mut max_live = 0u64;
    let mut poisoned_served = false;
    let mut arch = ArchiveCounters::default();
    let mut max_archive_segments = 0u64;
    let mut budget_held = true;
    let mut track = |r: &Reconciliation| {
        restarts.0 += r.restarts.0;
        restarts.1 += r.restarts.1;
        restarts.2 += r.restarts.2;
        publishes.0 += r.publishes_ok;
        publishes.1 += r.publishes_failed;
        publishes.2 += r.publishes_withheld;
        publishes.3 += r.publishes_skipped;
    };

    let mut cycle = 0u32;
    loop {
        // Wall-clock mode keeps cycling (and re-playing the fault
        // schedule) until the requested real time has elapsed; the
        // accelerated mode runs exactly `cycles` chunks.
        let keep_going = cycle < min_cycles
            || cfg.wall_clock.is_some_and(|d| started.elapsed() < d);
        if !keep_going {
            break;
        }
        if cycle == 1 {
            // Users beyond the graph start arriving from the second chunk:
            // the model's row space must grow mid-stream, across crashes.
            writer.unlock_users();
        }
        writer.append_chunk(&log, &shadow, cfg.records_per_chunk, cycle % 2 == 0)?;
        let mut p = Pipeline::with_runtime(
            pipe_cfg.clone(),
            &log,
            &journal_dir,
            Arc::clone(&graph),
            Arc::clone(&sink) as Arc<dyn crate::publish::PublishSink>,
            system_clock(),
            fault_plan_for(cycle % 6),
        )?;
        p.run_until_idle()?;
        // Simulated hard crash: stop the stages without a final journal
        // commit (recovery replays from the last batch boundary). The
        // join settles in-flight publish accounting before we read it.
        p.crash();
        track(&p.reconciliation());
        compactions += p.compactions();
        accumulate(&mut arch, p.archive_counters());
        if let Some(store) = p.archive_store() {
            let n = store.segments().len() as u64;
            max_archive_segments = max_archive_segments.max(n);
            // One segment of slack: a boundary that sealed but degraded
            // before its expiry step (injected compaction fault) shows
            // budget+1 until the next boundary catches up.
            if cfg.archive_max_segments > 0 && n as usize > cfg.archive_max_segments + 1 {
                budget_held = false;
            }
            if cfg.archive_max_bytes > 0
                && store.payload_bytes() > cfg.archive_max_bytes.saturating_mul(2)
            {
                budget_held = false;
            }
        }
        max_live = max_live.max(log_len(&log));
        if let Some(v) = registry.current() {
            // A poisoned snapshot must never reach the serving path.
            poisoned_served |= v.label().ends_with("-poisoned");
        }
        telemetry.emit(
            inf2vec_obs::Event::new("soak.cycle")
                .u64("cycle", cycle as u64)
                .u64("episodes", p.episodes_applied())
                .u64("offset", p.position().offset),
        );
        drop(p);
        if cfg.wall_clock.is_some() {
            std::thread::sleep(cfg.wall_clock_pause);
        }
        cycle += 1;
    }
    let cycles = cycle;

    // Final incarnation: complete torn traffic, drain, stop gracefully.
    writer.finish(&log, &shadow)?;
    let mut p = Pipeline::with_runtime(
        pipe_cfg.clone(),
        &log,
        &journal_dir,
        Arc::clone(&graph),
        Arc::clone(&sink) as Arc<dyn crate::publish::PublishSink>,
        system_clock(),
        Arc::new(FaultPlan::none()),
    )?;
    p.run_until_idle()?;
    p.drain_open_episodes()?;
    p.shutdown()?;
    let recon = p.reconciliation();
    track(&recon);
    compactions += p.compactions();
    accumulate(&mut arch, p.archive_counters());
    max_live = max_live.max(log_len(&log));
    let final_rows = p.model_rows();
    if let Some(v) = registry.current() {
        poisoned_served |= v.label().ends_with("-poisoned");
    }
    let balanced = recon.balances(writer.good, writer.bad);

    // Disk boundedness: the live log never strayed past twice the budget
    // (one uncompacted in-flight chunk of slack). Whether compaction
    // fired *often enough* is scenario-dependent — the default combined
    // scenario asserts `compactions >= 3` on top of this.
    let disk_bounded =
        cfg.log_budget_bytes == 0 || max_live <= cfg.log_budget_bytes.saturating_mul(2);

    // Growth: a fifth of the universe arrived mid-stream and the model's
    // row space followed them past the base graph.
    let growth_ok = cfg.extra_users == 0
        || (u64::from(writer.midstream) * 5 >= u64::from(universe)
            && final_rows > cfg.users as usize);

    // Quality gate: the poisoned snapshot was withheld, nothing poisoned
    // was ever observed serving, and a model is still being served.
    let quality_gate_held = cfg.probe_pairs == 0
        || (publishes.2 >= 1 && !poisoned_served && registry.current().is_some());

    // Cross-check the ledger against the exported gauges.
    let snap = telemetry.snapshot();
    let gauges_consistent = !telemetry.enabled()
        || (gauge(&snap, "inf2vec_pipeline_records_applied") == Some(recon.records_applied)
            && gauge(&snap, "inf2vec_pipeline_records_quarantined")
                == Some(recon.records_quarantined)
            && gauge(&snap, "inf2vec_pipeline_records_pending") == Some(recon.records_pending));

    // Causal-trace completeness: replay the teed event stream into a
    // TraceIndex and require every accepted record to reconstruct with
    // valid deterministic ids and a fate agreeing with the ledger.
    let events = mem.events();
    let idx = crate::trace::TraceIndex::from_events(&events);
    let (indexed, applied, pending, quarantined) = idx.counts();
    let trace_complete = idx.chain_complete(cfg.seed).is_ok()
        && indexed == recon.records_seen
        && applied == recon.records_applied
        && pending == recon.records_pending
        && quarantined == recon.records_quarantined;

    // Archive verify + restore, judged against the shadow log — the
    // writer's untouched ground-truth byte stream. Three gates come out
    // of this pass:
    //
    // - `restore_identical`: deep-verify passes and the restored
    //   `archive ++ live` payload is byte-identical to the ground truth
    //   from the expired-prefix boundary on;
    // - `expiry_exact`: boundary + archived + live exactly tiles the
    //   ground-truth stream, and the reclaimed/dropped counters sum to
    //   exactly the boundary (every expired byte accounted once);
    // - `bit_identical` (below): the fresh run consumes the *restored*
    //   bytes, so bit-identity is proven through the restore path.
    let shadow_bytes = std::fs::read(&shadow)?;
    let restore_started = Instant::now();
    let store = ArchiveStore::open(archive_dir(&log))?;
    let restored_path = workdir.join("restored.log");
    let verify_ok = store.verify(Some(&log)).is_ok();
    let restore_res = store.restore_to(&log, &restored_path);
    let restore_verify_secs = restore_started.elapsed().as_secs_f64();
    let segments_final = store.segments().len() as u64;
    max_archive_segments = max_archive_segments.max(segments_final);
    if cfg.archive_max_segments > 0 && segments_final as usize > cfg.archive_max_segments + 1 {
        budget_held = false;
    }
    let verify_log = workdir.join("verify.log");
    let (restore_identical, expiry_exact) = match &restore_res {
        Ok(stats) => {
            let restored = std::fs::read(&restored_path)?;
            let payload = &restored[stats.sentinel_len as usize..];
            let start = (stats.start_offset as usize).min(shadow_bytes.len());
            let identical = verify_ok
                && stats.start_offset as usize == start
                && payload == &shadow_bytes[start..];
            let tiles = stats.start_offset + stats.archived_bytes + stats.live_bytes
                == shadow_bytes.len() as u64;
            let counted =
                arch.bytes_reclaimed + arch.bytes_dropped == stats.start_offset;
            // The verify log: ground-truth prefix below the boundary,
            // then literally the restored bytes.
            let mut full = shadow_bytes[..start].to_vec();
            full.extend_from_slice(payload);
            std::fs::write(&verify_log, full)?;
            (identical, tiles && counted)
        }
        Err(_) => {
            // Restore failed (gate already lost): fall back to the
            // ground truth so the bit-identity run still reports.
            std::fs::write(&verify_log, &shadow_bytes)?;
            (false, false)
        }
    };
    let disk_budget_held = disk_bounded && budget_held;
    let verify_registry = Arc::new(ModelRegistry::new(Some(pipe_cfg.inf2vec.k)));
    let mut verify_cfg = pipe_cfg.clone();
    verify_cfg.telemetry = inf2vec_obs::Telemetry::disabled();
    verify_cfg.log_budget_bytes = 0;
    verify_cfg.probe_pairs = 0;
    verify_cfg.snapshot_dir = None;
    let mut q = Pipeline::with_runtime(
        verify_cfg,
        &verify_log,
        workdir.join("journal-verify"),
        Arc::clone(&graph),
        Arc::new(RegistrySink::new(verify_registry)) as Arc<dyn crate::publish::PublishSink>,
        system_clock(),
        Arc::new(FaultPlan::none()),
    )?;
    q.run_until_idle()?;
    q.drain_open_episodes()?;
    q.shutdown()?;
    let bit_identical = q.reconciliation().store_checksum == recon.store_checksum
        && q.model_rows() == final_rows;

    Ok(SoakReport {
        written_good: writer.good,
        written_bad: writer.bad,
        cycles,
        restarts,
        publishes,
        versions_installed: registry.installed_count(),
        compactions,
        max_live_log_bytes: max_live,
        log_budget_bytes: cfg.log_budget_bytes,
        disk_bounded,
        segments_sealed: arch.segments_sealed,
        segments_expired: arch.segments_expired,
        bytes_reclaimed: arch.bytes_reclaimed,
        bytes_dropped: arch.bytes_dropped,
        segments_final,
        max_archive_segments,
        archive_max_segments: cfg.archive_max_segments,
        restore_verify_secs,
        disk_budget_held,
        expiry_exact,
        restore_identical,
        universe,
        users_midstream: writer.midstream,
        final_rows,
        growth_ok,
        quality_gate_held,
        reconciliation: recon,
        balanced,
        gauges_consistent,
        bit_identical,
        trace_complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tmp_dir;

    #[test]
    fn soak_reconciles_exactly_and_replays_bit_identically() {
        let dir = tmp_dir("soak");
        let cfg = SoakConfig {
            pipeline: PipelineConfig {
                telemetry: inf2vec_obs::Telemetry::with_registry(),
                ..SoakConfig::default().pipeline
            },
            ..SoakConfig::default()
        };
        let report = run_soak(&cfg, &dir).unwrap();
        assert!(
            report.balanced,
            "every record in exactly one bucket: {}",
            report.to_json()
        );
        assert!(report.gauges_consistent, "{}", report.to_json());
        assert!(report.bit_identical, "{}", report.to_json());
        assert!(
            report.trace_complete,
            "every applied record needs a complete trace chain: {}",
            report.to_json()
        );
        assert!(
            report.restarts.0 + report.restarts.1 + report.restarts.2 >= 3,
            "the fault schedule must actually fire: {}",
            report.to_json()
        );
        assert!(report.publishes.1 >= 1, "a publish retry chain must exhaust");
        assert!(report.versions_installed >= 1, "live registry took installs");
        assert!(report.written_bad > 0, "defect traffic present");
        assert!(
            report.compactions >= 3 && report.disk_bounded,
            "the live log must stay under budget via compaction: {}",
            report.to_json()
        );
        assert!(
            report.segments_sealed >= 3 && report.segments_expired >= 1,
            "the archive must seal and the retention policy must fire: {}",
            report.to_json()
        );
        assert!(
            report.disk_budget_held && report.expiry_exact && report.restore_identical,
            "archive budgets held, expiry accounted exactly, restore identical: {}",
            report.to_json()
        );
        assert_eq!(report.bytes_dropped, 0, "all seal faults were recovered in place");
        assert!(
            report.growth_ok && report.final_rows > cfg.users as usize,
            "mid-stream users must grow the model: {}",
            report.to_json()
        );
        assert!(
            report.publishes.2 >= 1 && report.quality_gate_held,
            "the poisoned snapshot must be withheld: {}",
            report.to_json()
        );
        assert!(report.passed());
    }

    /// Wall-clock mode keeps cycling against real time and still passes
    /// every gate (scaled way down: a fraction of a second of real time).
    #[test]
    fn wall_clock_mode_cycles_until_elapsed() {
        let dir = tmp_dir("soak-wallclock");
        let cfg = SoakConfig {
            records_per_chunk: 60,
            wall_clock: Some(Duration::from_millis(300)),
            wall_clock_pause: Duration::from_millis(20),
            ..SoakConfig::default()
        };
        let report = run_soak(&cfg, &dir).unwrap();
        assert!(report.cycles >= 4, "at least the minimum cycles ran");
        assert!(
            report.passed(),
            "wall-clock soak holds every gate: {}",
            report.to_json()
        );
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let dir = tmp_dir("soak-json");
        let report = run_soak(
            &SoakConfig {
                cycles: 4,
                records_per_chunk: 60,
                ..SoakConfig::default()
            },
            &dir,
        )
        .unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"bit_identical\":true"), "{json}");
        assert!(json.contains("\"compactions\":"), "{json}");
        assert!(json.contains("\"withheld\":"), "{json}");
    }
}
