//! Fault-injection soak: crash cycles, torn tails, exact reconciliation.
//!
//! The harness plays both sides of the pipeline's contract:
//!
//! 1. a deterministic **traffic writer** appends chunks of synthetic
//!    action records to the log — including scheduled garbage lines and
//!    *partial* lines (a torn producer) completed by the next chunk;
//! 2. between chunks the pipeline is **crashed** (dropped without a
//!    graceful shutdown) and reopened from its journal, while a per-cycle
//!    [`FaultPlan`] panics stages, fails/slows publishes, and shears
//!    journal slots mid-run;
//! 3. at the end, every written record must sit in exactly one of
//!    {applied, quarantined, pending} — checked against the writer's own
//!    ledger *and* against the obs gauges — and an uninterrupted
//!    fresh-journal run over the same log must produce a bit-identical
//!    model ([`inf2vec_serve::store_checksum`]).

use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use inf2vec_graph::{DiGraph, GraphBuilder, NodeId};
use inf2vec_obs::SampleValue;
use inf2vec_serve::ModelRegistry;
use inf2vec_util::error::Inf2vecError;
use inf2vec_util::rng::Xoshiro256pp;
use inf2vec_util::{split_seed, system_clock};

use crate::config::PipelineConfig;
use crate::faults::FaultPlan;
use crate::publish::RegistrySink;
use crate::runner::{Pipeline, Reconciliation};

/// Soak shape. Defaults give a few seconds of work — CI-sized.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Users in the social graph (ring-with-shortcuts).
    pub users: u32,
    /// Records per cascade: each item stays active for roughly this many
    /// log lines, then goes quiet (and so eventually closes). Adjacent
    /// cascades overlap, keeping a couple of episodes open at all times.
    pub cascade_len: u32,
    /// Crash/recover cycles (one traffic chunk each). Minimum 3 for the
    /// robustness guarantee the crate advertises.
    pub cycles: u32,
    /// Records appended per chunk.
    pub records_per_chunk: u32,
    /// Every Nth line is garbage (quarantine traffic); 0 disables.
    pub defect_every: u32,
    /// Master seed for traffic and training.
    pub seed: u64,
    /// Pipeline knobs (the harness overrides seed/telemetry coherently).
    pub pipeline: PipelineConfig,
}

impl Default for SoakConfig {
    fn default() -> Self {
        Self {
            users: 24,
            cascade_len: 20,
            cycles: 4,
            records_per_chunk: 160,
            defect_every: 13,
            seed: 42,
            pipeline: PipelineConfig {
                close_after: 24,
                batch_max: 32,
                publish_every_episodes: 2,
                publish_backoff: Duration::from_millis(1),
                publish_backoff_cap: Duration::from_millis(4),
                inf2vec: inf2vec_core::Inf2vecConfig {
                    k: 8,
                    l: 8,
                    ..inf2vec_core::Inf2vecConfig::default()
                },
                ..PipelineConfig::default()
            },
        }
    }
}

/// What the soak proved (serializable for CI artifacts).
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Well-formed records the writer produced.
    pub written_good: u64,
    /// Garbage lines the writer produced.
    pub written_bad: u64,
    /// Crash/recover cycles driven.
    pub cycles: u32,
    /// Stage restarts across all incarnations (tailer, trainer, publisher).
    pub restarts: (u32, u32, u32),
    /// Publishes across all incarnations (ok, failed, skipped).
    pub publishes: (u64, u64, u64),
    /// Model versions actually installed in the registry.
    pub versions_installed: u64,
    /// The final incarnation's ledger.
    pub reconciliation: Reconciliation,
    /// `applied + pending == written_good` and `quarantined == written_bad`.
    pub balanced: bool,
    /// The obs gauges agree with the ledger.
    pub gauges_consistent: bool,
    /// An uninterrupted fresh run over the same log produced the same
    /// [`inf2vec_serve::store_checksum`].
    pub bit_identical: bool,
    /// Every accepted record reconstructed to a complete causal chain
    /// (valid deterministic trace ids, fate agreeing with the ledger).
    pub trace_complete: bool,
}

impl SoakReport {
    /// Every invariant the soak exists to prove.
    pub fn passed(&self) -> bool {
        self.balanced && self.gauges_consistent && self.bit_identical && self.trace_complete
    }

    /// One-object JSON rendering (CI artifact).
    pub fn to_json(&self) -> String {
        let r = &self.reconciliation;
        format!(
            concat!(
                "{{\"written_good\":{},\"written_bad\":{},\"cycles\":{},",
                "\"restarts\":{{\"tail\":{},\"train\":{},\"publish\":{}}},",
                "\"publishes\":{{\"ok\":{},\"failed\":{},\"skipped\":{}}},",
                "\"versions_installed\":{},",
                "\"records\":{{\"seen\":{},\"applied\":{},\"quarantined\":{},\"pending\":{}}},",
                "\"episodes_applied\":{},\"pairs_applied\":{},",
                "\"store_checksum\":\"{:016x}\",",
                "\"balanced\":{},\"gauges_consistent\":{},\"bit_identical\":{},",
                "\"trace_complete\":{},\"passed\":{}}}"
            ),
            self.written_good,
            self.written_bad,
            self.cycles,
            self.restarts.0,
            self.restarts.1,
            self.restarts.2,
            self.publishes.0,
            self.publishes.1,
            self.publishes.2,
            self.versions_installed,
            r.records_seen,
            r.records_applied,
            r.records_quarantined,
            r.records_pending,
            r.episodes_applied,
            r.pairs_applied,
            r.store_checksum,
            self.balanced,
            self.gauges_consistent,
            self.bit_identical,
            self.trace_complete,
            self.passed(),
        )
    }
}

/// Deterministic traffic: interleaved cascades over a small item pool,
/// garbage lines on a schedule, and torn (partial) lines at chunk seams.
struct TrafficWriter {
    rng: Xoshiro256pp,
    users: u32,
    cascade_len: u32,
    defect_every: u32,
    time: u64,
    lines: u64,
    good: u64,
    bad: u64,
    /// A partial line is pending completion: (tail to write, is_good).
    partial: Option<(String, bool)>,
}

impl TrafficWriter {
    fn new(cfg: &SoakConfig) -> Self {
        Self {
            rng: Xoshiro256pp::new(split_seed(cfg.seed, 0x50AC)),
            users: cfg.users,
            cascade_len: cfg.cascade_len.max(1),
            defect_every: cfg.defect_every,
            time: 0,
            lines: 0,
            good: 0,
            bad: 0,
            partial: None,
        }
    }

    fn append_chunk(
        &mut self,
        log: &Path,
        records: u32,
        tear_tail: bool,
    ) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(log)?;
        if let Some((tail, good)) = self.partial.take() {
            // Complete the line the previous chunk tore; only now does it
            // become a record (or a quarantined defect).
            writeln!(f, "{tail}")?;
            if good {
                self.good += 1;
            } else {
                self.bad += 1;
            }
        }
        for i in 0..records {
            self.lines += 1;
            self.time += 1;
            let torn = tear_tail && i + 1 == records;
            if self.defect_every > 0 && self.lines % self.defect_every as u64 == 0 {
                // Garbage on schedule: torn garbage stays garbage once
                // completed, so the ledger is decided at completion time.
                if torn {
                    write!(f, "corrupt")?;
                    self.partial = Some(("ed tail <<>>".into(), false));
                } else {
                    writeln!(f, "garbage line {}", self.lines)?;
                    self.bad += 1;
                }
                continue;
            }
            // Cascades: each item spans ~cascade_len lines, with a ±1
            // group jitter so two cascades interleave; once the line
            // counter moves past an item's span it goes quiet and the
            // pipeline's close_after threshold can retire it.
            let user = self.rng.below(self.users as u64) as u32;
            let group = self.lines / self.cascade_len as u64;
            let item = (group + self.rng.below(2)) as u32;
            if torn {
                write!(f, "{user} {item}")?;
                self.partial = Some((format!(" {}", self.time), true));
            } else {
                writeln!(f, "{user} {item} {}", self.time)?;
                self.good += 1;
            }
        }
        f.flush()
    }

    /// Completes any pending partial line (end of traffic).
    fn finish(&mut self, log: &Path) -> std::io::Result<()> {
        self.append_chunk(log, 0, false)
    }
}

/// Ring-with-shortcuts social graph: every user influences the next two.
fn soak_graph(users: u32) -> Arc<DiGraph> {
    let mut b = GraphBuilder::with_nodes(users);
    for i in 0..users {
        b.add_edge(NodeId(i), NodeId((i + 1) % users));
        b.add_edge(NodeId(i), NodeId((i + 3) % users));
    }
    Arc::new(b.build())
}

/// The per-cycle fault schedule: early cycles exercise every fault class,
/// later cycles run clean so the pipeline also proves it can catch up.
fn fault_plan_for(cycle: u32) -> Arc<FaultPlan> {
    Arc::new(match cycle {
        // Exhausting the first snapshot's whole retry chain (default
        // publish_max_attempts = 4) proves graceful degradation.
        0 => FaultPlan::none()
            .with_tailer_panics(vec![20])
            .with_publish_failures(vec![1, 2, 3, 4]),
        1 => FaultPlan::none()
            .with_trainer_panics(vec![1, 3])
            .with_journal_truncations(vec![2]),
        2 => FaultPlan::none()
            .with_publisher_panics(vec![1])
            .with_publish_delay(Duration::from_millis(2))
            .with_tailer_panics(vec![40]),
        _ => FaultPlan::none(),
    })
}

fn gauge(snapshot: &inf2vec_obs::Snapshot, name: &str) -> Option<u64> {
    match snapshot.get(name)?.value {
        SampleValue::Gauge(v) => Some(v as u64),
        _ => None,
    }
}

/// Runs the full soak in `workdir` (created if missing; the log, both
/// journal directories, and nothing else live there).
pub fn run_soak(cfg: &SoakConfig, workdir: &Path) -> Result<SoakReport, Inf2vecError> {
    std::fs::create_dir_all(workdir)?;
    let log = workdir.join("actions.log");
    let journal_dir = workdir.join("journal");
    // A stale workdir would double-count traffic: start clean.
    let _ = std::fs::remove_file(&log);
    let _ = std::fs::remove_dir_all(&journal_dir);
    let _ = std::fs::remove_dir_all(workdir.join("journal-verify"));

    let mut pipe_cfg = cfg.pipeline.clone();
    pipe_cfg.inf2vec.seed = cfg.seed;
    // Tee the pipeline's event stream into a memory sink so the harness
    // can reconstruct causal traces afterwards — without stealing the
    // stream from whatever recorder the caller configured. The crash
    // cycles always run with telemetry on; the bit-identity verify run
    // below runs with it off, so the soak also proves tracing does not
    // perturb training.
    let mem = Arc::new(inf2vec_obs::MemorySink::new());
    let recorder: Arc<dyn inf2vec_obs::Recorder> = match pipe_cfg.telemetry.recorder() {
        Some(r) => Arc::new(inf2vec_obs::TeeRecorder::new(
            r,
            Arc::clone(&mem) as Arc<dyn inf2vec_obs::Recorder>,
        )),
        None => Arc::clone(&mem) as Arc<dyn inf2vec_obs::Recorder>,
    };
    // `fork_recorder` keeps the caller's registry (and flight ring) live,
    // so an introspection endpoint started on the caller's handle keeps
    // seeing the pipeline's metrics while the soak runs.
    pipe_cfg.telemetry = pipe_cfg.telemetry.fork_recorder(recorder);
    let telemetry = pipe_cfg.telemetry.clone();
    let graph = soak_graph(cfg.users);
    let registry = Arc::new(ModelRegistry::new(Some(pipe_cfg.inf2vec.k)));
    let sink = Arc::new(RegistrySink::new(Arc::clone(&registry)));

    let mut writer = TrafficWriter::new(cfg);
    let cycles = cfg.cycles.max(3);
    let mut restarts = (0u32, 0u32, 0u32);
    let mut publishes = (0u64, 0u64, 0u64);
    let mut track = |r: &Reconciliation| {
        restarts.0 += r.restarts.0;
        restarts.1 += r.restarts.1;
        restarts.2 += r.restarts.2;
        publishes.0 += r.publishes_ok;
        publishes.1 += r.publishes_failed;
        publishes.2 += r.publishes_skipped;
    };

    for cycle in 0..cycles {
        writer.append_chunk(&log, cfg.records_per_chunk, cycle % 2 == 0)?;
        let mut p = Pipeline::with_runtime(
            pipe_cfg.clone(),
            &log,
            &journal_dir,
            Arc::clone(&graph),
            Arc::clone(&sink) as Arc<dyn crate::publish::PublishSink>,
            system_clock(),
            fault_plan_for(cycle),
        )?;
        p.run_until_idle()?;
        // Simulated hard crash: stop the stages without a final journal
        // commit (recovery replays from the last batch boundary). The
        // join settles in-flight publish accounting before we read it.
        p.crash();
        track(&p.reconciliation());
        telemetry.emit(
            inf2vec_obs::Event::new("soak.cycle")
                .u64("cycle", cycle as u64)
                .u64("episodes", p.episodes_applied())
                .u64("offset", p.position().offset),
        );
        drop(p);
    }

    // Final incarnation: complete torn traffic, drain, stop gracefully.
    writer.finish(&log)?;
    let mut p = Pipeline::with_runtime(
        pipe_cfg.clone(),
        &log,
        &journal_dir,
        Arc::clone(&graph),
        Arc::clone(&sink) as Arc<dyn crate::publish::PublishSink>,
        system_clock(),
        Arc::new(FaultPlan::none()),
    )?;
    p.run_until_idle()?;
    p.drain_open_episodes()?;
    p.shutdown()?;
    let recon = p.reconciliation();
    track(&recon);
    let balanced = recon.balances(writer.good, writer.bad);

    // Cross-check the ledger against the exported gauges.
    let snap = telemetry.snapshot();
    let gauges_consistent = !telemetry.enabled()
        || (gauge(&snap, "inf2vec_pipeline_records_applied") == Some(recon.records_applied)
            && gauge(&snap, "inf2vec_pipeline_records_quarantined")
                == Some(recon.records_quarantined)
            && gauge(&snap, "inf2vec_pipeline_records_pending") == Some(recon.records_pending));

    // Causal-trace completeness: replay the teed event stream into a
    // TraceIndex and require every accepted record to reconstruct with
    // valid deterministic ids and a fate agreeing with the ledger.
    let events = mem.events();
    let idx = crate::trace::TraceIndex::from_events(&events);
    let (indexed, applied, pending, quarantined) = idx.counts();
    let trace_complete = idx.chain_complete(cfg.seed).is_ok()
        && indexed == recon.records_seen
        && applied == recon.records_applied
        && pending == recon.records_pending
        && quarantined == recon.records_quarantined;

    // Bit-identity witness: a fresh, uninterrupted, fault-free run over
    // the same bytes must land on the same checksum.
    let verify_registry = Arc::new(ModelRegistry::new(Some(pipe_cfg.inf2vec.k)));
    let mut verify_cfg = pipe_cfg.clone();
    verify_cfg.telemetry = inf2vec_obs::Telemetry::disabled();
    let mut q = Pipeline::with_runtime(
        verify_cfg,
        &log,
        workdir.join("journal-verify"),
        Arc::clone(&graph),
        Arc::new(RegistrySink::new(verify_registry)) as Arc<dyn crate::publish::PublishSink>,
        system_clock(),
        Arc::new(FaultPlan::none()),
    )?;
    q.run_until_idle()?;
    q.drain_open_episodes()?;
    q.shutdown()?;
    let bit_identical = q.reconciliation().store_checksum == recon.store_checksum;

    Ok(SoakReport {
        written_good: writer.good,
        written_bad: writer.bad,
        cycles,
        restarts,
        publishes,
        versions_installed: registry.installed_count(),
        reconciliation: recon,
        balanced,
        gauges_consistent,
        bit_identical,
        trace_complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tmp_dir;

    #[test]
    fn soak_reconciles_exactly_and_replays_bit_identically() {
        let dir = tmp_dir("soak");
        let cfg = SoakConfig {
            pipeline: PipelineConfig {
                telemetry: inf2vec_obs::Telemetry::with_registry(),
                ..SoakConfig::default().pipeline
            },
            ..SoakConfig::default()
        };
        let report = run_soak(&cfg, &dir).unwrap();
        assert!(
            report.balanced,
            "every record in exactly one bucket: {}",
            report.to_json()
        );
        assert!(report.gauges_consistent, "{}", report.to_json());
        assert!(report.bit_identical, "{}", report.to_json());
        assert!(
            report.trace_complete,
            "every applied record needs a complete trace chain: {}",
            report.to_json()
        );
        assert!(
            report.restarts.0 + report.restarts.1 + report.restarts.2 >= 3,
            "the fault schedule must actually fire: {}",
            report.to_json()
        );
        assert!(report.publishes.1 >= 1, "a publish retry chain must exhaust");
        assert!(report.versions_installed >= 1, "live registry took installs");
        assert!(report.written_bad > 0, "defect traffic present");
        assert!(report.passed());
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let dir = tmp_dir("soak-json");
        let report = run_soak(
            &SoakConfig {
                cycles: 3,
                records_per_chunk: 60,
                ..SoakConfig::default()
            },
            &dir,
        )
        .unwrap();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"bit_identical\":true"), "{json}");
    }
}
