//! Offline causal-trace reconstruction from the pipeline's event stream.
//!
//! The pipeline stamps four event kinds with deterministic trace ids
//! (`trace.accept`, `pipeline.quarantine`, `pipeline.episode`,
//! `pipeline.publish`). Record→episode membership is *not* carried on the
//! events — it is recovered here by replaying the accept stream through
//! the same open-episode discipline the trainer uses: an accepted record
//! joins its item's open episode and is retired by the next
//! `pipeline.episode` event for that item. Because every id and every
//! close decision is a pure function of journaled state, a JSONL file
//! that interleaves pre-crash and replayed events still reconstructs to
//! one consistent history (duplicate events are idempotent).
//!
//! [`TraceIndex`] is the queryable result; `repro trace` renders one
//! record's chain with [`TraceIndex::describe`], and the soak harness
//! checks [`TraceIndex::chain_complete`] over every applied record.

use std::collections::BTreeMap;

use inf2vec_obs::{Event, TraceCtx};
use inf2vec_util::FxHashMap;

/// What ultimately happened to one accepted record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordFate {
    /// Still folded into an open episode at the end of the stream.
    Pending,
    /// Applied to the model as part of episode `episode`.
    Applied {
        /// The `episodes_applied` sequence of the closing episode.
        episode: u64,
        /// Version of the first successful publish covering the episode
        /// (`None` while the record's training is not yet live).
        published: Option<u64>,
    },
}

/// One accepted record's reconstructed history.
#[derive(Debug, Clone)]
pub struct RecordTrace {
    /// Accepted-record sequence (1-based `records_seen`).
    pub seq: u64,
    /// Log line number the record came from.
    pub line: u64,
    /// Acting user.
    pub user: u64,
    /// Item (cascade) acted on.
    pub item: u64,
    /// Action timestamp from the log.
    pub time: u64,
    /// Trace id stamped on the accept event (parsed from hex).
    pub trace: Option<u64>,
    /// `t_ms` of the accept event, when the sink stamped one.
    pub accept_t_ms: Option<u64>,
    /// Where the record ended up.
    pub fate: RecordFate,
}

/// One applied episode, keyed by its `episodes_applied` sequence.
#[derive(Debug, Clone)]
pub struct EpisodeTrace {
    /// Item whose episode closed.
    pub item: u64,
    /// Distinct users in the episode.
    pub users: u64,
    /// Training pairs the episode produced.
    pub pairs: u64,
    /// Trace id stamped on the episode event.
    pub trace: Option<u64>,
    /// `t_ms` of the episode event.
    pub t_ms: Option<u64>,
}

/// One successful snapshot publish.
#[derive(Debug, Clone)]
pub struct PublishTrace {
    /// Registry version installed.
    pub version: u64,
    /// Episodes applied when the snapshot was captured: the publish
    /// covers episode sequences `0..episodes`.
    pub episodes: u64,
    /// Trace id stamped on the publish event.
    pub trace: Option<u64>,
    /// `t_ms` of the publish event.
    pub t_ms: Option<u64>,
}

/// One quarantined line.
#[derive(Debug, Clone)]
pub struct QuarantineTrace {
    /// Log line number of the defect.
    pub line: u64,
    /// Defect classification.
    pub kind: String,
    /// Trace id stamped on the quarantine event.
    pub trace: Option<u64>,
}

/// The reconstructed causal index over one pipeline event stream.
#[derive(Debug, Default)]
pub struct TraceIndex {
    records: BTreeMap<u64, RecordTrace>,
    episodes: BTreeMap<u64, EpisodeTrace>,
    publishes: BTreeMap<u64, PublishTrace>,
    quarantines: BTreeMap<u64, QuarantineTrace>,
}

fn hex_field(e: &Event, name: &str) -> Option<u64> {
    e.get(name).and_then(|v| v.as_str()).and_then(TraceCtx::parse_hex)
}

fn u64_field(e: &Event, name: &str) -> Option<u64> {
    e.get(name).and_then(|v| v.as_u64())
}

impl TraceIndex {
    /// Replays an event stream (log order) into a queryable index.
    /// Unknown event kinds are skipped; duplicate events from journal
    /// replay are idempotent (ids and membership are deterministic).
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> Self {
        let mut idx = Self::default();
        // Open-episode simulation: seqs currently folded into each item.
        let mut open: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
        for e in events {
            match e.kind() {
                "trace.accept" => {
                    let (Some(seq), Some(item)) = (u64_field(e, "seq"), u64_field(e, "item"))
                    else {
                        continue;
                    };
                    let members = open.entry(item).or_default();
                    if !members.contains(&seq) {
                        members.push(seq);
                    }
                    idx.records.insert(
                        seq,
                        RecordTrace {
                            seq,
                            line: u64_field(e, "line").unwrap_or(0),
                            user: u64_field(e, "user").unwrap_or(0),
                            item,
                            time: u64_field(e, "time").unwrap_or(0),
                            trace: hex_field(e, "trace"),
                            accept_t_ms: u64_field(e, "t_ms"),
                            fate: RecordFate::Pending,
                        },
                    );
                }
                "pipeline.episode" => {
                    let (Some(ep), Some(item)) = (u64_field(e, "seq"), u64_field(e, "item"))
                    else {
                        continue;
                    };
                    idx.episodes.insert(
                        ep,
                        EpisodeTrace {
                            item,
                            users: u64_field(e, "users").unwrap_or(0),
                            pairs: u64_field(e, "pairs").unwrap_or(0),
                            trace: hex_field(e, "trace"),
                            t_ms: u64_field(e, "t_ms"),
                        },
                    );
                    // Retire everything open for this item into episode ep.
                    for seq in open.remove(&item).unwrap_or_default() {
                        if let Some(r) = idx.records.get_mut(&seq) {
                            r.fate = RecordFate::Applied {
                                episode: ep,
                                published: None,
                            };
                        }
                    }
                }
                "pipeline.publish" => {
                    let (Some(version), Some(episodes)) =
                        (u64_field(e, "version"), u64_field(e, "episodes"))
                    else {
                        continue;
                    };
                    idx.publishes.insert(
                        version,
                        PublishTrace {
                            version,
                            episodes,
                            trace: hex_field(e, "trace"),
                            t_ms: u64_field(e, "t_ms"),
                        },
                    );
                }
                "pipeline.quarantine" => {
                    let Some(line) = u64_field(e, "line") else {
                        continue;
                    };
                    idx.quarantines.insert(
                        line,
                        QuarantineTrace {
                            line,
                            kind: e
                                .get("kind")
                                .and_then(|v| v.as_str())
                                .unwrap_or("unknown")
                                .to_string(),
                            trace: hex_field(e, "trace"),
                        },
                    );
                }
                _ => {}
            }
        }
        // Resolve publication: a record applied in episode `ep` is live
        // once the first successful publish covers episodes 0..=ep.
        let publishes: Vec<(u64, u64)> = idx
            .publishes
            .values()
            .map(|p| (p.version, p.episodes))
            .collect();
        for r in idx.records.values_mut() {
            if let RecordFate::Applied { episode, published } = &mut r.fate {
                *published = publishes
                    .iter()
                    .find(|&&(_, eps)| eps > *episode)
                    .map(|&(v, _)| v);
            }
        }
        idx
    }

    /// Parses a JSONL event file and reconstructs the index. Lines that
    /// are not valid events are skipped (a flight dump or a sink shared
    /// with other subsystems may interleave foreign lines).
    pub fn from_jsonl(text: &str) -> Self {
        let events: Vec<Event> = text.lines().filter_map(|l| Event::from_json(l).ok()).collect();
        Self::from_events(&events)
    }

    /// The reconstructed record with accepted-record sequence `seq`.
    pub fn record(&self, seq: u64) -> Option<&RecordTrace> {
        self.records.get(&seq)
    }

    /// The reconstructed episode with sequence `seq`.
    pub fn episode(&self, seq: u64) -> Option<&EpisodeTrace> {
        self.episodes.get(&seq)
    }

    /// All reconstructed records (ascending seq).
    pub fn records(&self) -> impl Iterator<Item = &RecordTrace> {
        self.records.values()
    }

    /// All quarantined lines (ascending line number).
    pub fn quarantines(&self) -> impl Iterator<Item = &QuarantineTrace> {
        self.quarantines.values()
    }

    /// Counts: (records indexed, applied, pending, quarantined lines).
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        let applied = self
            .records
            .values()
            .filter(|r| matches!(r.fate, RecordFate::Applied { .. }))
            .count() as u64;
        let total = self.records.len() as u64;
        (
            total,
            applied,
            total - applied,
            self.quarantines.len() as u64,
        )
    }

    /// Verifies the causal chain of every indexed record against the
    /// deterministic id derivation for `seed`:
    ///
    /// - every accept event's trace id equals `TraceCtx::for_record`,
    /// - every applied record's episode event exists and its trace id
    ///   equals `TraceCtx::for_episode`,
    /// - every published record's publish event's id checks out too.
    ///
    /// Returns the number of records checked, or `Err` with the first
    /// offending seq.
    pub fn chain_complete(&self, seed: u64) -> Result<u64, u64> {
        for r in self.records.values() {
            if r.trace != Some(TraceCtx::for_record(seed, r.seq).trace) {
                return Err(r.seq);
            }
            if let RecordFate::Applied { episode, published } = &r.fate {
                let ok = self.episodes.get(episode).is_some_and(|ep| {
                    ep.trace == Some(TraceCtx::for_episode(seed, *episode).trace)
                });
                if !ok {
                    return Err(r.seq);
                }
                if let Some(version) = published {
                    let ok = self.publishes.get(version).is_some_and(|p| {
                        p.trace == Some(TraceCtx::for_publish(seed, p.episodes).trace)
                    });
                    if !ok {
                        return Err(r.seq);
                    }
                }
            }
        }
        Ok(self.records.len() as u64)
    }

    /// Renders one record's end-to-end chain as human-readable lines
    /// (the `repro trace` output). `None` when `seq` was never accepted.
    pub fn describe(&self, seq: u64) -> Option<String> {
        let r = self.record(seq)?;
        let mut out = String::new();
        let hex = |t: Option<u64>| match t {
            Some(v) => format!("{v:016x}"),
            None => "-".into(),
        };
        let at = |t: Option<u64>| match t {
            Some(ms) => format!("t=+{ms}ms"),
            None => "t=?".into(),
        };
        out.push_str(&format!(
            "record seq={} user={} item={} line={} time={} trace={} {}\n",
            r.seq,
            r.user,
            r.item,
            r.line,
            r.time,
            hex(r.trace),
            at(r.accept_t_ms),
        ));
        match &r.fate {
            RecordFate::Pending => {
                out.push_str("  fate: pending (episode still open at end of stream)\n");
            }
            RecordFate::Applied { episode, published } => {
                if let Some(ep) = self.episode(*episode) {
                    out.push_str(&format!(
                        "  episode seq={} item={} users={} pairs={} trace={} {}\n",
                        episode,
                        ep.item,
                        ep.users,
                        ep.pairs,
                        hex(ep.trace),
                        at(ep.t_ms),
                    ));
                }
                match published {
                    None => out.push_str(&format!(
                        "  fate: applied (episode {episode}), not yet published\n"
                    )),
                    Some(version) => {
                        if let Some(p) = self.publishes.get(version) {
                            out.push_str(&format!(
                                "  publish version={} episodes={} trace={} {}\n",
                                p.version,
                                p.episodes,
                                hex(p.trace),
                                at(p.t_ms),
                            ));
                            if let (Some(a), Some(b)) = (r.accept_t_ms, p.t_ms) {
                                out.push_str(&format!(
                                    "  fate: applied+published, end-to-end {}ms\n",
                                    b.saturating_sub(a)
                                ));
                            } else {
                                out.push_str("  fate: applied+published\n");
                            }
                        }
                    }
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accept(seed: u64, seq: u64, item: u64) -> Event {
        TraceCtx::for_record(seed, seq).stamp(
            Event::new("trace.accept")
                .u64("seq", seq)
                .u64("line", seq)
                .u64("user", seq % 5)
                .u64("item", item)
                .u64("time", seq),
        )
    }

    fn episode(seed: u64, seq: u64, item: u64) -> Event {
        TraceCtx::for_episode(seed, seq).stamp(
            Event::new("pipeline.episode")
                .u64("item", item)
                .u64("seq", seq)
                .u64("users", 2)
                .u64("pairs", 4),
        )
    }

    fn publish(seed: u64, version: u64, episodes: u64) -> Event {
        TraceCtx::for_publish(seed, episodes).stamp(
            Event::new("pipeline.publish")
                .u64("version", version)
                .u64("episodes", episodes)
                .u64("attempt", 1),
        )
    }

    #[test]
    fn reconstructs_record_to_publish_chain() {
        let seed = 7;
        let events = vec![
            accept(seed, 1, 10),
            accept(seed, 2, 10),
            accept(seed, 3, 11),
            episode(seed, 0, 10), // retires seqs 1, 2
            publish(seed, 1, 1),  // covers episode 0
        ];
        let idx = TraceIndex::from_events(&events);
        let r1 = idx.record(1).unwrap();
        assert_eq!(
            r1.fate,
            RecordFate::Applied {
                episode: 0,
                published: Some(1)
            }
        );
        assert_eq!(idx.record(3).unwrap().fate, RecordFate::Pending);
        assert_eq!(idx.counts(), (3, 2, 1, 0));
        assert_eq!(idx.chain_complete(seed), Ok(3));
        let text = idx.describe(1).unwrap();
        assert!(text.contains("applied+published"), "{text}");
    }

    #[test]
    fn replayed_duplicates_are_idempotent() {
        let seed = 9;
        // Crash after episode 0 closed but before the journal committed:
        // the replay re-emits accepts 1-2 and the episode close.
        let events = vec![
            accept(seed, 1, 5),
            accept(seed, 2, 5),
            episode(seed, 0, 5),
            // --- crash, replay ---
            accept(seed, 1, 5),
            accept(seed, 2, 5),
            episode(seed, 0, 5),
            publish(seed, 1, 1),
        ];
        let idx = TraceIndex::from_events(&events);
        assert_eq!(idx.counts(), (2, 2, 0, 0));
        assert_eq!(
            idx.record(2).unwrap().fate,
            RecordFate::Applied {
                episode: 0,
                published: Some(1)
            }
        );
        assert_eq!(idx.chain_complete(seed), Ok(2));
    }

    #[test]
    fn chain_verification_catches_wrong_seed() {
        let events = vec![accept(3, 1, 0)];
        let idx = TraceIndex::from_events(&events);
        assert_eq!(idx.chain_complete(3), Ok(1));
        assert_eq!(idx.chain_complete(4), Err(1));
    }

    #[test]
    fn quarantines_index_by_line() {
        let e = TraceCtx::for_defect(1, 17).stamp(
            Event::new("pipeline.quarantine")
                .u64("line", 17)
                .str("kind", "malformed"),
        );
        let idx = TraceIndex::from_events(&[e]);
        let q = idx.quarantines().next().unwrap();
        assert_eq!((q.line, q.kind.as_str()), (17, "malformed"));
        assert_eq!(idx.counts().3, 1);
    }

    #[test]
    fn jsonl_round_trip_skips_foreign_lines() {
        let seed = 2;
        let mut text = String::new();
        text.push_str(&accept(seed, 1, 3).u64("t_ms", 10).to_json());
        text.push('\n');
        text.push_str("not json at all\n");
        text.push_str(&episode(seed, 0, 3).u64("t_ms", 25).to_json());
        text.push('\n');
        let idx = TraceIndex::from_jsonl(&text);
        let r = idx.record(1).unwrap();
        assert_eq!(r.accept_t_ms, Some(10));
        assert!(matches!(r.fate, RecordFate::Applied { episode: 0, .. }));
    }
}
