//! Snapshot publication: retried, backed off, never blocking training.
//!
//! The trainer offers a [`Snapshot`] to the publisher thread over a
//! capacity-1 `try_send` channel: if the publisher is still busy (slow
//! registry, mid-backoff) the offer is simply dropped and counted — a
//! fresher snapshot will come along, and training never waits on serving.
//! Each accepted snapshot is pushed through a [`PublishSink`] with capped
//! exponential backoff; exhausting the attempts abandons that snapshot
//! (the registry keeps serving the last good version).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use inf2vec_embed::EmbeddingStore;
use inf2vec_serve::ModelRegistry;
use inf2vec_util::error::Inf2vecError;
use inf2vec_util::SharedClock;

use crate::config::PipelineConfig;
use crate::faults::FaultPlan;

/// One publishable model state, checksummed at capture time so the sink
/// can verify the bits survived the channel crossing.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The parameters to publish.
    pub store: EmbeddingStore,
    /// Version label (shows up in registry/version metadata).
    pub label: String,
    /// [`inf2vec_serve::store_checksum`] at capture time.
    pub checksum: u64,
    /// Episodes applied when the snapshot was taken.
    pub episodes: u64,
}

/// Where snapshots go. The registry sink is the production target;
/// tests substitute counting/failing sinks.
pub trait PublishSink: Send + Sync {
    /// Publishes one snapshot, returning the installed version number.
    fn publish(&self, snap: &Snapshot) -> Result<u64, Inf2vecError>;
}

/// Publishes into a live [`ModelRegistry`] via checksum-verified install.
#[derive(Debug)]
pub struct RegistrySink {
    registry: Arc<ModelRegistry>,
}

impl RegistrySink {
    /// Wraps a registry.
    pub fn new(registry: Arc<ModelRegistry>) -> Self {
        Self { registry }
    }
}

impl PublishSink for RegistrySink {
    fn publish(&self, snap: &Snapshot) -> Result<u64, Inf2vecError> {
        let version =
            self.registry
                .install_checked(snap.store.clone(), &snap.label, Some(snap.checksum))?;
        Ok(version.version())
    }
}

/// A test/bench sink that records successful publishes.
#[derive(Debug, Default)]
pub struct CountingSink {
    published: AtomicU64,
}

impl CountingSink {
    /// A fresh sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots accepted so far.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::SeqCst)
    }
}

impl PublishSink for CountingSink {
    fn publish(&self, _snap: &Snapshot) -> Result<u64, Inf2vecError> {
        Ok(self.published.fetch_add(1, Ordering::SeqCst) + 1)
    }
}

/// Publisher-side counters, shared with the supervisor (atomics: the
/// publisher thread may be restarted, the counters persist).
#[derive(Debug, Default)]
pub struct PublishCounters {
    /// Snapshots successfully installed.
    pub ok: AtomicU64,
    /// Snapshots abandoned after exhausting retries.
    pub failed: AtomicU64,
    /// Snapshots withheld by the quality gate (probe-score regression):
    /// never offered to the sink, last good version keeps serving.
    pub withheld: AtomicU64,
    /// Snapshot offers dropped because the publisher was busy.
    pub skipped: AtomicU64,
    /// Episode count of the newest successfully published snapshot
    /// (monotone via `fetch_max`) — the supervisor derives the publish-lag
    /// gauge from it.
    pub last_episodes: AtomicU64,
}

/// Publishes one snapshot with retry + capped exponential backoff.
/// Returns `true` on success. Never propagates an error upward — a dead
/// registry degrades publication, not training.
pub fn publish_with_retry(
    sink: &dyn PublishSink,
    snap: &Snapshot,
    cfg: &PipelineConfig,
    clock: &SharedClock,
    faults: &FaultPlan,
    counters: &PublishCounters,
) -> bool {
    if let Some(delay) = faults.publish_delay {
        clock.sleep(delay); // a slow registry
    }
    let mut backoff = cfg.publish_backoff;
    for attempt in 1..=cfg.publish_max_attempts.max(1) {
        let started = std::time::Instant::now();
        let injected = faults.tick_publish_attempt();
        let result = if injected {
            Err(Inf2vecError::Data(inf2vec_util::error::DataError::Invalid {
                message: "injected publish failure".into(),
            }))
        } else {
            sink.publish(snap)
        };
        match result {
            Ok(version) => {
                // Successful-install latency (the sink call alone, no
                // backoff sleeps): the perf-trajectory file tracks its
                // mean.
                cfg.telemetry.observe(
                    "inf2vec_pipeline_publish_seconds",
                    started.elapsed().as_secs_f64(),
                );
                counters.ok.fetch_add(1, Ordering::SeqCst);
                counters
                    .last_episodes
                    .fetch_max(snap.episodes, Ordering::SeqCst);
                cfg.telemetry.count("inf2vec_pipeline_publish_ok_total", 1);
                cfg.telemetry.emit_with(|| {
                    inf2vec_obs::TraceCtx::for_publish(cfg.seed(), snap.episodes).stamp(
                        inf2vec_obs::Event::new("pipeline.publish")
                            .u64("version", version)
                            .u64("episodes", snap.episodes)
                            .u64("attempt", attempt as u64),
                    )
                });
                return true;
            }
            Err(e) => {
                cfg.telemetry
                    .count("inf2vec_pipeline_publish_retry_total", 1);
                cfg.telemetry.emit_with(|| {
                    inf2vec_obs::TraceCtx::for_publish(cfg.seed(), snap.episodes).stamp(
                        inf2vec_obs::Event::new("pipeline.publish_error")
                            .u64("attempt", attempt as u64)
                            .u64("episodes", snap.episodes)
                            .str("error", e.to_string()),
                    )
                });
                if attempt < cfg.publish_max_attempts.max(1) {
                    clock.sleep(backoff);
                    backoff = (backoff * 2).min(cfg.publish_backoff_cap);
                }
            }
        }
    }
    counters.failed.fetch_add(1, Ordering::SeqCst);
    cfg.telemetry.count("inf2vec_pipeline_publish_failed_total", 1);
    false
}

/// Mangles a snapshot's parameters and **recomputes its checksum**, so
/// integrity verification still passes and only a semantic quality check
/// can reject it. Used by the fault plan's poisoned-snapshot schedule:
/// every source row is negated, which flips the sign of every
/// `S_u · T_v` pair score — a model that ranked true influence targets
/// above random negatives now ranks them below.
pub fn poison_snapshot(snap: &mut Snapshot) {
    let store = &snap.store;
    for u in 0..store.len() {
        // Safety: the publisher owns this clone exclusively; nothing
        // reads it concurrently.
        unsafe {
            for v in store.source.row_mut(u) {
                *v = -*v;
            }
            // Also invert target popularity, so even a model that leans
            // on biases rather than embeddings ranks upside down.
            for b in store.bias_tgt.row_mut(u) {
                *b = -*b;
            }
        }
    }
    snap.checksum = inf2vec_serve::store_checksum(&snap.store);
    snap.label.push_str("-poisoned");
}

/// Exports a snapshot to `dir/model-e<episodes>.txt` (atomic write) with
/// a `.sum` checksum sidecar, so a cold restart can reload the last
/// published model from disk. `fail_after_bytes` threads an injected
/// disk fault into the model write; a failed export leaves no partial
/// file behind (the sidecar is only written after the model lands).
pub fn export_snapshot(
    dir: &Path,
    snap: &Snapshot,
    fail_after_bytes: Option<usize>,
) -> Result<PathBuf, Inf2vecError> {
    std::fs::create_dir_all(dir).map_err(Inf2vecError::Io)?;
    let path = dir.join(format!("model-e{}.txt", snap.episodes));
    inf2vec_util::atomic_write(&path, |f| {
        use std::io::Write;
        let mut w: Box<dyn Write> = match fail_after_bytes {
            Some(limit) => {
                Box::new(inf2vec_util::faultinject::FailingWriter::new(&mut *f, limit))
            }
            None => Box::new(&mut *f),
        };
        snap.store.save(&mut w)
    })
    .map_err(Inf2vecError::Io)?;
    inf2vec_serve::write_checksum_sidecar(&path, &snap.store)?;
    Ok(path)
}

/// Capped exponential backoff schedule (exposed for tests).
pub fn backoff_schedule(base: Duration, cap: Duration, attempts: u32) -> Vec<Duration> {
    let mut out = Vec::with_capacity(attempts as usize);
    let mut b = base;
    for _ in 0..attempts {
        out.push(b.min(cap));
        b = (b * 2).min(cap);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use inf2vec_util::{Clock, ManualClock};

    fn snap() -> Snapshot {
        let store = EmbeddingStore::zeroed(3, 2);
        store.init_row(0, 1);
        Snapshot {
            checksum: inf2vec_serve::store_checksum(&store),
            store,
            label: "test".into(),
            episodes: 1,
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let s = backoff_schedule(
            Duration::from_millis(10),
            Duration::from_millis(35),
            4,
        );
        assert_eq!(
            s,
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(35),
                Duration::from_millis(35)
            ]
        );
    }

    #[test]
    fn retry_recovers_from_injected_failures() {
        let (clock, manual) = ManualClock::shared();
        let cfg = PipelineConfig::default();
        let sink = CountingSink::new();
        let faults = FaultPlan::none().with_publish_failures(vec![1, 2]);
        let counters = PublishCounters::default();
        let before = manual.now();
        assert!(publish_with_retry(
            &sink, &snap(), &cfg, &clock, &faults, &counters
        ));
        assert_eq!(sink.published(), 1);
        assert_eq!(counters.ok.load(Ordering::SeqCst), 1);
        // Two failed attempts slept base then 2*base of backoff.
        assert_eq!(manual.now() - before, cfg.publish_backoff * 3);
    }

    #[test]
    fn exhausted_retries_abandon_the_snapshot() {
        let (clock, _manual) = ManualClock::shared();
        let cfg = PipelineConfig {
            publish_max_attempts: 2,
            ..PipelineConfig::default()
        };
        let sink = CountingSink::new();
        let faults = FaultPlan::none().with_publish_failures(vec![1, 2]);
        let counters = PublishCounters::default();
        assert!(!publish_with_retry(
            &sink, &snap(), &cfg, &clock, &faults, &counters
        ));
        assert_eq!(sink.published(), 0);
        assert_eq!(counters.failed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn registry_sink_round_trips_the_checksum() {
        let registry = Arc::new(ModelRegistry::new(Some(2)));
        let sink = RegistrySink::new(Arc::clone(&registry));
        let v = sink.publish(&snap()).unwrap();
        assert_eq!(v, registry.current_version());
        assert_eq!(registry.current().unwrap().version(), v);
    }
}
