//! Quality-gated publish: a held-out probe task scored before install.
//!
//! Checksum verification at install time proves the snapshot's *bits*
//! survived the channel crossing — it cannot catch a model whose bits are
//! intact but whose quality regressed (a poisoned store with a correctly
//! recomputed checksum, a diverged optimizer, a corrupted-but-parseable
//! recovery). The [`QualityGate`] closes that hole with a semantic check:
//! every candidate snapshot is scored on a deterministic **probe set**
//! built from the social graph — for each sampled edge `(u, v)` the model
//! must rank the true influence target `v` above a matched random
//! non-neighbor `w` — and a candidate whose probe score falls more than a
//! configured budget below the best score ever published is **withheld**:
//! counted, surfaced as a health event, and never installed, so the
//! registry keeps serving the last good version.
//!
//! The probe set is a pure function of `(seed, graph)`, so every pipeline
//! incarnation (and the bit-identity verify run) builds the same probes,
//! and probe ids are always below the base graph size — row-space growth
//! never invalidates a probe. The high-water "best" is seeded at pipeline
//! open from the *recovered* trainer state, so a poisoned first snapshot
//! after a crash is still caught.

use std::sync::atomic::{AtomicU64, Ordering};

use inf2vec_embed::EmbeddingStore;
use inf2vec_graph::{DiGraph, NodeId};
use inf2vec_util::rng::Xoshiro256pp;
use inf2vec_util::split_seed;

/// RNG stream tag for probe sampling (disjoint from traffic/training).
const PROBE_STREAM: u64 = 0x9A7E_0BE5;

/// A deterministic held-out link-ranking probe: `(source, positive
/// target, negative target)` triples sampled from the graph's edges.
#[derive(Debug, Clone)]
pub struct ProbeSet {
    triples: Vec<(u32, u32, u32)>,
}

impl ProbeSet {
    /// Samples up to `max_probes` edge triples from `graph`,
    /// deterministically from `seed`. Each triple pairs a real edge
    /// `(u, v)` with a random non-neighbor `w` of `u` (`w != u`, no edge
    /// `u -> w`); edges whose source influences almost everyone may fail
    /// to find a negative and are skipped.
    pub fn build(graph: &DiGraph, seed: u64, max_probes: usize) -> Self {
        let n = graph.node_count() as u64;
        let mut rng = Xoshiro256pp::new(split_seed(seed, PROBE_STREAM));
        let edges: Vec<(u32, u32)> = graph.edges().map(|(u, v)| (u.0, v.0)).collect();
        let mut triples = Vec::with_capacity(max_probes.min(edges.len()));
        if n < 2 || edges.is_empty() || max_probes == 0 {
            return Self { triples };
        }
        // Evenly strided edge sample so probes cover the whole id range
        // instead of the lowest ids; stride is deterministic in the sizes.
        let stride = (edges.len() / max_probes).max(1);
        for (u, v) in edges.iter().step_by(stride).take(max_probes).copied() {
            let mut negative = None;
            for _ in 0..16 {
                let w = rng.below(n) as u32;
                if w != u && w != v && !graph.has_edge(NodeId(u), NodeId(w)) {
                    negative = Some(w);
                    break;
                }
            }
            if let Some(w) = negative {
                triples.push((u, v, w));
            }
        }
        Self { triples }
    }

    /// Number of probe triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when no probes could be sampled (gate then admits everything).
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Fraction of probes where the model ranks the true target above the
    /// random negative (ties count half) — an AUC-style score in `[0, 1]`.
    /// An empty probe set scores a neutral `0.5`.
    pub fn score(&self, store: &EmbeddingStore) -> f64 {
        if self.triples.is_empty() {
            return 0.5;
        }
        let mut won = 0.0f64;
        for &(u, v, w) in &self.triples {
            let pos = store.score(u, v);
            let neg = store.score(u, w);
            if pos > neg {
                won += 1.0;
            } else if pos == neg {
                won += 0.5;
            }
            // A NaN comparison falls through both arms: a non-finite
            // model loses every affected probe, which is exactly right.
        }
        won / self.triples.len() as f64
    }
}

/// The admission gate: monotone high-water best score plus a regression
/// budget. Shared between the supervisor (seeding, gauges) and the
/// publisher thread (admission), so it is atomic throughout.
#[derive(Debug)]
pub struct QualityGate {
    probe: ProbeSet,
    budget: f64,
    /// High-water probe score, stored as `f64::to_bits`. Probe scores are
    /// in `[0, 1]`, where IEEE-754 bit order agrees with numeric order,
    /// so `fetch_max` on the bits is a monotone max on the score.
    best: AtomicU64,
}

impl QualityGate {
    /// A gate over `probe` admitting scores down to `best - budget`.
    pub fn new(probe: ProbeSet, budget: f64) -> Self {
        Self {
            probe,
            budget: budget.max(0.0),
            best: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Raises the high-water mark to `store`'s probe score (never lowers
    /// it). Called at pipeline open with the recovered trainer state, and
    /// after every successful publish.
    pub fn observe(&self, store: &EmbeddingStore) -> f64 {
        let score = self.probe.score(store);
        self.best.fetch_max(score.to_bits(), Ordering::SeqCst);
        score
    }

    /// Scores `store` and decides admission: `(score, admitted)`. Does
    /// **not** move the high-water mark — only a successful publish does,
    /// via [`QualityGate::observe`].
    pub fn admit(&self, store: &EmbeddingStore) -> (f64, bool) {
        let score = self.probe.score(store);
        (score, score + self.budget >= self.best())
    }

    /// The high-water probe score published (or recovered) so far.
    pub fn best(&self) -> f64 {
        f64::from_bits(self.best.load(Ordering::SeqCst))
    }

    /// The regression budget.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Number of probe triples backing the gate.
    pub fn probes(&self) -> usize {
        self.probe.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inf2vec_graph::GraphBuilder;

    fn ring(n: u32) -> DiGraph {
        let mut b = GraphBuilder::with_nodes(n);
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        b.build()
    }

    #[test]
    fn probe_set_is_deterministic_and_valid() {
        let g = ring(16);
        let a = ProbeSet::build(&g, 7, 12);
        let b = ProbeSet::build(&g, 7, 12);
        assert_eq!(a.triples, b.triples, "same (seed, graph) → same probes");
        assert!(!a.is_empty());
        for &(u, v, w) in &a.triples {
            assert!(g.has_edge(NodeId(u), NodeId(v)), "positive is a real edge");
            assert!(!g.has_edge(NodeId(u), NodeId(w)), "negative is a non-edge");
            assert_ne!(u, w);
        }
        let c = ProbeSet::build(&g, 8, 12);
        assert_ne!(a.triples, c.triples, "seed moves the negatives");
    }

    #[test]
    fn score_separates_good_from_poisoned() {
        let g = ring(12);
        let probe = ProbeSet::build(&g, 3, 12);
        let good = EmbeddingStore::zeroed(12, 2);
        assert_eq!(probe.score(&good), 0.5, "all-zero model is neutral");

        // An edge-aligned store: one-hot rows arranged so that
        // `score(u, v) = 1` exactly when `v = u + 1 (mod 12)` — the ring
        // edges — and 0 everywhere else.
        let trained = EmbeddingStore::zeroed(12, 12);
        for u in 0..12u32 {
            unsafe {
                trained.source.row_mut(u as usize)[u as usize] = 1.0;
                trained.target.row_mut(((u + 1) % 12) as usize)[u as usize] = 1.0;
            }
        }
        // Now score(u, v) = 1 iff v = u + 1 (mod 12): exactly the edges.
        let s = probe.score(&trained);
        assert_eq!(s, 1.0, "edge-aligned model wins every probe: {s}");

        let gate = QualityGate::new(probe.clone(), 0.05);
        gate.observe(&trained);
        assert_eq!(gate.best(), 1.0);
        let (score, ok) = gate.admit(&trained);
        assert!(ok && score == 1.0);

        // Poison: negate the alignment — every probe now loses or ties.
        let poisoned = EmbeddingStore::zeroed(12, 12);
        for u in 0..12u32 {
            unsafe {
                poisoned.source.row_mut(u as usize)[u as usize] = -1.0;
                poisoned.target.row_mut(((u + 1) % 12) as usize)[u as usize] = 1.0;
            }
        }
        let (score, ok) = gate.admit(&poisoned);
        assert!(!ok && score < 0.5, "poisoned model is withheld: {score}");
        assert_eq!(gate.best(), 1.0, "a withheld candidate never moves best");
    }

    #[test]
    fn non_finite_candidates_lose_their_probes() {
        let g = ring(8);
        let probe = ProbeSet::build(&g, 1, 8);
        let nan = EmbeddingStore::zeroed(8, 2);
        unsafe { nan.source.row_mut(0)[0] = f32::NAN };
        assert!(probe.score(&nan) < 1.0);
    }

    #[test]
    fn empty_probe_set_admits_everything() {
        let g = GraphBuilder::with_nodes(1).build(); // no edges
        let probe = ProbeSet::build(&g, 1, 8);
        assert!(probe.is_empty());
        let gate = QualityGate::new(probe, 0.0);
        let (score, ok) = gate.admit(&EmbeddingStore::zeroed(1, 2));
        assert!(ok);
        assert_eq!(score, 0.5);
    }
}
