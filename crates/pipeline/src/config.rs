//! Pipeline configuration.

use std::time::Duration;

use inf2vec_core::Inf2vecConfig;
use inf2vec_embed::OnlineConfig;
use inf2vec_obs::Telemetry;

/// Everything the continuous-learning pipeline needs to run.
///
/// The determinism-relevant knobs are `close_after`, `online`, `inf2vec`,
/// and `seed`: together with the action-log bytes they fully determine the
/// final model state. The remaining knobs (batching, channel capacity,
/// publish cadence, backoff) shape *where* work happens, never *what* the
/// result is — a crash and journal replay under any of them reconverges
/// bit-identically.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Episode closing: an open item whose last activity is this many
    /// accepted records in the past is complete. Keyed on the accepted-
    /// record sequence (not wall clock) so closing replays exactly.
    pub close_after: u64,
    /// Max records consumed per tail poll.
    pub batch_max: usize,
    /// Bounded tail→train channel capacity (backpressure: a slow trainer
    /// blocks the tailer instead of growing a queue).
    pub channel_capacity: usize,
    /// Consecutive empty tail polls that count as "caught up" for
    /// [`Pipeline::run_until_idle`](crate::Pipeline::run_until_idle).
    pub idle_polls: u32,
    /// Tailer sleep between empty polls.
    pub poll_interval: Duration,
    /// Write the progress journal every N applied batches (1 = always).
    pub journal_every_batches: u32,
    /// Offer a snapshot to the publisher every N closed episodes.
    pub publish_every_episodes: u64,
    /// Publish retry attempts before giving the snapshot up.
    pub publish_max_attempts: u32,
    /// First retry backoff; doubles per attempt.
    pub publish_backoff: Duration,
    /// Retry backoff ceiling.
    pub publish_backoff_cap: Duration,
    /// Per-stage restarts tolerated before the pipeline escalates to
    /// [`PipelineError::StageFailed`](inf2vec_util::PipelineError::StageFailed).
    pub restart_budget: u32,
    /// Upper bound on the user-id space the pipeline accepts from the
    /// log (ids at or beyond it quarantine as defects). `0` pins the
    /// space to the social graph's node count — no row-space growth.
    /// When larger than the graph, the model's row space grows on demand
    /// as unseen ids arrive; growth is driven by the deterministic
    /// episode stream, so replay reproduces it bit-identically.
    pub user_capacity: usize,
    /// Compact the action log once its physical size exceeds this many
    /// bytes (`0` disables compaction). Compaction only ever drops bytes
    /// below the *older* of the two journal slots' committed offsets, so
    /// any recoverable journal can still resume.
    pub log_budget_bytes: u64,
    /// Seal each compacted prefix into the segmented archive store
    /// (`<log>.archive.d/`), so `archive ++ live payload` reconstructs
    /// the full logical stream (what a from-scratch bit-identity replay
    /// needs). A legacy monolithic `<log>.archive` file is imported as
    /// segment 0 on first use.
    pub archive_compacted: bool,
    /// Retained archive payload budget in bytes: expiry drops the oldest
    /// segments while the retained total exceeds this (`0` = unlimited).
    /// Segments inside the journal replay window are never expired.
    pub archive_max_bytes: u64,
    /// Maximum retained archive segments (`0` = unlimited).
    pub archive_max_segments: usize,
    /// Expire archive segments sealed longer ago than this, measured
    /// against the pipeline clock that stamped them (`None` = no age
    /// bound). Advisory next to the byte/segment budgets: seal stamps
    /// are process-relative, so segments from an earlier process look
    /// young (never spuriously old).
    pub archive_max_age: Option<Duration>,
    /// Bounded attempts for journal/compaction/snapshot disk writes
    /// before that write degrades (training continues, the write is
    /// skipped until the next boundary).
    pub disk_max_attempts: u32,
    /// Backoff between disk-write retry attempts; doubles per attempt.
    pub disk_retry_backoff: Duration,
    /// Export every successfully published snapshot to this directory
    /// (atomic write + checksum sidecar). `None` disables export.
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// Probe triples for the quality gate (`0` disables the gate and
    /// publishes on checksum alone).
    pub probe_pairs: usize,
    /// Allowed probe-score regression below the best ever published;
    /// a candidate scoring below `best - quality_budget` is withheld.
    pub quality_budget: f64,
    /// Online SGNS hyper-parameters.
    pub online: OnlineConfig,
    /// Context generation (Algorithm 1) parameters; `inf2vec.seed` is the
    /// pipeline's determinism root.
    pub inf2vec: Inf2vecConfig,
    /// Metrics/events sink.
    pub telemetry: Telemetry,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            close_after: 64,
            batch_max: 256,
            channel_capacity: 4,
            idle_polls: 2,
            poll_interval: Duration::from_millis(1),
            journal_every_batches: 1,
            publish_every_episodes: 8,
            publish_max_attempts: 4,
            publish_backoff: Duration::from_millis(10),
            publish_backoff_cap: Duration::from_millis(500),
            restart_budget: 5,
            user_capacity: 0,
            log_budget_bytes: 0,
            archive_compacted: false,
            archive_max_bytes: 0,
            archive_max_segments: 0,
            archive_max_age: None,
            disk_max_attempts: 3,
            disk_retry_backoff: Duration::from_millis(2),
            snapshot_dir: None,
            probe_pairs: 0,
            quality_budget: 0.05,
            online: OnlineConfig::default(),
            inf2vec: Inf2vecConfig {
                l: 10,
                ..Inf2vecConfig::default()
            },
            telemetry: Telemetry::disabled(),
        }
    }
}

impl PipelineConfig {
    /// The determinism root seed (shared with context generation).
    pub fn seed(&self) -> u64 {
        self.inf2vec.seed
    }
}

/// The standard health policy for a running pipeline, evaluated by the
/// introspection endpoint's `/healthz`:
///
/// - **quarantine ratio** — quarantined vs. accepted records over the
///   scrape window; a defect storm degrades at 5% and fails at 25%;
/// - **publish lag** — episodes applied beyond the newest publish *this
///   process has observed*; the served model growing stale degrades at
///   16 episodes and fails at 128. After a crash the counter restarts
///   at zero, so a freshly recovered pipeline reports failing until its
///   first publish lands — deliberate pessimism: the process cannot
///   vouch for a snapshot it never published;
/// - **loss divergence** — the episode-loss EMA. The gauge is the mean
///   per-pair SGNS loss *including the negative terms*, so with the
///   default 5 negatives a freshly initialized model sits near
///   `6·ln 2 ≈ 4.2` and falls from there; an EMA above 6 means the
///   objective is moving the wrong way (degraded), above 20 it is
///   blowing up (failing);
/// - **quality regression** — how far the newest candidate snapshot's
///   held-out probe score sits below the best score ever published
///   (`inf2vec_pipeline_quality_regression = best - latest`, clamped at
///   zero). The gate withholds such snapshots from the registry; the
///   rule makes the withholding visible: a regression beyond the usual
///   publish budget degrades at 0.05 and fails at 0.25 (a model that
///   lost a quarter of its probe wins is not quietly recoverable).
pub fn pipeline_health_policy() -> inf2vec_obs::HealthPolicy {
    inf2vec_obs::HealthPolicy::new()
        .rule(inf2vec_obs::Rule::ratio(
            "quarantine_ratio",
            "inf2vec_pipeline_quarantined_total",
            "inf2vec_pipeline_records_total",
            0.05,
            0.25,
        ))
        .rule(inf2vec_obs::Rule::gauge_above(
            "publish_lag",
            "inf2vec_pipeline_publish_lag_episodes",
            16.0,
            128.0,
        ))
        .rule(inf2vec_obs::Rule::gauge_above(
            "loss_divergence",
            "inf2vec_pipeline_loss_ema",
            6.0,
            20.0,
        ))
        .rule(inf2vec_obs::Rule::gauge_above(
            "quality_regression",
            "inf2vec_pipeline_quality_regression",
            0.05,
            0.25,
        ))
}
