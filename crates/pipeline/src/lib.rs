#![warn(missing_docs)]

//! Crash-recoverable continuous-learning pipeline.
//!
//! Batch training (ingest a frozen log, train epochs, export) answers the
//! paper's offline evaluation; a deployed influence model instead watches
//! an *append-only action log* grow and must keep the served embeddings
//! current without ever losing or double-counting a record. This crate
//! wires the existing subsystems into that runtime:
//!
//! ```text
//!  action log ──tail──▶ [tailer] ──bounded chan──▶ [trainer] ──try_send──▶ [publisher]
//!  (append-only)         ingest     backpressure    assemble episodes       retry+backoff
//!                                                   online SGNS             install_checked
//!                                                   journal (WAL)           into ModelRegistry
//! ```
//!
//! - [`journal`]: double-slot checksummed write-ahead journal; a crash at
//!   *any* point replays to a bit-identical model (the log is the source
//!   of truth, the journal only commits how far it has been consumed).
//! - [`runner`]: the [`Pipeline`] — stage threads, bounded channels, a
//!   supervisor that restarts panicked stages within a restart budget,
//!   and exactly-once episode application across crashes.
//! - [`publish`]: snapshot publication into the serve registry with
//!   capped exponential backoff; a failing or slow registry never stalls
//!   training (snapshots are skipped, training continues against the last
//!   good version).
//! - [`quality`]: the held-out probe task and quality gate — candidate
//!   snapshots whose probe score regresses past a budget are *withheld*
//!   (counted, health-evented) and the registry keeps serving the last
//!   good version; checksum verification alone cannot catch a poisoned
//!   model whose bits are internally consistent.
//! - [`faults`]: deterministic fault schedules (stage panics, publish
//!   failures, torn journal writes, ENOSPC-style disk faults, poisoned
//!   snapshots) for the soak harness.
//! - [`soak`]: the fault-injection soak harness — drives synthetic
//!   traffic through repeated crash/recover cycles, then reconciles
//!   every written record against exactly one of
//!   {applied, quarantined, pending} and proves replay bit-identity.
//! - [`trace`]: offline causal-trace reconstruction — replays the
//!   trace-stamped event stream back into record → episode → publish
//!   chains (what `repro trace` renders, and what the soak harness
//!   checks for completeness).

pub mod config;
pub mod faults;
pub mod journal;
pub mod publish;
pub mod quality;
pub mod runner;
pub mod soak;
pub mod trace;

pub use config::{pipeline_health_policy, PipelineConfig};
pub use faults::FaultPlan;
pub use journal::{Journal, JournalState, OpenItemState};
pub use publish::{CountingSink, PublishSink, RegistrySink, Snapshot};
pub use quality::{ProbeSet, QualityGate};
pub use runner::{archive_path, ArchiveCounters, Pipeline, Reconciliation};
pub use soak::{run_soak, SoakConfig, SoakReport};
pub use trace::{RecordFate, RecordTrace, TraceIndex};

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fresh, empty, uniquely named temp directory for one test.
    pub fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "inf2vec_pipeline_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
