//! Write-ahead progress journal: double-slot, checksummed, atomic.
//!
//! The journal captures *everything* the trainer needs to resume —
//! committed tail position, acceptance counters, open (not-yet-closed)
//! episode assembly state, and the full [`OnlineState`] — so that after a
//! crash, replaying the action log from the journaled position reproduces
//! the uninterrupted run bit for bit.
//!
//! # Slot discipline
//!
//! Writes alternate between two slot files (`journal.a` / `journal.b` by
//! round parity), each written via [`atomic_write`] (temp sibling, fsync,
//! rename) with a trailing FNV-1a checksum line. Recovery parses both
//! slots, discards any whose checksum or structure fails, and keeps the
//! valid one with the highest round:
//!
//! - a torn or truncated newest slot falls back to the previous round
//!   (older position → more log replay → same final state);
//! - both slots corrupt or absent → fresh start from offset 0, which is
//!   still correct because the log, not the journal, is the source of
//!   truth — the journal only saves work;
//! - a slot that parses but disagrees with the pipeline's fixed shape
//!   (user count, dimension) is a configuration error, surfaced as
//!   [`PipelineError::JournalMismatch`] rather than silently retrained.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use inf2vec_embed::{EmbeddingStore, OnlineState};
use inf2vec_ingest::TailPosition;
use inf2vec_util::error::{Inf2vecError, PipelineError};
use inf2vec_util::{atomic_write, fnv1a};

/// Journal format magic (version-independent prefix).
const MAGIC: &str = "inf2vec-journal";

/// Schema version this build writes and reads; bump on any incompatible
/// layout change. A slot with intact checksum but a different version
/// fails as [`PipelineError::JournalMismatch`] naming found/expected —
/// never as a checksum-shaped mystery.
pub const SCHEMA_VERSION: u32 = 2;

/// Journal format tag; bump [`SCHEMA_VERSION`] on any incompatible change.
const HEADER: &str = "inf2vec-journal v2";

/// One open (still-assembling) episode, in persistable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenItemState {
    /// The item (episode) id.
    pub item: u32,
    /// Accepted-record sequence of the item's most recent activity; the
    /// episode closes when `records_seen - last_seq >= close_after`.
    pub last_seq: u64,
    /// Accepted records folded into this item so far (each record is
    /// accounted to exactly one open item until the item closes).
    pub folded: u64,
    /// Per-user earliest activation: `(user, time, seq)`, sorted by user.
    pub users: Vec<(u32, u64, u64)>,
}

/// A complete, self-validating snapshot of trainer progress.
#[derive(Debug, Clone)]
pub struct JournalState {
    /// Monotonic write counter; selects the slot and orders recoveries.
    pub round: u64,
    /// Committed tail position: replay resumes exactly here.
    pub pos: TailPosition,
    /// Accepted (well-formed) records consumed.
    pub records_seen: u64,
    /// Records whose episode has closed (applied to the model).
    pub records_applied: u64,
    /// Defective records quarantined.
    pub quarantined: u64,
    /// Open episode assembly state, sorted by item id.
    pub open: Vec<OpenItemState>,
    /// The online trainer's full mutable state.
    pub online: OnlineState,
}

/// The on-disk journal: a directory holding the two slots.
#[derive(Debug, Clone)]
pub struct Journal {
    dir: PathBuf,
}

fn unreadable(detail: impl std::fmt::Display) -> PipelineError {
    PipelineError::JournalUnreadable {
        detail: detail.to_string(),
    }
}

impl Journal {
    /// Opens (creating if needed) the journal directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, PipelineError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| unreadable(format!("create {dir:?}: {e}")))?;
        Ok(Self { dir })
    }

    /// The slot file a given round lands in (rounds alternate slots, so
    /// the previous round always survives the current write).
    pub fn slot_path(&self, round: u64) -> PathBuf {
        self.dir
            .join(if round % 2 == 0 { "journal.a" } else { "journal.b" })
    }

    /// Atomically writes `state` into its slot. Returns the slot path
    /// (fault injection truncates it to simulate torn writes).
    pub fn write(&self, state: &JournalState) -> Result<PathBuf, Inf2vecError> {
        self.write_with(state, None)
    }

    /// [`Journal::write`] with an optional injected disk fault: when
    /// `fail_after_bytes` is set, the slot write accepts that many bytes
    /// and then errors (an ENOSPC/EIO-shaped partial write). The
    /// [`atomic_write`] temp-file discipline guarantees the destination
    /// slot is untouched when this returns an error.
    pub fn write_with(
        &self,
        state: &JournalState,
        fail_after_bytes: Option<usize>,
    ) -> Result<PathBuf, Inf2vecError> {
        let mut body = Vec::new();
        serialize(state, &mut body)?;
        let sum = fnv1a(&body);
        let path = self.slot_path(state.round);
        atomic_write(&path, |f| {
            use std::io::Write;
            match fail_after_bytes {
                Some(limit) => {
                    let mut w = inf2vec_util::faultinject::FailingWriter::new(&mut *f, limit);
                    w.write_all(&body)?;
                    writeln!(w, "checksum {sum:016x}")
                }
                None => {
                    f.write_all(&body)?;
                    writeln!(f, "checksum {sum:016x}")
                }
            }
        })?;
        Ok(path)
    }

    /// Loads the newest valid snapshot, or `None` for a fresh start.
    ///
    /// Corrupt/truncated slots are skipped (that is the double-slot
    /// design working, not an error); an unreadable directory, a slot
    /// written by a different schema version, or a slot that is valid but
    /// shaped for a different pipeline is an error.
    pub fn load_latest(&self) -> Result<Option<JournalState>, PipelineError> {
        let mut best: Option<JournalState> = None;
        for name in ["journal.a", "journal.b"] {
            let path = self.dir.join(name);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(unreadable(format!("read {path:?}: {e}"))),
            };
            match parse_slot(&bytes) {
                SlotParse::Valid(state) => {
                    if best.as_ref().map_or(true, |b| state.round > b.round) {
                        best = Some(*state);
                    }
                }
                // Torn write: the other slot carries the state.
                SlotParse::Corrupt => continue,
                // The bytes are *intact* (checksum passed) but written by
                // an incompatible build: silently retraining from scratch
                // would discard a perfectly good snapshot. Fail typed.
                SlotParse::VersionMismatch { found } => {
                    return Err(PipelineError::JournalMismatch {
                        detail: format!(
                            "journal slot {name} was written by schema \
                             {found:?}, this build reads v{SCHEMA_VERSION}"
                        ),
                    });
                }
            }
        }
        Ok(best)
    }
}

/// Checks a parsed snapshot against the pipeline's shape envelope: the
/// dimension `k` must match exactly, and the row count must lie within
/// `[base_n, universe]` — at least the social graph's population, at most
/// the configured user capacity (the stream grows the model between the
/// two; see [`inf2vec_embed::OnlineSgns::apply_episode`]).
pub fn check_shape(
    state: &JournalState,
    base_n: usize,
    universe: usize,
    k: usize,
) -> Result<(), PipelineError> {
    let (jn, jk) = (state.online.store.len(), state.online.store.k());
    if jk != k || jn < base_n || jn > universe {
        return Err(PipelineError::JournalMismatch {
            detail: format!(
                "journal holds a {jn}x{jk} model, pipeline expects \
                 {base_n}..={universe} users at dimension {k}"
            ),
        });
    }
    Ok(())
}

fn serialize(state: &JournalState, out: &mut Vec<u8>) -> io::Result<()> {
    use std::io::Write;
    writeln!(out, "{HEADER}")?;
    writeln!(out, "round {}", state.round)?;
    writeln!(out, "pos {} {}", state.pos.offset, state.pos.line_no)?;
    writeln!(
        out,
        "counters {} {} {} {} {}",
        state.records_seen,
        state.records_applied,
        state.quarantined,
        state.online.episodes_applied,
        state.online.pairs_applied
    )?;
    writeln!(out, "open {}", state.open.len())?;
    for it in &state.open {
        writeln!(
            out,
            "item {} {} {} {}",
            it.item,
            it.last_seq,
            it.folded,
            it.users.len()
        )?;
        for &(u, t, s) in &it.users {
            writeln!(out, "{u} {t} {s}")?;
        }
    }
    write_u64s(out, "update_counts", &state.online.update_counts)?;
    write_u64s(out, "ctx_counts", &state.online.ctx_counts)?;
    let init: Vec<u64> = state.online.initialized.iter().map(|&b| b as u64).collect();
    write_u64s(out, "initialized", &init)?;
    writeln!(out, "store")?;
    state.online.store.save(&mut *out)?;
    Ok(())
}

fn write_u64s(out: &mut Vec<u8>, tag: &str, vals: &[u64]) -> io::Result<()> {
    use std::io::Write;
    write!(out, "{tag} {}", vals.len())?;
    for v in vals {
        write!(out, " {v}")?;
    }
    writeln!(out)
}

/// How one slot's bytes classified.
#[derive(Debug)]
enum SlotParse {
    /// Intact and readable by this build (boxed: the state dwarfs the
    /// other variants).
    Valid(Box<JournalState>),
    /// Checksum or structure failed: a torn/corrupted write.
    Corrupt,
    /// Checksum passed but the header names a different schema version.
    VersionMismatch {
        /// The version tag the slot's header carries.
        found: String,
    },
}

/// Parses one slot. The checksum is validated *first*, so corruption is
/// always reported as [`SlotParse::Corrupt`] — a bit-flipped version line
/// must not masquerade as a version mismatch.
fn parse_slot(bytes: &[u8]) -> SlotParse {
    match parse_slot_inner(bytes) {
        Some(r) => r,
        None => SlotParse::Corrupt,
    }
}

fn parse_slot_inner(bytes: &[u8]) -> Option<SlotParse> {
    let text = std::str::from_utf8(bytes).ok()?;
    // The checksum covers every byte before its own line.
    let body_end = text.trim_end_matches('\n').rfind('\n')? + 1;
    let sum_line = text[body_end..].trim();
    let declared = u64::from_str_radix(sum_line.strip_prefix("checksum ")?, 16).ok()?;
    if fnv1a(&bytes[..body_end]) != declared {
        return None;
    }

    let mut lines = text[..body_end].lines();
    let header = lines.next()?;
    if header != HEADER {
        // Intact bytes, wrong version tag (or a foreign file that happens
        // to checksum — report whatever its first line says it is).
        let found = header
            .strip_prefix(MAGIC)
            .map(str::trim)
            .unwrap_or(header)
            .to_string();
        return Some(SlotParse::VersionMismatch { found });
    }
    let round: u64 = field(lines.next()?, "round")?.parse().ok()?;
    let pos = fields(lines.next()?, "pos", 2)?;
    let pos = TailPosition {
        offset: pos[0],
        line_no: pos[1],
    };
    let c = fields(lines.next()?, "counters", 5)?;
    let n_open: usize = field(lines.next()?, "open")?.parse().ok()?;
    let mut open = Vec::with_capacity(n_open);
    for _ in 0..n_open {
        let head = fields(lines.next()?, "item", 4)?;
        let n_users = head[3] as usize;
        let mut users = Vec::with_capacity(n_users);
        for _ in 0..n_users {
            let mut it = lines.next()?.split_ascii_whitespace();
            let u: u32 = it.next()?.parse().ok()?;
            let t: u64 = it.next()?.parse().ok()?;
            let s: u64 = it.next()?.parse().ok()?;
            if it.next().is_some() {
                return None;
            }
            users.push((u, t, s));
        }
        open.push(OpenItemState {
            item: head[0] as u32,
            last_seq: head[1],
            folded: head[2],
            users,
        });
    }
    let update_counts = read_u64s(lines.next()?, "update_counts")?;
    let ctx_counts = read_u64s(lines.next()?, "ctx_counts")?;
    let initialized: Vec<bool> = read_u64s(lines.next()?, "initialized")?
        .into_iter()
        .map(|v| v != 0)
        .collect();
    if lines.next()? != "store" {
        return None;
    }
    let store_start = text[..body_end].find("\nstore\n")? + "\nstore\n".len();
    let store = EmbeddingStore::load_data(io::Cursor::new(&bytes[store_start..body_end])).ok()?;
    let n = store.len();
    if update_counts.len() != n || ctx_counts.len() != n || initialized.len() != n {
        return None;
    }
    Some(SlotParse::Valid(Box::new(JournalState {
        round,
        pos,
        records_seen: c[0],
        records_applied: c[1],
        quarantined: c[2],
        open,
        online: OnlineState {
            store,
            update_counts,
            ctx_counts,
            initialized,
            episodes_applied: c[3],
            pairs_applied: c[4],
        },
    })))
}

fn field<'a>(line: &'a str, tag: &str) -> Option<&'a str> {
    line.strip_prefix(tag)?.strip_prefix(' ').map(str::trim)
}

fn fields(line: &str, tag: &str, n: usize) -> Option<Vec<u64>> {
    let vals: Vec<u64> = field(line, tag)?
        .split_ascii_whitespace()
        .map(|t| t.parse().ok())
        .collect::<Option<_>>()?;
    (vals.len() == n).then_some(vals)
}

fn read_u64s(line: &str, tag: &str) -> Option<Vec<u64>> {
    let mut it = field(line, tag)?.split_ascii_whitespace();
    let n: usize = it.next()?.parse().ok()?;
    let vals: Vec<u64> = it.map(|t| t.parse().ok()).collect::<Option<_>>()?;
    (vals.len() == n).then_some(vals)
}

/// Truncates `bytes` off the end of `path` — the soak harness's torn-write
/// simulator (a crash between write and fsync on a less careful design).
pub fn truncate_tail(path: &Path, bytes: u64) -> io::Result<()> {
    let len = fs::metadata(path)?.len();
    let f = fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(len.saturating_sub(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tmp_dir;

    fn sample(round: u64) -> JournalState {
        let mut online = OnlineState::fresh(4, 3);
        online.store.init_row(1, 7);
        online.initialized[1] = true;
        online.update_counts[1] = 5;
        online.ctx_counts[2] = 9;
        online.episodes_applied = 3;
        online.pairs_applied = 40;
        JournalState {
            round,
            pos: TailPosition {
                offset: 123,
                line_no: 9,
            },
            records_seen: 11,
            records_applied: 6,
            quarantined: 2,
            open: vec![OpenItemState {
                item: 42,
                last_seq: 11,
                folded: 5,
                users: vec![(0, 10, 3), (2, 4, 1)],
            }],
            online,
        }
    }

    fn assert_same(a: &JournalState, b: &JournalState) {
        assert_eq!(a.round, b.round);
        assert_eq!(a.pos, b.pos);
        assert_eq!(
            (a.records_seen, a.records_applied, a.quarantined),
            (b.records_seen, b.records_applied, b.quarantined)
        );
        assert_eq!(a.open, b.open);
        assert_eq!(a.online.update_counts, b.online.update_counts);
        assert_eq!(a.online.ctx_counts, b.online.ctx_counts);
        assert_eq!(a.online.initialized, b.online.initialized);
        assert_eq!(a.online.episodes_applied, b.online.episodes_applied);
        assert_eq!(a.online.pairs_applied, b.online.pairs_applied);
        assert_eq!(
            a.online.store.source.to_vec(),
            b.online.store.source.to_vec()
        );
        assert_eq!(
            a.online.store.target.to_vec(),
            b.online.store.target.to_vec()
        );
    }

    #[test]
    fn roundtrip_is_exact() {
        let tmp = tmp_dir("journal-roundtrip");
        let j = Journal::new(&tmp).unwrap();
        let state = sample(4);
        j.write(&state).unwrap();
        let loaded = j.load_latest().unwrap().expect("snapshot present");
        assert_same(&state, &loaded);
    }

    #[test]
    fn newest_valid_round_wins_across_slots() {
        let tmp = tmp_dir("journal-rounds");
        let j = Journal::new(&tmp).unwrap();
        j.write(&sample(4)).unwrap(); // slot a
        j.write(&sample(5)).unwrap(); // slot b
        assert_eq!(j.load_latest().unwrap().unwrap().round, 5);
        j.write(&sample(6)).unwrap(); // slot a again
        assert_eq!(j.load_latest().unwrap().unwrap().round, 6);
    }

    #[test]
    fn truncated_slot_falls_back_to_previous_round() {
        let tmp = tmp_dir("journal-torn");
        let j = Journal::new(&tmp).unwrap();
        j.write(&sample(4)).unwrap();
        let newest = j.write(&sample(5)).unwrap();
        truncate_tail(&newest, 10).unwrap();
        let loaded = j.load_latest().unwrap().expect("older slot survives");
        assert_eq!(loaded.round, 4);
    }

    #[test]
    fn bitflip_is_rejected_by_checksum() {
        let tmp = tmp_dir("journal-flip");
        let j = Journal::new(&tmp).unwrap();
        let path = j.write(&sample(4)).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        assert!(j.load_latest().unwrap().is_none(), "corrupt slot discarded");
    }

    #[test]
    fn empty_dir_is_a_fresh_start() {
        let tmp = tmp_dir("journal-fresh");
        let j = Journal::new(&tmp).unwrap();
        assert!(j.load_latest().unwrap().is_none());
    }

    #[test]
    fn shape_mismatch_is_typed() {
        let state = sample(0); // 4 users, k = 3
        assert!(check_shape(&state, 4, 4, 3).is_ok());
        // Growth window: journal may hold more rows than the graph, up to
        // the configured universe.
        assert!(check_shape(&state, 2, 8, 3).is_ok());
        let err = check_shape(&state, 8, 8, 3).unwrap_err();
        assert!(matches!(err, PipelineError::JournalMismatch { .. }));
        let err = check_shape(&state, 2, 3, 3).unwrap_err();
        assert!(matches!(err, PipelineError::JournalMismatch { .. }));
        let err = check_shape(&state, 4, 4, 5).unwrap_err();
        assert!(matches!(err, PipelineError::JournalMismatch { .. }));
    }

    #[test]
    fn foreign_schema_version_fails_typed_with_found_and_expected() {
        let tmp = tmp_dir("journal-schema");
        let j = Journal::new(&tmp).unwrap();
        let path = j.write(&sample(4)).unwrap();
        // Rewrite the slot as a future schema: bump the header version and
        // re-checksum so the bytes are *intact*, just incompatible.
        let text = String::from_utf8(fs::read(&path).unwrap()).unwrap();
        let body_end = text.trim_end_matches('\n').rfind('\n').unwrap() + 1;
        let body = text[..body_end].replacen("inf2vec-journal v2", "inf2vec-journal v9", 1);
        let rewritten = format!("{body}checksum {:016x}\n", fnv1a(body.as_bytes()));
        fs::write(&path, rewritten).unwrap();

        let err = j.load_latest().unwrap_err();
        match err {
            PipelineError::JournalMismatch { detail } => {
                assert!(detail.contains("v9"), "found version named: {detail}");
                assert!(detail.contains("v2"), "expected version named: {detail}");
            }
            other => panic!("expected JournalMismatch, got {other:?}"),
        }
    }

    #[test]
    fn injected_write_fault_leaves_the_slot_untouched() {
        let tmp = tmp_dir("journal-enospc");
        let j = Journal::new(&tmp).unwrap();
        let good = j.write(&sample(4)).unwrap();
        let before = fs::read(&good).unwrap();
        // Round 6 targets the same slot (a). The injected partial write
        // must fail the call and leave the previous round's bytes intact.
        let err = j.write_with(&sample(6), Some(64));
        assert!(err.is_err(), "partial write must surface as an error");
        assert_eq!(fs::read(&good).unwrap(), before, "slot bytes unchanged");
        assert_eq!(j.load_latest().unwrap().unwrap().round, 4);
        // No temp litter left behind.
        let litter: Vec<_> = fs::read_dir(&tmp)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("tmp"))
            .collect();
        assert!(litter.is_empty(), "temp files cleaned: {litter:?}");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary mangling of one or both slots never panics and
            /// never loses the recovery guarantee: either a valid slot
            /// survives (round ≤ newest written) or the journal reports a
            /// fresh start — unless the mangled bytes still checksum with
            /// a foreign version header, which must fail typed.
            #[test]
            fn mangled_slots_recover_or_fresh_start(
                cut_a in 0usize..4096,
                cut_b in 0usize..4096,
                raw_flip_a in 0usize..2049,
                raw_flip_b in 0usize..2049,
            ) {
                // 2048 is the "don't flip" sentinel (the vendored proptest
                // has no Option strategy).
                let flip_a = (raw_flip_a < 2048).then_some(raw_flip_a);
                let flip_b = (raw_flip_b < 2048).then_some(raw_flip_b);
                let tmp = tmp_dir(&format!(
                    "journal-prop-{cut_a}-{cut_b}-{raw_flip_a}-{raw_flip_b}"
                ));
                let j = Journal::new(&tmp).unwrap();
                j.write(&sample(4)).unwrap();
                j.write(&sample(5)).unwrap();
                for (name, cut, flip) in
                    [("journal.a", cut_a, flip_a), ("journal.b", cut_b, flip_b)]
                {
                    let path = tmp.join(name);
                    let mut bytes = fs::read(&path).unwrap();
                    bytes.truncate(bytes.len().saturating_sub(cut));
                    if let (Some(i), false) = (flip, bytes.is_empty()) {
                        let at = i % bytes.len();
                        bytes[at] ^= 0x41;
                    }
                    fs::write(&path, bytes).unwrap();
                }
                match j.load_latest() {
                    Ok(Some(state)) => prop_assert!(state.round == 4 || state.round == 5),
                    Ok(None) => {} // both slots gone: fresh start is legal
                    Err(PipelineError::JournalMismatch { .. }) => {} // mangled into a "foreign version" that still checksums
                    Err(e) => {
                        return Err(proptest::TestCaseError(format!("unexpected error: {e}")))
                    }
                }
                let _ = fs::remove_dir_all(&tmp);
            }

            /// A slot rewritten with a foreign version header (re-checksummed,
            /// so the bytes are intact) must fail typed, for any version tag.
            #[test]
            fn any_foreign_version_is_a_typed_mismatch(v in 3u32..999) {
                let tmp = tmp_dir(&format!("journal-prop-v{v}"));
                let j = Journal::new(&tmp).unwrap();
                let path = j.write(&sample(4)).unwrap();
                let text = String::from_utf8(fs::read(&path).unwrap()).unwrap();
                let body_end = text.trim_end_matches('\n').rfind('\n').unwrap() + 1;
                let body = text[..body_end]
                    .replacen("inf2vec-journal v2", &format!("inf2vec-journal v{v}"), 1);
                let rewritten =
                    format!("{body}checksum {:016x}\n", fnv1a(body.as_bytes()));
                fs::write(&path, rewritten).unwrap();
                prop_assert!(matches!(
                    j.load_latest(),
                    Err(PipelineError::JournalMismatch { .. })
                ));
                let _ = fs::remove_dir_all(&tmp);
            }
        }
    }
}
