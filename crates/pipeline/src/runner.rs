//! The pipeline runtime: stage threads, supervision, exactly-once replay.
//!
//! Three stages, two bounded channels:
//!
//! - **tailer** (thread): polls the action log via [`LogTail`] and sends
//!   record batches over a bounded channel — a slow trainer applies
//!   backpressure by blocking the tailer, never by growing a queue.
//! - **trainer** (the caller's thread, inside
//!   [`Pipeline::run_until_idle`]): folds records into open episodes,
//!   closes episodes that have gone quiet, applies their pairs to the
//!   online model, and journals progress at batch boundaries.
//! - **publisher** (thread): receives model snapshots over a capacity-1
//!   channel and installs them into the sink with retry + backoff.
//!
//! # Exactly-once across crashes
//!
//! The journal commits `(tail position, counters, open episodes, online
//! state)` atomically, only at batch boundaries. After a crash anywhere,
//! recovery loads the newest valid journal and re-tails the log from the
//! committed position; every downstream decision — when an episode
//! closes, which contexts its pairs sample, which negatives each pair
//! draws, how rows initialize — is a pure function of that journaled
//! state and the log bytes, so the replayed run is bit-identical to an
//! uninterrupted one. Batch boundaries may fall differently on replay;
//! the state after consuming any given record does not.
//!
//! # Supervision
//!
//! Each stage has a restart budget. A panicked trainer is rebuilt from
//! the journal (with a *fresh* tailer channel, so half-applied in-flight
//! batches are discarded rather than double-applied); a dead tailer is
//! respawned at the trainer's committed position; a dead publisher is
//! respawned and at most the single in-flight snapshot is lost (counted
//! as skipped). Exhausting a budget escalates to
//! [`PipelineError::StageFailed`].

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use inf2vec_diffusion::{Episode, ItemId};
use inf2vec_embed::{EmbeddingStore, OnlineSgns};
use inf2vec_graph::{DiGraph, NodeId};
use inf2vec_ingest::{
    compact_to_with, sentinel_base, ArchiveStore, LogTail, RetentionPolicy, TailItem, TailPosition,
};
use inf2vec_obs::{Event, TraceCtx};
use inf2vec_serve::store_checksum;
use inf2vec_util::error::{Inf2vecError, IngestError, PipelineError};
use inf2vec_util::{system_clock, FxHashMap, SharedClock};

use crate::config::PipelineConfig;
use crate::faults::FaultPlan;
use crate::journal::{self, check_shape, Journal, JournalState, OpenItemState};
use crate::publish::{
    export_snapshot, poison_snapshot, publish_with_retry, PublishCounters, PublishSink, Snapshot,
};
use crate::quality::{ProbeSet, QualityGate};

/// What the tailer sends the trainer.
enum TailMsg {
    /// New terminated lines, plus the position after consuming them.
    Batch {
        /// Classified items in log order.
        items: Vec<TailItem>,
        /// The committed position once every item is applied.
        pos_after: TailPosition,
    },
    /// The log had nothing new this poll.
    Idle,
}

/// A running tailer thread plus its channel. Dropping the handle stops
/// and joins the thread (in-flight batches are discarded — the next
/// tailer re-reads them from the trainer's committed position).
struct TailerHandle {
    rx: Receiver<TailMsg>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Drop for TailerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            // The tailer may be blocked in a send on a full channel;
            // drain until it observes the stop flag and exits.
            while !t.is_finished() {
                let _ = self.rx.try_recv();
                std::thread::yield_now();
            }
            let _ = t.join();
        }
    }
}

/// A running publisher thread. Dropping closes the channel and joins:
/// the publisher finishes (or abandons, per retry budget) what it holds.
struct PublisherHandle {
    tx: Option<SyncSender<Snapshot>>,
    thread: Option<JoinHandle<()>>,
}

impl Drop for PublisherHandle {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One still-assembling episode.
#[derive(Debug, Default)]
struct OpenItem {
    /// Per-user earliest activation `(time, arrival seq)`.
    users: FxHashMap<u32, (u64, u64)>,
    /// Accepted-record sequence of the most recent activity.
    last_seq: u64,
    /// Accepted records folded in (retired together when the item closes).
    folded: u64,
}

/// The trainer stage: episode assembly + online SGNS + counters. All of
/// its state round-trips through [`JournalState`].
struct Trainer {
    online: OnlineSgns,
    open: BTreeMap<u32, OpenItem>,
    pos: TailPosition,
    records_seen: u64,
    records_applied: u64,
    quarantined: u64,
    /// Exponential moving average of episode loss. Observability only —
    /// deliberately *not* journaled, so it never feeds back into training
    /// and a post-recovery reset is harmless.
    loss_ema: Option<f64>,
}

impl Trainer {
    /// Rebuilds a trainer from a journal snapshot (or fresh when `None`).
    /// Returns the trainer and the next journal round. `n` is the base
    /// row count (the social graph); a journal may hold anywhere in
    /// `[n, universe]` rows — the row space it had grown to when written.
    fn from_journal(
        loaded: Option<JournalState>,
        cfg: &PipelineConfig,
        n: usize,
        universe: usize,
        k: usize,
    ) -> Result<(Self, u64), Inf2vecError> {
        match loaded {
            None => Ok((
                Self {
                    online: OnlineSgns::new(n, k, cfg.online.clone(), cfg.seed()),
                    open: BTreeMap::new(),
                    pos: TailPosition::default(),
                    records_seen: 0,
                    records_applied: 0,
                    quarantined: 0,
                    loss_ema: None,
                },
                0,
            )),
            Some(s) => {
                check_shape(&s, n, universe, k)?;
                let online = OnlineSgns::from_state(s.online, cfg.online.clone(), cfg.seed())
                    .map_err(|e| {
                        Inf2vecError::from(PipelineError::JournalMismatch {
                            detail: e.to_string(),
                        })
                    })?;
                let open = s
                    .open
                    .into_iter()
                    .map(|it| {
                        (
                            it.item,
                            OpenItem {
                                users: it.users.iter().map(|&(u, t, q)| (u, (t, q))).collect(),
                                last_seq: it.last_seq,
                                folded: it.folded,
                            },
                        )
                    })
                    .collect();
                Ok((
                    Self {
                        online,
                        open,
                        pos: s.pos,
                        records_seen: s.records_seen,
                        records_applied: s.records_applied,
                        quarantined: s.quarantined,
                        loss_ema: None,
                    },
                    s.round + 1,
                ))
            }
        }
    }

    /// The persistable snapshot for journal round `round`.
    fn to_state(&self, round: u64) -> JournalState {
        let open = self
            .open
            .iter()
            .map(|(&item, it)| {
                let mut users: Vec<(u32, u64, u64)> =
                    it.users.iter().map(|(&u, &(t, q))| (u, t, q)).collect();
                users.sort_unstable();
                OpenItemState {
                    item,
                    last_seq: it.last_seq,
                    folded: it.folded,
                    users,
                }
            })
            .collect();
        JournalState {
            round,
            pos: self.pos,
            records_seen: self.records_seen,
            records_applied: self.records_applied,
            quarantined: self.quarantined,
            open,
            online: self.online.state().clone(),
        }
    }

    /// Applies one tailed batch: fold records, quarantine defects, close
    /// episodes that went quiet, commit the new position.
    fn apply_batch(
        &mut self,
        items: Vec<TailItem>,
        pos_after: TailPosition,
        cfg: &PipelineConfig,
        graph: &DiGraph,
        faults: &FaultPlan,
    ) {
        for item in items {
            match item {
                TailItem::Record(r) => {
                    self.records_seen += 1;
                    let seq = self.records_seen;
                    cfg.telemetry.count("inf2vec_pipeline_records_total", 1);
                    // Root span of this record's causal chain. The id is a
                    // pure function of (seed, seq) and seq is journaled, so
                    // a post-crash replay re-stamps identical ids.
                    cfg.telemetry.emit_with(|| {
                        TraceCtx::for_record(cfg.seed(), seq).stamp(
                            Event::new("trace.accept")
                                .u64("seq", seq)
                                .u64("line", r.line_no)
                                .u64("user", r.user as u64)
                                .u64("item", r.item as u64)
                                .u64("time", r.time),
                        )
                    });
                    let entry = self.open.entry(r.item).or_default();
                    // Earliest activation per user wins; ties keep the
                    // first arrival (same semantics as batch assembly).
                    let slot = entry.users.entry(r.user).or_insert((r.time, seq));
                    if r.time < slot.0 {
                        *slot = (r.time, seq);
                    }
                    entry.folded += 1;
                    entry.last_seq = seq;
                    self.close_due(cfg, graph, faults);
                }
                TailItem::Defect { kind, line_no, .. } => {
                    self.quarantined += 1;
                    cfg.telemetry.count_with(
                        "inf2vec_pipeline_quarantined_total",
                        &[("kind", kind.name())],
                        1,
                    );
                    cfg.telemetry.emit_with(|| {
                        TraceCtx::for_defect(cfg.seed(), line_no).stamp(
                            Event::new("pipeline.quarantine")
                                .u64("line", line_no)
                                .str("kind", kind.name()),
                        )
                    });
                }
            }
        }
        self.pos = pos_after;
    }

    /// Closes (in ascending item order, so replay closes identically)
    /// every open episode whose last activity is `close_after` accepted
    /// records in the past.
    fn close_due(&mut self, cfg: &PipelineConfig, graph: &DiGraph, faults: &FaultPlan) {
        let close_after = cfg.close_after.max(1);
        let due: Vec<u32> = self
            .open
            .iter()
            .filter(|(_, it)| self.records_seen - it.last_seq >= close_after)
            .map(|(&item, _)| item)
            .collect();
        for item in due {
            let it = self.open.remove(&item).expect("due item is open");
            self.close_item(item, it, cfg, graph, faults);
        }
    }

    /// Closes all open episodes immediately (used for final drain when
    /// the log is known complete, e.g. end of a soak).
    fn close_all(&mut self, cfg: &PipelineConfig, graph: &DiGraph, faults: &FaultPlan) {
        while let Some((&item, _)) = self.open.iter().next() {
            let it = self.open.remove(&item).expect("item is open");
            self.close_item(item, it, cfg, graph, faults);
        }
    }

    fn close_item(
        &mut self,
        item: u32,
        it: OpenItem,
        cfg: &PipelineConfig,
        graph: &DiGraph,
        faults: &FaultPlan,
    ) {
        // The injected panic fires *before* the model mutates: the
        // journal still describes the pre-episode state, and replay
        // closes this episode again, this time applying it.
        if faults.tick_trainer_episode() {
            panic!("injected trainer panic at episode close (item {item})");
        }
        let mut acts: Vec<(u64, u64, u32)> =
            it.users.iter().map(|(&u, &(t, q))| (t, q, u)).collect();
        acts.sort_unstable();
        let episode = Episode::new(
            ItemId(item),
            acts.iter().map(|&(t, _, u)| (NodeId(u), t)).collect(),
        );
        let episode_seq = self.online.episodes_applied();
        let (pairs, stats) = inf2vec_core::episode_pairs(graph, &episode, &cfg.inf2vec, episode_seq);
        let loss = self.online.apply_episode(episode_seq, &pairs);
        self.records_applied += it.folded;
        cfg.telemetry.count("inf2vec_pipeline_episodes_total", 1);
        cfg.telemetry
            .count("inf2vec_pipeline_pairs_total", pairs.len() as u64);
        if !pairs.is_empty() {
            cfg.telemetry.observe("inf2vec_pipeline_episode_loss", loss);
            let ema = match self.loss_ema {
                None => loss,
                Some(prev) => 0.9 * prev + 0.1 * loss,
            };
            self.loss_ema = Some(ema);
            cfg.telemetry.gauge_set("inf2vec_pipeline_loss_ema", ema);
        }
        cfg.telemetry.emit_with(|| {
            TraceCtx::for_episode(cfg.seed(), episode_seq).stamp(
                Event::new("pipeline.episode")
                    .u64("item", item as u64)
                    .u64("seq", episode_seq)
                    .u64("users", episode.len() as u64)
                    .u64("pairs", pairs.len() as u64)
                    .u64("local", stats.local)
                    .u64("global", stats.global)
                    .f64("loss", loss),
            )
        });
    }
}

/// End-of-run accounting: every consumed record lands in exactly one of
/// `applied` / `quarantined` / `pending`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reconciliation {
    /// Well-formed records consumed from the log.
    pub records_seen: u64,
    /// Records whose episode closed and trained the model.
    pub records_applied: u64,
    /// Defective records quarantined.
    pub records_quarantined: u64,
    /// Records folded into episodes still open (awaiting quiet).
    pub records_pending: u64,
    /// Episodes applied to the model.
    pub episodes_applied: u64,
    /// Training pairs applied.
    pub pairs_applied: u64,
    /// Snapshots successfully published.
    pub publishes_ok: u64,
    /// Snapshots abandoned after exhausting retries.
    pub publishes_failed: u64,
    /// Snapshots withheld by the quality gate (probe regression).
    pub publishes_withheld: u64,
    /// Snapshot offers dropped (publisher busy or restarting).
    pub publishes_skipped: u64,
    /// Stage restarts consumed: (tailer, trainer, publisher).
    pub restarts: (u32, u32, u32),
    /// [`store_checksum`] of the current model (bit-identity witness).
    pub store_checksum: u64,
}

impl Reconciliation {
    /// The exactly-once ledger: `applied + pending == seen` and every
    /// seen/quarantined record matches what the writer produced.
    pub fn balances(&self, written_good: u64, written_bad: u64) -> bool {
        self.records_applied + self.records_pending == self.records_seen
            && self.records_seen == written_good
            && self.records_quarantined == written_bad
    }
}

/// Per-incarnation archive accounting (see
/// [`Pipeline::archive_counters`]). Every byte that leaves the
/// retained-history window lands in exactly one of `bytes_reclaimed`
/// (expired under the retention policy) or `bytes_dropped` (degraded
/// past — seal retries exhausted, or archiving disabled), so summing
/// both across incarnations equals the archive's expired-prefix offset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArchiveCounters {
    /// Segments sealed into the archive store.
    pub segments_sealed: u64,
    /// Segments expired under the retention policy.
    pub segments_expired: u64,
    /// Payload bytes sealed.
    pub bytes_sealed: u64,
    /// Payload bytes reclaimed by retention expiry.
    pub bytes_reclaimed: u64,
    /// Payload bytes compacted away *without* landing in the archive.
    pub bytes_dropped: u64,
}

/// The crash-recoverable continuous-learning pipeline.
pub struct Pipeline {
    cfg: PipelineConfig,
    clock: SharedClock,
    faults: Arc<FaultPlan>,
    graph: Arc<DiGraph>,
    sink: Arc<dyn PublishSink>,
    log_path: PathBuf,
    /// Where the flight recorder dumps on stage panics (`flight.jsonl`
    /// beside the journal slots).
    flight_path: PathBuf,
    journal: Journal,
    trainer: Trainer,
    round: u64,
    /// The user-id space the tailer accepts and the row space may grow
    /// to: `max(graph nodes, cfg.user_capacity)`.
    universe: usize,
    /// Quality gate (`None` when `cfg.probe_pairs == 0`).
    gate: Option<Arc<QualityGate>>,
    /// The position committed by the *previous* successful journal write
    /// in this incarnation — the newest point both slots are guaranteed
    /// to be at or past, and therefore the compaction bound.
    prev_commit: Option<TailPosition>,
    /// Compactions performed by this incarnation.
    compactions: u64,
    /// The segmented archive store, opened lazily at the first
    /// compaction that needs it (`archive_compacted` only). An open
    /// failure degrades: counted, retried at the next boundary.
    archive: Option<ArchiveStore>,
    /// Per-incarnation archive accounting.
    archive_counters: ArchiveCounters,
    tailer: Option<TailerHandle>,
    publisher: Option<PublisherHandle>,
    counters: Arc<PublishCounters>,
    snapshots_offered: u64,
    batches_since_journal: u32,
    last_publish_episode: u64,
    tailer_restarts: u32,
    trainer_restarts: u32,
    publisher_restarts: u32,
}

impl Pipeline {
    /// Opens a pipeline over `log_path`, recovering from any journal in
    /// `journal_dir` (fresh start when none is readable).
    pub fn open(
        cfg: PipelineConfig,
        log_path: impl Into<PathBuf>,
        journal_dir: impl Into<PathBuf>,
        graph: Arc<DiGraph>,
        sink: Arc<dyn PublishSink>,
    ) -> Result<Self, Inf2vecError> {
        Self::with_runtime(
            cfg,
            log_path,
            journal_dir,
            graph,
            sink,
            system_clock(),
            Arc::new(FaultPlan::none()),
        )
    }

    /// [`Pipeline::open`] with an explicit clock and fault plan (tests,
    /// soak harness).
    pub fn with_runtime(
        cfg: PipelineConfig,
        log_path: impl Into<PathBuf>,
        journal_dir: impl Into<PathBuf>,
        graph: Arc<DiGraph>,
        sink: Arc<dyn PublishSink>,
        clock: SharedClock,
        faults: Arc<FaultPlan>,
    ) -> Result<Self, Inf2vecError> {
        cfg.inf2vec.validate()?;
        let journal_dir = journal_dir.into();
        let log_path: PathBuf = log_path.into();
        let flight_path = journal_dir.join("flight.jsonl");
        let journal = Journal::new(journal_dir)?;
        let n = graph.node_count() as usize;
        let universe = if cfg.user_capacity == 0 {
            n
        } else {
            cfg.user_capacity.max(n)
        };
        let k = cfg.inf2vec.k;
        let loaded = journal.load_latest()?;
        let recovered = loaded.is_some();
        if !recovered {
            // A fresh start over a compacted log cannot replay the
            // rotated-away prefix: fail typed instead of silently
            // training on a truncated stream.
            if let Some((base, _)) = sentinel_base(&log_path).map_err(Inf2vecError::Io)? {
                if base > 0 {
                    return Err(IngestError::LogRotated { committed: 0, base }.into());
                }
            }
        }
        let (trainer, round) = Trainer::from_journal(loaded, &cfg, n, universe, k)?;
        let gate = (cfg.probe_pairs > 0).then(|| {
            let gate = QualityGate::new(
                ProbeSet::build(&graph, cfg.seed(), cfg.probe_pairs),
                cfg.quality_budget,
            );
            // Seed the high-water mark from the *recovered* model, so a
            // poisoned first snapshot after a crash is still caught.
            let best = gate.observe(trainer.online.store());
            cfg.telemetry.gauge_set("inf2vec_pipeline_quality_probe", best);
            Arc::new(gate)
        });
        cfg.telemetry.emit(
            Event::new("pipeline.open")
                .u64("recovered", recovered as u64)
                .u64("round", round)
                .u64("offset", trainer.pos.offset)
                .u64("records", trainer.records_seen)
                .u64("episodes", trainer.online.episodes_applied())
                .u64("rows", trainer.online.store().len() as u64)
                .u64("universe", universe as u64),
        );
        let last_publish_episode = trainer.online.episodes_applied();
        Ok(Self {
            cfg,
            clock,
            faults,
            graph,
            sink,
            log_path,
            flight_path,
            journal,
            trainer,
            round,
            universe,
            gate,
            prev_commit: None,
            compactions: 0,
            archive: None,
            archive_counters: ArchiveCounters::default(),
            tailer: None,
            publisher: None,
            counters: Arc::new(PublishCounters::default()),
            snapshots_offered: 0,
            batches_since_journal: 0,
            last_publish_episode,
            tailer_restarts: 0,
            trainer_restarts: 0,
            publisher_restarts: 0,
        })
    }

    /// Consumes the log until `idle_polls` consecutive empty polls, then
    /// journals. Supervises all stages while running.
    pub fn run_until_idle(&mut self) -> Result<(), Inf2vecError> {
        self.ensure_tailer();
        self.ensure_publisher();
        let mut idle = 0u32;
        while idle < self.cfg.idle_polls.max(1) {
            let msg = self.tailer.as_ref().expect("tailer running").rx.recv();
            match msg {
                Ok(TailMsg::Idle) => idle += 1,
                Ok(TailMsg::Batch { items, pos_after }) => {
                    idle = 0;
                    self.handle_batch(items, pos_after)?;
                }
                Err(_) => {
                    // The tailer died (injected or real panic): respawn
                    // it at the trainer's committed position.
                    idle = 0;
                    self.restart_tailer()?;
                }
            }
        }
        self.write_journal()
    }

    fn handle_batch(
        &mut self,
        items: Vec<TailItem>,
        pos_after: TailPosition,
    ) -> Result<(), Inf2vecError> {
        let trainer = &mut self.trainer;
        let (cfg, graph, faults) = (&self.cfg, &self.graph, &self.faults);
        let result = catch_unwind(AssertUnwindSafe(|| {
            trainer.apply_batch(items, pos_after, cfg, graph, faults)
        }));
        match result {
            Ok(()) => {
                self.batches_since_journal += 1;
                if self.batches_since_journal >= self.cfg.journal_every_batches.max(1) {
                    self.write_journal()?;
                }
                self.maybe_publish()
            }
            Err(payload) => self.recover_trainer(panic_message(payload)),
        }
    }

    /// Trainer panicked mid-batch: its in-memory state is suspect, so
    /// rebuild it from the journal and give it a fresh tailer channel
    /// (discarding in-flight batches the journaled position will re-read).
    fn recover_trainer(&mut self, message: String) -> Result<(), Inf2vecError> {
        // Dump *before* emitting the restart event: the last line of the
        // flight file must be an event that preceded the panic site.
        self.dump_flight_postmortem("trainer_panic");
        self.trainer_restarts += 1;
        self.cfg.telemetry.count_with(
            "inf2vec_pipeline_stage_restarts_total",
            &[("stage", "train")],
            1,
        );
        self.cfg.telemetry.emit(
            Event::new("pipeline.stage_restart")
                .str("stage", "train")
                .u64("restarts", self.trainer_restarts as u64)
                .str("panic", message.clone()),
        );
        if self.trainer_restarts > self.cfg.restart_budget {
            return Err(PipelineError::StageFailed {
                stage: "train",
                restarts: self.trainer_restarts,
                message,
            }
            .into());
        }
        let loaded = self.journal.load_latest()?;
        let n = self.graph.node_count() as usize;
        let (trainer, round) =
            Trainer::from_journal(loaded, &self.cfg, n, self.universe, self.cfg.inf2vec.k)?;
        self.trainer = trainer;
        self.round = round;
        self.batches_since_journal = 0;
        self.last_publish_episode = self.trainer.online.episodes_applied();
        self.tailer = None; // join the old tailer, discard its channel
        self.ensure_tailer();
        Ok(())
    }

    fn restart_tailer(&mut self) -> Result<(), Inf2vecError> {
        self.dump_flight_postmortem("tailer_death");
        self.tailer_restarts += 1;
        self.cfg.telemetry.count_with(
            "inf2vec_pipeline_stage_restarts_total",
            &[("stage", "tail")],
            1,
        );
        if self.tailer_restarts > self.cfg.restart_budget {
            return Err(PipelineError::StageFailed {
                stage: "tail",
                restarts: self.tailer_restarts,
                message: "tailer thread died".into(),
            }
            .into());
        }
        self.tailer = None;
        self.ensure_tailer();
        Ok(())
    }

    fn restart_publisher(&mut self) -> Result<(), Inf2vecError> {
        self.dump_flight_postmortem("publisher_death");
        self.publisher_restarts += 1;
        self.cfg.telemetry.count_with(
            "inf2vec_pipeline_stage_restarts_total",
            &[("stage", "publish")],
            1,
        );
        if self.publisher_restarts > self.cfg.restart_budget {
            return Err(PipelineError::StageFailed {
                stage: "publish",
                restarts: self.publisher_restarts,
                message: "publisher thread died".into(),
            }
            .into());
        }
        self.publisher = None;
        self.ensure_publisher();
        Ok(())
    }

    fn maybe_publish(&mut self) -> Result<(), Inf2vecError> {
        let episodes = self.trainer.online.episodes_applied();
        self.cfg.telemetry.gauge_set(
            "inf2vec_pipeline_publish_lag_episodes",
            episodes.saturating_sub(self.counters.last_episodes.load(Ordering::SeqCst)) as f64,
        );
        if episodes < self.last_publish_episode + self.cfg.publish_every_episodes.max(1) {
            return Ok(());
        }
        self.last_publish_episode = episodes;
        let store = self.trainer.online.store().clone();
        let snap = Snapshot {
            checksum: store_checksum(&store),
            store,
            label: format!("pipeline-e{episodes}"),
            episodes,
        };
        self.snapshots_offered += 1;
        let tx = self
            .publisher
            .as_ref()
            .and_then(|p| p.tx.clone())
            .expect("publisher running");
        match tx.try_send(snap) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                // Publisher busy: drop the offer, training never waits.
                self.cfg
                    .telemetry
                    .count("inf2vec_pipeline_publish_skipped_total", 1);
                Ok(())
            }
            Err(TrySendError::Disconnected(snap)) => {
                self.restart_publisher()?;
                let tx = self
                    .publisher
                    .as_ref()
                    .and_then(|p| p.tx.clone())
                    .expect("publisher running");
                if tx.try_send(snap).is_err() {
                    self.cfg
                        .telemetry
                        .count("inf2vec_pipeline_publish_skipped_total", 1);
                }
                Ok(())
            }
        }
    }

    /// Writes the journal with bounded retry against disk faults. An
    /// exhausted retry chain **degrades instead of failing**: training
    /// continues uncommitted (a wider replay window after the next crash,
    /// never lost records), a flight postmortem is dumped, and the next
    /// batch boundary tries again. Schema/shape errors still propagate —
    /// only disk-level write failures degrade.
    fn write_journal(&mut self) -> Result<(), Inf2vecError> {
        let state = self.trainer.to_state(self.round);
        let max_attempts = self.cfg.disk_max_attempts.max(1);
        let mut backoff = self.cfg.disk_retry_backoff;
        let mut written = None;
        for attempt in 1..=max_attempts {
            let inject = self.faults.tick_journal_attempt().then_some(64);
            match self.journal.write_with(&state, inject) {
                Ok(path) => {
                    written = Some(path);
                    break;
                }
                Err(e) => {
                    self.cfg
                        .telemetry
                        .count("inf2vec_pipeline_journal_write_errors_total", 1);
                    self.cfg.telemetry.emit(
                        Event::new("pipeline.journal_write_error")
                            .u64("round", state.round)
                            .u64("attempt", attempt as u64)
                            .str("error", e.to_string()),
                    );
                    if attempt < max_attempts {
                        self.clock.sleep(backoff);
                        backoff *= 2;
                    }
                }
            }
        }
        let Some(path) = written else {
            // All attempts failed: skip this commit, keep training.
            self.dump_flight_postmortem("journal_write_failed");
            self.cfg
                .telemetry
                .count("inf2vec_pipeline_journal_writes_skipped_total", 1);
            self.batches_since_journal = 0;
            return Ok(());
        };
        self.round += 1;
        self.batches_since_journal = 0;
        self.cfg
            .telemetry
            .count("inf2vec_pipeline_journal_writes_total", 1);
        if self.faults.tick_journal_write() {
            // Torn-write injection: shear the tail off the slot that was
            // just written; recovery must fall back to the other slot.
            journal::truncate_tail(&path, 32).ok();
            self.cfg
                .telemetry
                .emit(Event::new("pipeline.injected_torn_journal").str(
                    "slot",
                    path.file_name().unwrap_or_default().to_string_lossy(),
                ));
        }
        self.maybe_compact();
        self.prev_commit = Some(state.pos);
        Ok(())
    }

    /// Compacts the action log when it has outgrown the configured
    /// budget, rotating away only bytes below [`Self::prev_commit`] —
    /// the point both journal slots have durably passed, so any
    /// recoverable journal can still resume. Failures degrade: counted,
    /// flight-dumped, retried at the next journal boundary.
    ///
    /// With [`PipelineConfig::archive_compacted`] set, each boundary is
    /// three steps in a crash-safe order:
    ///
    /// 1. **seal** the doomed prefix into the segmented archive store
    ///    (idempotent, so a crash before step 2 re-seals nothing);
    /// 2. **rewrite** the live log (the prefix now exists in exactly one
    ///    or — transiently, under a crash — both places, never zero);
    /// 3. **expire** archive segments over the retention budgets
    ///    (manifest-before-delete, floored at the compaction bound so
    ///    the journal replay window always stays restorable).
    ///
    /// A seal whose bounded retry chain exhausts degrades like the
    /// `archive_compacted=false` path: the prefix is dropped, counted in
    /// `inf2vec_pipeline_archive_dropped_bytes_total`, and the archive
    /// rebases over the hole so the *suffix* stays restorable.
    fn maybe_compact(&mut self) {
        let budget = self.cfg.log_budget_bytes;
        if budget == 0 {
            return;
        }
        let Some(compact_to) = self.prev_commit else {
            // First write of this incarnation: the other slot's position
            // is unknown, so no safe compaction point exists yet.
            return;
        };
        let live = std::fs::metadata(&self.log_path).map(|m| m.len()).unwrap_or(0);
        self.cfg
            .telemetry
            .gauge_set("inf2vec_pipeline_log_bytes", live as f64);
        if live <= budget {
            return;
        }
        let sealed_ok = !self.cfg.archive_compacted || self.seal_archive(compact_to);
        let inject = self.faults.tick_compaction_attempt().then_some(48);
        match compact_to_with(&self.log_path, compact_to, None, inject) {
            Ok(stats) => {
                self.compactions += 1;
                self.cfg
                    .telemetry
                    .count("inf2vec_pipeline_compactions_total", 1);
                self.cfg
                    .telemetry
                    .gauge_set("inf2vec_pipeline_log_bytes", stats.live_bytes as f64);
                self.cfg.telemetry.emit(
                    Event::new("pipeline.compaction")
                        .u64("base", stats.base)
                        .u64("dropped", stats.dropped_bytes)
                        .u64("live", stats.live_bytes),
                );
                if self.cfg.archive_compacted {
                    if !sealed_ok {
                        // The rewrite dropped bytes the archive never
                        // got: rebase over the hole so the suffix stays
                        // restorable, and account every lost byte.
                        self.archive_gap(compact_to);
                    }
                    self.expire_archive(compact_to);
                } else if stats.dropped_bytes > 0 {
                    // Archiving off: the prefix is gone by design, but
                    // never silently.
                    self.archive_counters.bytes_dropped += stats.dropped_bytes;
                    self.cfg.telemetry.count(
                        "inf2vec_pipeline_archive_dropped_bytes_total",
                        stats.dropped_bytes,
                    );
                }
                self.publish_archive_gauges();
            }
            Err(e) => {
                self.cfg
                    .telemetry
                    .count("inf2vec_pipeline_compaction_errors_total", 1);
                self.cfg.telemetry.emit(
                    Event::new("pipeline.compaction_error")
                        .u64("offset", compact_to.offset)
                        .str("error", e.to_string()),
                );
            }
        }
    }

    /// Step 1 of an archiving compaction: open the store if needed and
    /// seal the about-to-be-dropped prefix, with bounded disk-fault
    /// retry. Returns `false` when the prefix could not be made durable
    /// (the caller then degrades to drop-with-counter).
    fn seal_archive(&mut self, upto: TailPosition) -> bool {
        let now_ms = self.clock.now().as_millis() as u64;
        if self.archive.is_none() {
            match ArchiveStore::open_for_log(&self.log_path, now_ms) {
                Ok(store) => self.archive = Some(store),
                Err(e) => {
                    self.cfg
                        .telemetry
                        .count("inf2vec_pipeline_archive_seal_errors_total", 1);
                    self.cfg.telemetry.emit(
                        Event::new("pipeline.archive_error")
                            .str("op", "open")
                            .str("error", e.to_string()),
                    );
                    return false;
                }
            }
        }
        let store = self.archive.as_mut().expect("store just opened");
        // A previous incarnation degraded (dropped bytes unarchived) and
        // died before rebasing: the live log starts past the archive
        // end. Finish the rebase so this seal lands contiguously.
        if let Ok(Some((base, lines))) = sentinel_base(&self.log_path) {
            if base > store.end_offset() {
                let lost = base - store.start().offset;
                match store.rebase_to(
                    TailPosition {
                        offset: base,
                        line_no: lines,
                    },
                    None,
                ) {
                    Ok(_) => {
                        self.archive_counters.bytes_dropped += lost;
                        self.cfg
                            .telemetry
                            .count("inf2vec_pipeline_archive_dropped_bytes_total", lost);
                        self.cfg.telemetry.emit(
                            Event::new("pipeline.archive_rebase")
                                .u64("offset", base)
                                .u64("lost", lost),
                        );
                    }
                    Err(e) => {
                        self.cfg
                            .telemetry
                            .count("inf2vec_pipeline_archive_seal_errors_total", 1);
                        self.cfg.telemetry.emit(
                            Event::new("pipeline.archive_error")
                                .str("op", "rebase")
                                .str("error", e.to_string()),
                        );
                        return false;
                    }
                }
            }
        }
        let max_attempts = self.cfg.disk_max_attempts.max(1);
        let mut backoff = self.cfg.disk_retry_backoff;
        for attempt in 1..=max_attempts {
            let inject = self.faults.tick_archive_seal_attempt().then_some(48);
            match store.seal_from_log(&self.log_path, upto, now_ms, inject) {
                Ok(0) => return true, // already durable (idempotent retry)
                Ok(bytes) => {
                    self.archive_counters.segments_sealed += 1;
                    self.archive_counters.bytes_sealed += bytes;
                    self.cfg
                        .telemetry
                        .count("inf2vec_pipeline_archive_seals_total", 1);
                    self.cfg
                        .telemetry
                        .count("inf2vec_pipeline_archive_sealed_bytes_total", bytes);
                    self.cfg.telemetry.emit(
                        Event::new("pipeline.archive_seal")
                            .u64("seq", store.segments().last().map_or(0, |s| s.seq))
                            .u64("bytes", bytes)
                            .u64("end", store.end_offset()),
                    );
                    return true;
                }
                Err(e) => {
                    self.cfg
                        .telemetry
                        .count("inf2vec_pipeline_archive_seal_errors_total", 1);
                    self.cfg.telemetry.emit(
                        Event::new("pipeline.archive_error")
                            .str("op", "seal")
                            .u64("attempt", attempt as u64)
                            .str("error", e.to_string()),
                    );
                    if attempt < max_attempts {
                        self.clock.sleep(backoff);
                        backoff *= 2;
                    }
                }
            }
        }
        self.dump_flight_postmortem("archive_seal_failed");
        false
    }

    /// Degrade path: the live rewrite dropped `[start, compact_to)` but
    /// the seal never made it durable. Rebase the archive boundary to
    /// the new live base and count every byte that left the
    /// retained-history window.
    fn archive_gap(&mut self, compact_to: TailPosition) {
        let Some(store) = self.archive.as_mut() else {
            return;
        };
        let lost = compact_to.offset.saturating_sub(store.start().offset);
        match store.rebase_to(compact_to, None) {
            Ok(_) => {
                self.archive_counters.bytes_dropped += lost;
                self.cfg
                    .telemetry
                    .count("inf2vec_pipeline_archive_dropped_bytes_total", lost);
                self.cfg.telemetry.emit(
                    Event::new("pipeline.archive_rebase")
                        .u64("offset", compact_to.offset)
                        .u64("lost", lost),
                );
            }
            Err(e) => {
                // Even the rebase manifest failed: leave the store as
                // is; the next incarnation's open (or the next seal's
                // pre-check) finishes the rebase.
                self.cfg
                    .telemetry
                    .count("inf2vec_pipeline_archive_seal_errors_total", 1);
                self.cfg.telemetry.emit(
                    Event::new("pipeline.archive_error")
                        .str("op", "rebase")
                        .str("error", e.to_string()),
                );
            }
        }
    }

    /// Step 3 of an archiving compaction: expire segments over the
    /// retention budgets, floored at the compaction bound (nothing in
    /// the journal replay window is deletable). Bounded retry against
    /// manifest-write faults; exhaustion degrades — the segments stay,
    /// the next boundary retries.
    fn expire_archive(&mut self, floor: TailPosition) {
        let policy = RetentionPolicy {
            max_bytes: self.cfg.archive_max_bytes,
            max_segments: self.cfg.archive_max_segments,
            max_age: self.cfg.archive_max_age,
        };
        if policy.is_unbounded() {
            return;
        }
        let Some(store) = self.archive.as_mut() else {
            return;
        };
        let now_ms = self.clock.now().as_millis() as u64;
        let max_attempts = self.cfg.disk_max_attempts.max(1);
        let mut backoff = self.cfg.disk_retry_backoff;
        for attempt in 1..=max_attempts {
            let inject = self.faults.tick_expiry_attempt().then_some(48);
            match store.expire(&policy, floor.offset, now_ms, inject) {
                Ok(stats) => {
                    if stats.segments > 0 {
                        self.archive_counters.segments_expired += stats.segments;
                        self.archive_counters.bytes_reclaimed += stats.bytes;
                        self.cfg.telemetry.count(
                            "inf2vec_pipeline_archive_expired_segments_total",
                            stats.segments,
                        );
                        self.cfg.telemetry.count(
                            "inf2vec_pipeline_archive_reclaimed_bytes_total",
                            stats.bytes,
                        );
                        self.cfg.telemetry.emit(
                            Event::new("pipeline.archive_expiry")
                                .u64("segments", stats.segments)
                                .u64("bytes", stats.bytes)
                                .u64("start", store.start().offset),
                        );
                    }
                    return;
                }
                Err(e) => {
                    self.cfg
                        .telemetry
                        .count("inf2vec_pipeline_archive_expiry_errors_total", 1);
                    self.cfg.telemetry.emit(
                        Event::new("pipeline.archive_error")
                            .str("op", "expire")
                            .u64("attempt", attempt as u64)
                            .str("error", e.to_string()),
                    );
                    if attempt < max_attempts {
                        self.clock.sleep(backoff);
                        backoff *= 2;
                    }
                }
            }
        }
        self.dump_flight_postmortem("archive_expiry_failed");
    }

    /// Publishes the archive occupancy gauges (no-op before the store
    /// first opens).
    fn publish_archive_gauges(&self) {
        let Some(store) = self.archive.as_ref() else {
            return;
        };
        self.cfg
            .telemetry
            .gauge_set("inf2vec_pipeline_archive_segments", store.segments().len() as f64);
        self.cfg
            .telemetry
            .gauge_set("inf2vec_pipeline_archive_bytes", store.payload_bytes() as f64);
    }

    fn ensure_tailer(&mut self) {
        if self.tailer.is_some() {
            return;
        }
        let (tx, rx) = sync_channel(self.cfg.channel_capacity.max(1));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let path = self.log_path.clone();
        // Accept the whole configured universe, not just the graph: ids
        // beyond the graph are real (late-joining) users whose rows the
        // model grows on demand.
        let num_users = self.universe as u32;
        let pos = self.trainer.pos;
        let batch_max = self.cfg.batch_max.max(1);
        let poll_interval = self.cfg.poll_interval;
        let clock = self.clock.clone();
        let faults = Arc::clone(&self.faults);
        let telemetry = self.cfg.telemetry.clone();
        let thread = std::thread::Builder::new()
            .name("inf2vec-tail".into())
            .spawn(move || {
                let mut tail = LogTail::resume(path, num_users, pos).with_telemetry(telemetry.clone());
                while !stop_flag.load(Ordering::SeqCst) {
                    let items = match tail.poll(batch_max) {
                        Ok(v) => v,
                        Err(e) => {
                            // Truncation/rotation are typed, not generic
                            // I/O: the committed position is unservable
                            // and retrying cannot fix it — surface the
                            // kind so operators see *which* contract the
                            // log's producer broke.
                            let kind = match &e {
                                IngestError::LogTruncated { .. } => "truncated",
                                IngestError::LogRotated { .. } => "rotated",
                                _ => "io",
                            };
                            telemetry.count_with(
                                "inf2vec_pipeline_tail_io_errors_total",
                                &[("kind", kind)],
                                1,
                            );
                            telemetry.emit(
                                Event::new("pipeline.tail_error")
                                    .str("kind", kind)
                                    .str("error", e.to_string()),
                            );
                            clock.sleep(poll_interval);
                            continue;
                        }
                    };
                    if items.is_empty() {
                        if tx.send(TailMsg::Idle).is_err() {
                            break;
                        }
                        clock.sleep(poll_interval);
                        continue;
                    }
                    // Fires before the send: a panicked tailer never
                    // delivered the batch, so the respawn re-reads it.
                    if faults.tick_tailer_items(items.len() as u64) {
                        panic!("injected tailer panic");
                    }
                    let pos_after = tail.position();
                    if tx.send(TailMsg::Batch { items, pos_after }).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn tailer thread");
        self.tailer = Some(TailerHandle {
            rx,
            stop,
            thread: Some(thread),
        });
    }

    fn ensure_publisher(&mut self) {
        if self.publisher.is_some() {
            return;
        }
        let (tx, rx) = sync_channel::<Snapshot>(1);
        let cfg = self.cfg.clone();
        let clock = self.clock.clone();
        let faults = Arc::clone(&self.faults);
        let sink = Arc::clone(&self.sink);
        let counters = Arc::clone(&self.counters);
        let gate = self.gate.clone();
        let thread = std::thread::Builder::new()
            .name("inf2vec-publish".into())
            .spawn(move || {
                for mut snap in rx.iter() {
                    if faults.tick_snapshot_poison() {
                        // Bits mangled, checksum recomputed: integrity
                        // verification passes, only the gate can catch it.
                        poison_snapshot(&mut snap);
                        cfg.telemetry.emit(
                            Event::new("pipeline.injected_poison")
                                .u64("episodes", snap.episodes),
                        );
                    }
                    if publish_admitted(&gate, &snap, &cfg, &counters) {
                        let ok = publish_with_retry(
                            sink.as_ref(),
                            &snap,
                            &cfg,
                            &clock,
                            &faults,
                            &counters,
                        );
                        if ok {
                            if let Some(g) = gate.as_deref() {
                                // Only an *installed* snapshot raises the
                                // high-water mark future candidates must meet.
                                let score = g.observe(&snap.store);
                                cfg.telemetry
                                    .gauge_set("inf2vec_pipeline_quality_probe", score);
                            }
                            maybe_export(&snap, &cfg, &clock, &faults);
                        }
                    }
                    // Fires after the snapshot settled (counted ok,
                    // failed, or withheld); only the thread dies, not the
                    // accounting.
                    if faults.tick_publisher_snapshot() {
                        panic!("injected publisher panic");
                    }
                }
            })
            .expect("spawn publisher thread");
        self.publisher = Some(PublisherHandle {
            tx: Some(tx),
            thread: Some(thread),
        });
    }

    /// Closes every still-open episode immediately. Only meaningful when
    /// the log is known complete (final drain); supervises trainer panics
    /// like any other application.
    pub fn drain_open_episodes(&mut self) -> Result<(), Inf2vecError> {
        loop {
            let trainer = &mut self.trainer;
            let (cfg, graph, faults) = (&self.cfg, &self.graph, &self.faults);
            let result =
                catch_unwind(AssertUnwindSafe(|| trainer.close_all(cfg, graph, faults)));
            match result {
                Ok(()) => {
                    self.write_journal()?;
                    return Ok(());
                }
                // Recovery replays the tail of the log; the caller's next
                // run_until_idle + drain applies what is still open.
                Err(payload) => self.recover_trainer(panic_message(payload))?,
            }
        }
    }

    /// Graceful stop: stages joined, final journal written. The pipeline
    /// remains readable (reconciliation, store) afterwards. Dropping the
    /// pipeline *without* calling this simulates a crash: no final
    /// journal, recovery replays from the last batch-boundary commit.
    pub fn shutdown(&mut self) -> Result<(), Inf2vecError> {
        self.tailer = None;
        self.publisher = None;
        self.write_journal()
    }

    /// Simulated hard crash: stops the stage threads (joining them, so
    /// publish accounting settles and [`reconciliation`](Self::reconciliation)
    /// is exact) but — unlike [`shutdown`](Self::shutdown) — commits no
    /// final journal. Recovery must replay everything after the last
    /// batch-boundary commit. Dropping the pipeline without calling this
    /// is the same crash with unsettled counters.
    pub fn crash(&mut self) {
        self.dump_flight_postmortem("simulated_crash");
        self.tailer = None;
        self.publisher = None;
    }

    /// Best-effort atomic dump of the flight ring to
    /// [`flight.jsonl`](Self::flight_path). Never fails the pipeline: a
    /// postmortem that cannot be written is counted, not propagated.
    fn dump_flight_postmortem(&self, reason: &str) {
        match self.cfg.telemetry.dump_flight(&self.flight_path) {
            Ok(true) => {
                self.cfg.telemetry.count_with(
                    "inf2vec_pipeline_flight_dumps_total",
                    &[("reason", reason)],
                    1,
                );
            }
            Ok(false) => {} // telemetry disabled: nothing to dump
            Err(_) => {
                self.cfg
                    .telemetry
                    .count("inf2vec_pipeline_flight_dump_errors_total", 1);
            }
        }
    }

    /// Where postmortem flight dumps land (`flight.jsonl` in the journal
    /// directory).
    pub fn flight_path(&self) -> &std::path::Path {
        &self.flight_path
    }

    /// The end-of-run ledger; also exports it as obs gauges.
    pub fn reconciliation(&self) -> Reconciliation {
        let ok = self.counters.ok.load(Ordering::SeqCst);
        let failed = self.counters.failed.load(Ordering::SeqCst);
        let withheld = self.counters.withheld.load(Ordering::SeqCst);
        let r = Reconciliation {
            records_seen: self.trainer.records_seen,
            records_applied: self.trainer.records_applied,
            records_quarantined: self.trainer.quarantined,
            records_pending: self.trainer.open.values().map(|it| it.folded).sum(),
            episodes_applied: self.trainer.online.episodes_applied(),
            pairs_applied: self.trainer.online.pairs_applied(),
            publishes_ok: ok,
            publishes_failed: failed,
            publishes_withheld: withheld,
            publishes_skipped: self.snapshots_offered.saturating_sub(ok + failed + withheld),
            restarts: (
                self.tailer_restarts,
                self.trainer_restarts,
                self.publisher_restarts,
            ),
            store_checksum: store_checksum(self.trainer.online.store()),
        };
        let t = &self.cfg.telemetry;
        t.gauge_set("inf2vec_pipeline_records_seen", r.records_seen as f64);
        t.gauge_set("inf2vec_pipeline_records_applied", r.records_applied as f64);
        t.gauge_set(
            "inf2vec_pipeline_records_quarantined",
            r.records_quarantined as f64,
        );
        t.gauge_set("inf2vec_pipeline_records_pending", r.records_pending as f64);
        t.gauge_set("inf2vec_pipeline_episodes_applied", r.episodes_applied as f64);
        t.gauge_set("inf2vec_pipeline_publishes_ok", r.publishes_ok as f64);
        t.gauge_set("inf2vec_pipeline_publishes_failed", r.publishes_failed as f64);
        t.gauge_set(
            "inf2vec_pipeline_publishes_withheld",
            r.publishes_withheld as f64,
        );
        t.gauge_set("inf2vec_pipeline_publishes_skipped", r.publishes_skipped as f64);
        t.gauge_set(
            "inf2vec_pipeline_publish_lag_episodes",
            r.episodes_applied
                .saturating_sub(self.counters.last_episodes.load(Ordering::SeqCst))
                as f64,
        );
        r
    }

    /// The current model parameters.
    pub fn store(&self) -> &EmbeddingStore {
        self.trainer.online.store()
    }

    /// The committed tail position.
    pub fn position(&self) -> TailPosition {
        self.trainer.pos
    }

    /// Episodes applied to the model so far.
    pub fn episodes_applied(&self) -> u64 {
        self.trainer.online.episodes_applied()
    }

    /// Stage restarts consumed so far: (tailer, trainer, publisher).
    pub fn restarts(&self) -> (u32, u32, u32) {
        (
            self.tailer_restarts,
            self.trainer_restarts,
            self.publisher_restarts,
        )
    }

    /// Log compactions this incarnation performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Per-incarnation archive accounting (seals, expiries, drops).
    pub fn archive_counters(&self) -> ArchiveCounters {
        self.archive_counters
    }

    /// The segmented archive store, once a compaction has opened it
    /// (`None` until then, and always under `archive_compacted=false`).
    pub fn archive_store(&self) -> Option<&ArchiveStore> {
        self.archive.as_ref()
    }

    /// The user-id space in effect: `max(graph nodes, user_capacity)`.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The quality gate's `(best score, budget)`, when the gate is on.
    pub fn quality(&self) -> Option<(f64, f64)> {
        self.gate.as_deref().map(|g| (g.best(), g.budget()))
    }

    /// Rows the model currently holds — the base graph size plus any
    /// growth driven by unseen user ids in the stream.
    pub fn model_rows(&self) -> usize {
        self.trainer.online.store().len()
    }
}

/// `<log>.archive` beside the live log — the **legacy** monolithic
/// archive file from before the segmented store. Compaction no longer
/// writes it; [`ArchiveStore::open_for_log`] imports and removes one on
/// first use. Kept for tooling that needs to name the legacy file.
pub fn archive_path(log_path: &std::path::Path) -> PathBuf {
    let mut os = log_path.as_os_str().to_os_string();
    os.push(".archive");
    PathBuf::from(os)
}

/// Quality-gate admission (publisher thread). Returns `true` when the
/// snapshot may be offered to the sink; a withheld snapshot is counted,
/// gauged, and trace-stamped, and the registry keeps serving the last
/// good version.
fn publish_admitted(
    gate: &Option<Arc<QualityGate>>,
    snap: &Snapshot,
    cfg: &PipelineConfig,
    counters: &PublishCounters,
) -> bool {
    let Some(g) = gate.as_deref() else {
        return true;
    };
    let (score, admitted) = g.admit(&snap.store);
    cfg.telemetry
        .gauge_set("inf2vec_pipeline_quality_probe", score);
    cfg.telemetry.gauge_set(
        "inf2vec_pipeline_quality_regression",
        (g.best() - score).max(0.0),
    );
    if !admitted {
        counters.withheld.fetch_add(1, Ordering::SeqCst);
        cfg.telemetry
            .count("inf2vec_pipeline_publish_withheld_total", 1);
        cfg.telemetry.emit_with(|| {
            TraceCtx::for_publish(cfg.seed(), snap.episodes).stamp(
                Event::new("pipeline.publish_withheld")
                    .u64("episodes", snap.episodes)
                    .f64("score", score)
                    .f64("best", g.best())
                    .f64("budget", g.budget()),
            )
        });
    }
    admitted
}

/// Post-publish snapshot export with bounded retry (publisher thread).
/// Export failures degrade — the registry already holds the model; only
/// the on-disk copy is stale until the next publish.
fn maybe_export(snap: &Snapshot, cfg: &PipelineConfig, clock: &SharedClock, faults: &FaultPlan) {
    let Some(dir) = cfg.snapshot_dir.as_deref() else {
        return;
    };
    let mut backoff = cfg.disk_retry_backoff;
    for attempt in 1..=cfg.disk_max_attempts.max(1) {
        let inject = faults.tick_snapshot_write().then_some(48);
        match export_snapshot(dir, snap, inject) {
            Ok(_) => {
                cfg.telemetry
                    .count("inf2vec_pipeline_snapshot_exports_total", 1);
                return;
            }
            Err(e) => {
                cfg.telemetry
                    .count("inf2vec_pipeline_snapshot_export_errors_total", 1);
                cfg.telemetry.emit(
                    Event::new("pipeline.snapshot_export_error")
                        .u64("episodes", snap.episodes)
                        .u64("attempt", attempt as u64)
                        .str("error", e.to_string()),
                );
                if attempt < cfg.disk_max_attempts.max(1) {
                    clock.sleep(backoff);
                    backoff *= 2;
                }
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish::CountingSink;
    use crate::testutil::tmp_dir;
    use inf2vec_graph::GraphBuilder;
    use std::io::Write;

    fn ring_graph(n: u32) -> Arc<DiGraph> {
        let mut b = GraphBuilder::with_nodes(n);
        for i in 0..n {
            b.add_edge(NodeId(i), NodeId((i + 1) % n));
            b.add_edge(NodeId(i), NodeId((i + 2) % n));
        }
        Arc::new(b.build())
    }

    fn small_cfg() -> PipelineConfig {
        PipelineConfig {
            close_after: 4,
            batch_max: 8,
            idle_polls: 2,
            publish_every_episodes: 2,
            poll_interval: std::time::Duration::from_millis(1),
            inf2vec: inf2vec_core::Inf2vecConfig {
                k: 4,
                l: 6,
                seed: 11,
                ..inf2vec_core::Inf2vecConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    /// Writes `episodes` interleaved item cascades plus a defective line.
    fn write_log(path: &std::path::Path, items: u32, users: u32) -> (u64, u64) {
        let mut f = std::fs::File::create(path).unwrap();
        let (mut good, mut bad) = (0u64, 0u64);
        for item in 0..items {
            for u in 0..users {
                writeln!(f, "{} {} {}", (u + item) % users, 100 + item, u as u64 + 1).unwrap();
                good += 1;
            }
        }
        writeln!(f, "totally not a record").unwrap();
        bad += 1;
        // Trailing chatter so earlier items pass the quiet threshold.
        for u in 0..users {
            writeln!(f, "{u} 999 50").unwrap();
            good += 1;
        }
        (good, bad)
    }

    fn run_once(
        dir: &std::path::Path,
        log: &std::path::Path,
        faults: Arc<FaultPlan>,
    ) -> (Reconciliation, u64) {
        let sink = Arc::new(CountingSink::new());
        let mut p = Pipeline::with_runtime(
            small_cfg(),
            log,
            dir.join("journal"),
            ring_graph(6),
            sink,
            system_clock(),
            faults,
        )
        .unwrap();
        p.run_until_idle().unwrap();
        p.drain_open_episodes().unwrap();
        p.shutdown().unwrap();
        let r = p.reconciliation();
        let sum = r.store_checksum;
        (r, sum)
    }

    #[test]
    fn consumes_a_log_and_reconciles() {
        let dir = tmp_dir("runner-basic");
        let log = dir.join("actions.log");
        let (good, bad) = write_log(&log, 4, 6);
        let (r, _) = run_once(&dir, &log, Arc::new(FaultPlan::none()));
        assert!(r.balances(good, bad), "ledger must balance: {r:?}");
        assert_eq!(r.records_pending, 0, "drain closed everything");
        assert!(r.episodes_applied >= 4, "every item closed: {r:?}");
        assert!(r.publishes_ok >= 1, "at least one snapshot published");
    }

    #[test]
    fn injected_stage_panics_do_not_change_the_model() {
        let dir_a = tmp_dir("runner-faulty");
        let log_a = dir_a.join("actions.log");
        let (good, bad) = write_log(&log_a, 4, 6);
        let faults = Arc::new(FaultPlan::none().with_tailer_panics(vec![5]).with_trainer_panics(vec![1, 3]).with_journal_truncations(vec![2]));
        let (r, sum_faulty) = run_once(&dir_a, &log_a, faults);
        assert!(r.balances(good, bad), "faulty run still balances: {r:?}");
        assert!(r.restarts.0 >= 1 && r.restarts.1 >= 1, "faults fired: {r:?}");

        let dir_b = tmp_dir("runner-clean");
        let log_b = dir_b.join("actions.log");
        write_log(&log_b, 4, 6);
        let (_, sum_clean) = run_once(&dir_b, &log_b, Arc::new(FaultPlan::none()));
        assert_eq!(
            sum_faulty, sum_clean,
            "crash/replay must be bit-identical to the uninterrupted run"
        );
    }

    #[test]
    fn crash_drop_then_reopen_resumes_exactly() {
        let dir = tmp_dir("runner-resume");
        let log = dir.join("actions.log");
        let (good, bad) = write_log(&log, 4, 6);
        {
            // First incarnation: consume everything, then "crash" (drop
            // without shutdown — the last journal is a batch-boundary
            // commit, not the final state).
            let mut p = Pipeline::with_runtime(
                small_cfg(),
                &log,
                dir.join("journal"),
                ring_graph(6),
                Arc::new(CountingSink::new()),
                system_clock(),
                Arc::new(FaultPlan::none()),
            )
            .unwrap();
            p.run_until_idle().unwrap();
        }
        // Second incarnation recovers and finishes the job.
        let mut p = Pipeline::with_runtime(
            small_cfg(),
            &log,
            dir.join("journal"),
            ring_graph(6),
            Arc::new(CountingSink::new()),
            system_clock(),
            Arc::new(FaultPlan::none()),
        )
        .unwrap();
        p.run_until_idle().unwrap();
        p.drain_open_episodes().unwrap();
        p.shutdown().unwrap();
        let r = p.reconciliation();
        assert!(r.balances(good, bad), "resumed ledger balances: {r:?}");

        let dir_c = tmp_dir("runner-oneshot");
        let log_c = dir_c.join("actions.log");
        write_log(&log_c, 4, 6);
        let (_, sum_clean) = run_once(&dir_c, &log_c, Arc::new(FaultPlan::none()));
        assert_eq!(r.store_checksum, sum_clean, "resume is bit-identical");
    }

    /// Compaction with a tiny budget seals prefixes into the segmented
    /// store, expiry holds the segment budget, and the retained
    /// `archive ++ live` stream restores with verified contiguity.
    #[test]
    fn compaction_seals_expires_and_restores() {
        let dir = tmp_dir("runner-archive");
        let log = dir.join("actions.log");
        let (good, bad) = write_log(&log, 6, 6);
        let cfg = PipelineConfig {
            log_budget_bytes: 256,
            archive_compacted: true,
            archive_max_segments: 2,
            ..small_cfg()
        };
        let mut p = Pipeline::with_runtime(
            cfg,
            &log,
            dir.join("journal"),
            ring_graph(6),
            Arc::new(CountingSink::new()),
            system_clock(),
            Arc::new(FaultPlan::none()),
        )
        .unwrap();
        p.run_until_idle().unwrap();
        p.drain_open_episodes().unwrap();
        p.shutdown().unwrap();
        let r = p.reconciliation();
        assert!(r.balances(good, bad), "{r:?}");
        assert!(p.compactions() >= 2, "budget forced compactions");
        let c = p.archive_counters();
        assert!(c.segments_sealed >= 2, "each compaction sealed: {c:?}");
        assert_eq!(c.bytes_dropped, 0, "nothing degraded: {c:?}");
        let store = p.archive_store().expect("store opened");
        assert!(
            store.segments().len() <= 2,
            "segment budget held: {} live",
            store.segments().len()
        );
        // Reclaimed + retained covers everything ever sealed.
        assert_eq!(c.bytes_reclaimed + store.payload_bytes(), c.bytes_sealed);
        assert_eq!(c.bytes_reclaimed, store.start().offset);
        store.verify(Some(&log)).unwrap();
        let out = dir.join("restored.log");
        let stats = store.restore_to(&log, &out).unwrap();
        assert_eq!(stats.start_offset, store.start().offset);
    }

    /// An exhausted seal retry chain degrades exactly like
    /// `archive_compacted=false`: the prefix is dropped and counted, the
    /// archive rebases over the hole, and the suffix stays restorable.
    #[test]
    fn seal_exhaustion_degrades_to_counted_drop() {
        let dir = tmp_dir("runner-sealdrop");
        let log = dir.join("actions.log");
        write_log(&log, 6, 6);
        let cfg = PipelineConfig {
            log_budget_bytes: 256,
            archive_compacted: true,
            disk_max_attempts: 2,
            ..small_cfg()
        };
        // Enough consecutive seal faults to exhaust the first boundary's
        // whole retry chain; later boundaries seal normally.
        let faults = Arc::new(FaultPlan::none().with_archive_seal_failures(vec![1, 2]));
        let mut p = Pipeline::with_runtime(
            cfg,
            &log,
            dir.join("journal"),
            ring_graph(6),
            Arc::new(CountingSink::new()),
            system_clock(),
            faults,
        )
        .unwrap();
        p.run_until_idle().unwrap();
        p.drain_open_episodes().unwrap();
        p.shutdown().unwrap();
        let c = p.archive_counters();
        assert!(c.bytes_dropped > 0, "the degraded prefix was counted: {c:?}");
        let store = p.archive_store().expect("store opened");
        assert!(store.start().offset >= c.bytes_dropped, "rebased past the hole");
        // The surviving suffix is still a verified, restorable stream.
        store.verify(Some(&log)).unwrap();
        store.restore_to(&log, &dir.join("restored.log")).unwrap();
    }

    #[test]
    fn trainer_budget_exhaustion_is_typed() {
        let dir = tmp_dir("runner-budget");
        let log = dir.join("actions.log");
        write_log(&log, 4, 6);
        let cfg = PipelineConfig {
            restart_budget: 1,
            ..small_cfg()
        };
        let faults = Arc::new(FaultPlan::none().with_trainer_panics(vec![1, 2, 3, 4, 5, 6, 7, 8]));
        let mut p = Pipeline::with_runtime(
            cfg,
            &log,
            dir.join("journal"),
            ring_graph(6),
            Arc::new(CountingSink::new()),
            system_clock(),
            faults,
        )
        .unwrap();
        let err = p
            .run_until_idle()
            .and_then(|()| p.drain_open_episodes())
            .unwrap_err();
        assert!(
            matches!(
                err,
                Inf2vecError::Pipeline(PipelineError::StageFailed { stage: "train", .. })
            ),
            "got {err:?}"
        );
    }
}
